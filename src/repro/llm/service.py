"""The LLM service: caching, budgets, resilience and the call ledger.

Lingua Manga's "Highly Performant" property (paper section 1) is about
*minimising LLM service calls* — every cost and call-count number in the
evaluation is measured here.  The service wraps a provider with:

- a **layered prompt cache** (:mod:`repro.llm.cache`): exact hits on a
  versioned key (provider identity, prompt-template version, prompt,
  ``max_tokens``), near-duplicate hits against a sealed warm snapshot,
  and optional JSONL persistence so repeated runs warm-start,
- a **budget** (max calls and/or max dollars; exceeding raises
  :class:`BudgetExceededError`),
- a **resilience policy** (retry backoff, per-call deadline, circuit
  breaker, fallback provider chain — see :mod:`repro.resilience`), and
- a **ledger** recording every call with token counts, cost, purpose and
  its resilience ``outcome`` (served / cached / retried / fallback /
  circuit_open / gave_up).

Time is virtual: latency and every retry/cooldown wait are accumulated on a
:class:`~repro.resilience.clock.VirtualClock` rather than slept, so
experiments report realistic latency totals instantly.

The service is **thread safe** and built for the concurrent scheduler
(:mod:`repro.core.runtime.scheduler`):

- identical in-flight prompts are **coalesced** — concurrent duplicates
  wait for the leader's provider call and are answered as cache hits, so a
  prompt is never served twice just because callers raced;
- :meth:`prime` / :meth:`complete_many` are the **batched provider path**:
  N distinct uncached prompts go to the provider as one
  ``complete_batch`` request instead of N sequential calls;
- :meth:`scoped` gives a worker thread its own ledger buffer and shadow
  clock so the scheduler can merge per-chunk call records in a
  deterministic order, independent of thread completion order.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.llm.cache import (
    PROVENANCE_CACHE_EXACT,
    PROVENANCE_CACHE_NEAR,
    PROVENANCE_DISTILLED,
    PROVENANCE_PROVIDER,
    CacheKey,
    PromptCache,
)
from repro.llm.errors import (
    BudgetExceededError,
    CircuitOpenError,
    LLMError,
    ProviderError,
    RateLimitError,
)
from repro.llm.providers import LLMProvider, LLMRequest, LLMResponse, SimulatedProvider
from repro.llm.tokenizer import count_tokens, estimate_cost
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.clock import VirtualClock
from repro.resilience.policy import (
    OUTCOME_CACHED,
    OUTCOME_CIRCUIT_OPEN,
    OUTCOME_FALLBACK,
    OUTCOME_GAVE_UP,
    OUTCOME_RETRIED,
    OUTCOME_SERVED,
    SUCCESS_OUTCOMES,
    ResiliencePolicy,
    RetryPolicy,
)

__all__ = [
    "CallRecord",
    "UsageSummary",
    "CallScope",
    "LLMService",
    "CoalesceHub",
    "DEFAULT_RETRY_JITTER",
]

_NO_VERSION = ""  # default prompt-template version tag

#: Jitter fraction applied by the service's *default* retry policy.  Keyed
#: deterministically on (seed, prompt, attempt) — see
#: :meth:`repro.resilience.policy.RetryPolicy.delay` — so concurrent
#: retries of different prompts de-synchronise instead of thundering back
#: at the provider in lockstep, while any given prompt's schedule stays
#: byte-reproducible.  Callers passing an explicit ``policy=`` (or relying
#: on ``RetryPolicy()``'s own ``jitter=0.0`` default) are unaffected.
DEFAULT_RETRY_JITTER = 0.1


@dataclass(frozen=True)
class CallRecord:
    """One ledger entry: a completed *or failed* request.

    ``max_tokens``/``version``/``model`` exist so a journaled record is
    self-contained: the checkpoint runtime rebuilds the versioned cache key
    and the cached :class:`LLMResponse` from the record alone when a
    resumed run re-warms the exact tier (:meth:`LLMService.restore_from_records`).
    """

    prompt: str
    response_text: str
    prompt_tokens: int
    completion_tokens: int
    cost: float
    cached: bool
    skill: str
    purpose: str
    latency_seconds: float
    retries: int = 0
    outcome: str = OUTCOME_SERVED
    provenance: str = PROVENANCE_PROVIDER
    max_tokens: int = 256
    version: str = _NO_VERSION
    model: str = ""

    @property
    def succeeded(self) -> bool:
        """Whether this entry produced a usable answer."""
        return self.outcome in SUCCESS_OUTCOMES


@dataclass(frozen=True)
class UsageSummary:
    """Aggregated usage over a set of call records."""

    total_calls: int
    served_calls: int
    cached_calls: int
    prompt_tokens: int
    completion_tokens: int
    cost: float
    latency_seconds: float
    retries: int = 0
    fallback_calls: int = 0
    failed_calls: int = 0
    near_hits: int = 0
    distilled_calls: int = 0
    cache_evictions: int = 0
    #: virtual latency of provider-path records only (not cached); the
    #: distilled share is under ``distilled_seconds`` so downstream cost
    #: models never mistake local-model time for provider time.
    provider_seconds: float = 0.0
    distilled_seconds: float = 0.0

    def to_text(self) -> str:
        """One-line human-readable rendering."""
        text = (
            f"calls={self.total_calls} (served={self.served_calls}, "
            f"cached={self.cached_calls}) tokens={self.prompt_tokens}+"
            f"{self.completion_tokens} cost=${self.cost:.4f} "
            f"latency={self.latency_seconds:.1f}s"
        )
        if self.near_hits or self.distilled_calls or self.cache_evictions:
            text += (
                f" near_hits={self.near_hits} distilled={self.distilled_calls} "
                f"evictions={self.cache_evictions}"
            )
        if self.retries or self.fallback_calls or self.failed_calls:
            text += (
                f" retries={self.retries} fallbacks={self.fallback_calls} "
                f"failed={self.failed_calls}"
            )
        return text


@dataclass
class CallScope:
    """A worker thread's private view of the service during one chunk.

    Ledger records land in ``records`` instead of the shared ledger, and
    time accrues on a **shadow clock** seeded from the shared clock's value
    at operator entry.  The scheduler merges scopes in chunk order
    (:meth:`LLMService.merge_scope`), which makes the ledger and the
    virtual-clock total independent of thread interleaving.
    """

    base: float
    clock: VirtualClock
    records: list[CallRecord] = field(default_factory=list)
    #: exact-tier cache keys this scope *created* (first insert, not a
    #: refresh of a pre-existing entry); :meth:`LLMService.rollback_scope`
    #: removes them when the scope's work is abandoned mid-flight.
    cache_keys: list[CacheKey] = field(default_factory=list)

    @property
    def elapsed(self) -> float:
        """Virtual time this scope accrued beyond its base."""
        return self.clock.now - self.base


class LLMService:
    """Cached, budgeted, resilient front end over an :class:`LLMProvider`.

    ``max_retries``/``backoff_seconds`` are legacy shorthands; passing a
    :class:`ResiliencePolicy` via ``policy=`` supersedes them and unlocks
    deadlines, circuit breaking and fallback chains.

    The cache is a :class:`repro.llm.cache.PromptCache`; pass one via
    ``cache=`` (or just a journal location via ``cache_path=`` for a warm
    persistent cache).  Keys are versioned — provider identity, the
    caller-supplied prompt-template ``version``, the prompt and
    ``max_tokens`` — so distinct skills or providers sharing a prompt
    string can never collide.
    """

    def __init__(
        self,
        provider: LLMProvider | None = None,
        cache_enabled: bool = True,
        max_calls: int | None = None,
        max_cost: float | None = None,
        max_retries: int = 3,
        backoff_seconds: float = 0.5,
        policy: ResiliencePolicy | None = None,
        clock: VirtualClock | None = None,
        cache: PromptCache | None = None,
        cache_path: str | Path | None = None,
        obs: "object | None" = None,
        namespace: str = "",
        coalesce_hub: "CoalesceHub | None" = None,
    ):
        self.provider = provider or SimulatedProvider()
        self.cache_enabled = cache_enabled
        #: Tenant namespace stamped into every cache key this service makes.
        #: ``""`` (the default) is the single-tenant identity and leaves key
        #: digests exactly as they were before namespaces existed.
        self.namespace = namespace
        #: Optional cross-service :class:`CoalesceHub` for multi-tenant
        #: serving: services sharing one provider object deduplicate
        #: identical in-flight provider requests through it while keeping
        #: their ledgers and namespaced caches fully isolated.
        self.coalesce_hub = coalesce_hub
        self.max_calls = max_calls
        self.max_cost = max_cost
        self.policy = policy or ResiliencePolicy(
            retry=RetryPolicy(
                max_retries=max_retries,
                backoff_seconds=backoff_seconds,
                jitter=DEFAULT_RETRY_JITTER,
            )
        )
        self.clock = clock or VirtualClock()
        self.records: list[CallRecord] = []
        if cache is None:
            cache = PromptCache(path=cache_path)
        elif cache_path is not None:
            raise ValueError("pass cache= or cache_path=, not both")
        self.cache = cache
        self._lock = threading.RLock()
        self._tls = threading.local()
        self._inflight: dict[CacheKey, threading.Event] = {}
        # clear_cache() bumps the epoch; provider responses already in
        # flight when it fired must not repopulate the fresh cache.
        self._cache_epoch = 0
        self.coalesced_calls = 0
        self.breakers = self._build_breakers()
        self.obs = None
        if obs is not None:
            self.attach_obs(obs)

    def attach_obs(self, obs) -> None:
        """Attach a :class:`repro.obs.Observability` hub to this service.

        Wires the metrics registry into the prompt cache and every circuit
        breaker; ledger records are published via :meth:`_record`.  The
        observability path never alters what the service answers or
        ledgers — it only mirrors.
        """
        self.obs = obs
        self.cache.metrics = obs.metrics
        journal = getattr(self.cache, "journal", None)
        if journal is not None and journal.corrupt_lines:
            # The cache journal loads at construction, before observability
            # exists, so damaged lines it truncated are surfaced here — the
            # same signal the run journals emit for torn tails.
            obs.metrics.counter("cache.journal_corrupt_lines").inc(
                journal.corrupt_lines
            )
            if obs.tracer.enabled:
                obs.tracer.add_span(
                    "torn-tail[cache-journal]",
                    kind="event",
                    start=float(self.clock.now),
                    lines=journal.corrupt_lines,
                    journal="cache",
                )
        for breaker in self.breakers:
            if breaker is not None:
                breaker.metrics = obs.metrics

    def _cache_key(self, prompt: str, max_tokens: int, version: str) -> CacheKey:
        return CacheKey(
            provider=self.provider.cache_identity(),
            version=version,
            prompt=prompt,
            max_tokens=max_tokens,
            namespace=self.namespace,
        )

    def _hub(self) -> "CoalesceHub | None":
        """The coalesce hub, iff this service's provider is the hub's.

        Identity (``is``), not equality: a job that wraps the shared
        provider in its own chaos/fault injector must bypass the hub —
        its faults are private to that job and sharing its responses (or
        serving it another tenant's clean response) would corrupt both
        ledgers.
        """
        hub = self.coalesce_hub
        if hub is not None and hub.provider is self.provider:
            return hub
        return None

    def _provider_chain(self) -> list[LLMProvider]:
        chain = [self.provider]
        if self.policy.fallback is not None:
            chain.extend(self.policy.fallback.providers)
        return chain

    def _build_breakers(self) -> list[CircuitBreaker | None]:
        """One breaker per provider: the policy's for the primary, clones after."""
        if self.policy.breaker is None:
            return [None for _ in self._provider_chain()]
        breakers: list[CircuitBreaker | None] = [self.policy.breaker]
        breakers.extend(
            self.policy.breaker.clone() for _ in self._provider_chain()[1:]
        )
        return breakers

    # -- virtual clock -----------------------------------------------------------

    @property
    def clock_seconds(self) -> float:
        """Accumulated virtual time (latency + retry/cooldown waits)."""
        return self.clock.now

    @clock_seconds.setter
    def clock_seconds(self, value: float) -> None:
        self.clock.now = value

    # -- worker scopes -----------------------------------------------------------

    @contextmanager
    def scoped(self, base: float | None = None) -> Iterator[CallScope]:
        """Buffer this thread's ledger records and clock advances.

        The scheduler wraps each record chunk in a scope so that calls made
        concurrently do not interleave in the shared ledger; scopes are
        merged afterwards in deterministic chunk order.  The shadow clock
        starts at ``base`` (default: the shared clock's current value), so
        every chunk of one operator observes the same virtual start time
        regardless of worker count.
        """
        if getattr(self._tls, "scope", None) is not None:
            raise RuntimeError("LLMService scopes do not nest")
        if base is None:
            base = self.clock.now
        scope = CallScope(base=base, clock=VirtualClock(base))
        self._tls.scope = scope
        try:
            yield scope
        finally:
            self._tls.scope = None

    def merge_scope(self, scope: CallScope) -> None:
        """Fold a finished scope into the shared ledger and clock."""
        with self._lock:
            self.records.extend(scope.records)
            self.clock.advance(scope.elapsed)

    def rollback_scope(self, scope: CallScope) -> int:
        """Undo an abandoned scope's cache inserts; returns entries removed.

        The streaming executor calls this instead of :meth:`merge_scope`
        when a shard attempt dies mid-flight (worker killed, lease lost):
        its ledger records are discarded with the scope, but the exact-tier
        entries its provider calls created would otherwise survive — and
        the shard's *retry* would then find its own half-done answers
        cached, making the disturbed run cheaper than an undisturbed one
        instead of byte-identical.  Only entries this scope created are
        removed (refreshes of pre-existing entries are never tracked), so
        rollback cannot evict warm-start state.
        """
        removed = 0
        with self._lock:
            for key in scope.cache_keys:
                if self.cache.remove(key):
                    removed += 1
            scope.cache_keys.clear()
            scope.records.clear()
        return removed

    def _scope(self) -> CallScope | None:
        return getattr(self._tls, "scope", None)

    def _active_clock(self) -> VirtualClock:
        scope = self._scope()
        return scope.clock if scope is not None else self.clock

    def _record(self, record: CallRecord) -> None:
        if self.obs is not None:
            self._publish_record(record)
        scope = self._scope()
        if scope is not None:
            scope.records.append(record)
            return
        with self._lock:
            self.records.append(record)

    def _publish_record(self, record: CallRecord) -> None:
        """Mirror one ledger record into the attached metrics registry."""
        # Deferred: repro.obs imports repro.llm.cache, so a module-level
        # import here would be circular through the repro.llm package.
        from repro.obs.metrics import DEFAULT_TOKEN_BUCKETS

        metrics = self.obs.metrics
        if not metrics.enabled:
            return
        metrics.counter("llm.records").inc()
        metrics.counter(f"llm.provenance.{record.provenance}").inc()
        metrics.counter(f"llm.outcome.{record.outcome}").inc()
        if record.retries:
            metrics.counter("llm.retries").inc(record.retries)
        metrics.counter("llm.cost").inc(record.cost)
        metrics.counter("llm.prompt_tokens").inc(record.prompt_tokens)
        metrics.counter("llm.completion_tokens").inc(record.completion_tokens)
        metrics.histogram("llm.latency_seconds").observe(record.latency_seconds)
        metrics.histogram("llm.prompt_tokens.dist", DEFAULT_TOKEN_BUCKETS).observe(
            record.prompt_tokens
        )

    # -- core API --------------------------------------------------------------

    def complete(
        self,
        prompt: str,
        purpose: str = "",
        max_tokens: int = 256,
        version: str = _NO_VERSION,
    ) -> str:
        """Answer ``prompt``; returns the response text.

        Raises :class:`BudgetExceededError` when the call would exceed the
        configured budget, :class:`CircuitOpenError` when the breaker
        refuses the call, and :class:`ProviderError` when every provider and
        retry is exhausted.  Failed calls are still recorded in the ledger
        with their resilience outcome.

        Concurrent callers asking the identical versioned key are
        **coalesced** (cache enabled only): one caller leads, the rest wait
        and are answered as cache hits.  The leader consults the
        near-duplicate tier before paying for the provider; a near donor is
        promoted into the exact tier so followers (and later calls) hit it
        exactly.  A leader failure releases the followers, who then retry
        leadership one at a time — so per-prompt provider attempts stay
        sequential and deterministic even under heavy concurrency.
        """
        if not self.cache_enabled:
            return self._complete_uncached(prompt, purpose, max_tokens, version)
        cache_key = self._cache_key(prompt, max_tokens, version)
        while True:
            leader_gate: threading.Event | None = None
            with self._lock:
                cached = self.cache.get(cache_key)
                if cached is None:
                    leader_gate = self._inflight.get(cache_key)
                    if leader_gate is None:
                        self._inflight[cache_key] = threading.Event()
            if cached is not None:
                self._record(
                    self._cached_record(
                        cached,
                        prompt,
                        purpose,
                        provenance=PROVENANCE_CACHE_EXACT,
                        max_tokens=max_tokens,
                        version=version,
                    )
                )
                return cached.text
            if leader_gate is None:
                break  # this thread leads the provider call
            with self._lock:
                self.coalesced_calls += 1
            if self.obs is not None:
                self.obs.metrics.counter("llm.coalesced").inc()
            leader_gate.wait()
            # Re-check: the leader either cached a response (-> hit) or
            # failed (-> compete to become the next leader).
        try:
            with self._lock:
                epoch = self._cache_epoch
            near = self.cache.get_near(cache_key)
            if near is not None:
                response, _score = near
                self._record(
                    self._cached_record(
                        response,
                        prompt,
                        purpose,
                        provenance=PROVENANCE_CACHE_NEAR,
                        max_tokens=max_tokens,
                        version=version,
                    )
                )
                self._cache_put(cache_key, response, epoch)
                return response.text
            return self._complete_uncached(prompt, purpose, max_tokens, version)
        finally:
            with self._lock:
                gate = self._inflight.pop(cache_key, None)
            if gate is not None:
                gate.set()

    def _cached_record(
        self,
        response: LLMResponse,
        prompt: str,
        purpose: str,
        provenance: str = PROVENANCE_CACHE_EXACT,
        max_tokens: int = 256,
        version: str = _NO_VERSION,
    ) -> CallRecord:
        return CallRecord(
            prompt=prompt,
            response_text=response.text,
            prompt_tokens=response.prompt_tokens,
            completion_tokens=response.completion_tokens,
            cost=0.0,
            cached=True,
            skill=response.skill,
            purpose=purpose,
            latency_seconds=0.0,
            outcome=OUTCOME_CACHED,
            provenance=provenance,
            max_tokens=max_tokens,
            version=version,
            model=response.model,
        )

    def _cache_put(self, key: CacheKey, response: LLMResponse, epoch: int) -> None:
        """Insert unless :meth:`clear_cache` fired after this call started.

        ``epoch`` is the value of ``_cache_epoch`` observed when the call
        began; a mismatch means someone cleared the cache while the answer
        was in flight, and inserting it would resurrect exactly what the
        clear was meant to drop.
        """
        with self._lock:
            if epoch != self._cache_epoch:
                return
            scope = self._scope()
            if scope is not None and not self.cache.peek(key):
                scope.cache_keys.append(key)
            self.cache.put(key, response)

    def _complete_uncached(
        self, prompt: str, purpose: str, max_tokens: int, version: str = _NO_VERSION
    ) -> str:
        """Provider path: budget check, resilient call, record, cache."""
        self._check_budget()
        with self._lock:
            epoch = self._cache_epoch
        request = LLMRequest(prompt=prompt, max_tokens=max_tokens)
        hub = self._hub()
        if hub is not None:
            response, outcome, retries = self._complete_via_hub(hub, request, purpose)
        else:
            response, outcome, retries = self._complete_resilient(request, purpose)
        cost = estimate_cost(response.prompt_tokens, response.completion_tokens)
        self._active_clock().advance(response.latency_seconds)
        self._record(
            CallRecord(
                prompt=prompt,
                response_text=response.text,
                prompt_tokens=response.prompt_tokens,
                completion_tokens=response.completion_tokens,
                cost=cost,
                cached=False,
                skill=response.skill,
                purpose=purpose,
                latency_seconds=response.latency_seconds,
                retries=retries,
                outcome=outcome,
                max_tokens=max_tokens,
                version=version,
                model=response.model,
            )
        )
        if self.cache_enabled:
            self._cache_put(
                self._cache_key(prompt, max_tokens, version), response, epoch
            )
        return response.text

    def _complete_via_hub(
        self, hub: "CoalesceHub", request: LLMRequest, purpose: str
    ) -> tuple[LLMResponse, str, int]:
        """One provider call routed through the cross-service hub.

        Claims leadership of the request's hub slot; a hit returns another
        service's settled answer (recorded by the caller exactly as a
        provider call — tenant ledgers never betray who actually paid), a
        wait blocks on the current leader and re-claims, and a lead pays
        the provider and publishes the result if it is shareable (a clean
        first-attempt success — precisely what a solo caller would have
        recorded, which is what keeps tenant reports byte-identical to
        their direct runs).
        """
        while True:
            status, settled = hub.claim(request)
            if status == "hit":
                self._note_hub_share(hub)
                return settled
            if status == "wait":
                settled.wait()
                continue
            try:
                result = self._complete_resilient(request, purpose)
            except BaseException:
                hub.publish(request, None)
                raise
            _response, outcome, retries = result
            shareable = outcome == OUTCOME_SERVED and retries == 0
            hub.publish(request, result if shareable else None)
            return result

    def _note_hub_share(self, hub: "CoalesceHub") -> None:
        hub.note_shared()
        if self.obs is not None:
            self.obs.metrics.counter("llm.hub_shared").inc()

    # -- batched provider path ----------------------------------------------------

    def prime(
        self,
        prompts: Sequence[str],
        purpose: str = "",
        max_tokens: int = 256,
        version: str = _NO_VERSION,
    ) -> int:
        """Warm the cache for ``prompts`` via one batched provider call.

        The cache is consulted first — both tiers: prompts with an exact
        entry or a sealed near-duplicate donor never enter the provider
        batch (the chunk-prefetch path rides on this, so a warm run primes
        nothing).  The remaining distinct not-in-flight prompts are
        submitted together through :meth:`LLMProvider.complete_batch`
        (N prompts per call instead of N calls).  Best effort: a batch
        failure is swallowed so per-item calls can retry with the full
        resilience policy.  Returns the number of prompts served.
        """
        if not self.cache_enabled:
            return 0
        batch: list[tuple[CacheKey, str]] = []
        with self._lock:
            epoch = self._cache_epoch
            for prompt in prompts:
                key = self._cache_key(prompt, max_tokens, version)
                if key in self._inflight or self.cache.has_any(key):
                    continue
                if any(k == key for k, _ in batch):
                    continue
                self._inflight[key] = threading.Event()
                batch.append((key, prompt))
        if not batch:
            return 0
        served = 0
        try:
            requests = [
                LLMRequest(prompt=prompt, max_tokens=max_tokens)
                for _, prompt in batch
            ]
            hub = self._hub()
            if hub is None:
                try:
                    self._check_budget()
                    responses = self._batch_resilient(requests)
                except LLMError:
                    responses = None
                results: list[tuple[LLMResponse, str, int] | None] = (
                    list(responses)
                    if responses is not None
                    else [None] * len(batch)
                )
            else:
                results = self._prime_via_hub(hub, requests)
            if any(result is not None for result in results):
                clock = self._active_clock()
                for (key, prompt), result in zip(batch, results):
                    if result is None:
                        continue
                    response, outcome, retries = result
                    cost = estimate_cost(
                        response.prompt_tokens, response.completion_tokens
                    )
                    clock.advance(response.latency_seconds)
                    self._record(
                        CallRecord(
                            prompt=prompt,
                            response_text=response.text,
                            prompt_tokens=response.prompt_tokens,
                            completion_tokens=response.completion_tokens,
                            cost=cost,
                            cached=False,
                            skill=response.skill,
                            purpose=purpose,
                            latency_seconds=response.latency_seconds,
                            retries=retries,
                            outcome=outcome,
                            max_tokens=max_tokens,
                            version=version,
                            model=response.model,
                        )
                    )
                    self._cache_put(key, response, epoch)
                    served += 1
        finally:
            with self._lock:
                gates = [self._inflight.pop(key, None) for key, _ in batch]
            for gate in gates:
                if gate is not None:
                    gate.set()
        return served

    def _prime_via_hub(
        self, hub: "CoalesceHub", requests: list[LLMRequest]
    ) -> list[tuple[LLMResponse, str, int] | None]:
        """Resolve a prime batch through the cross-service hub.

        Each request is claimed individually: settled answers are shared
        immediately, and the slots this service wins are paid for with
        **one** batched provider call whose shareable results (clean
        first-attempt successes) are published back.  Contested slots are
        waited on only *after* every led slot has been published — a
        leader never blocks while still holding unpublished slots, so two
        services whose prime batches overlap in different prompt orders
        cannot deadlock on each other (no hold-and-wait).  Returns
        results aligned with ``requests``; a ``None`` entry means the
        batch path gave up on that prompt and per-item calls should retry
        it with the full resilience policy.
        """
        results: list[tuple[LLMResponse, str, int] | None] = [None] * len(requests)
        pending = list(range(len(requests)))
        while pending:
            leads: list[int] = []
            contested: list[tuple[int, threading.Event]] = []
            for index in pending:
                status, settled = hub.claim(requests[index])
                if status == "hit":
                    self._note_hub_share(hub)
                    results[index] = settled
                elif status == "lead":
                    leads.append(index)
                else:
                    contested.append((index, settled))
            if leads:
                try:
                    self._check_budget()
                    responses = self._batch_resilient(
                        [requests[i] for i in leads]
                    )
                except LLMError:
                    responses = None
                except BaseException:
                    for index in leads:
                        hub.publish(requests[index], None)
                    raise
                if responses is None:
                    # Batch path exhausted: release the led slots so
                    # waiters re-compete; these entries stay ``None`` and
                    # per-item calls retry them with full resilience.
                    for index in leads:
                        hub.publish(requests[index], None)
                else:
                    for index, result in zip(leads, responses):
                        results[index] = result
                        _response, outcome, retries = result
                        shareable = outcome == OUTCOME_SERVED and retries == 0
                        hub.publish(
                            requests[index], result if shareable else None
                        )
            for _index, gate in contested:
                gate.wait()
            pending = [index for index, _gate in contested]
        return results

    def _batch_resilient(
        self, requests: list[LLMRequest]
    ) -> list[tuple[LLMResponse, str, int]] | None:
        """One retried ``complete_batch`` against the primary provider.

        Returns ``None`` when the batch path is exhausted (callers fall
        back to per-prompt resilient calls); never raises provider errors.
        """
        clock = self._active_clock()
        for attempt in range(self.policy.retry.max_retries + 1):
            try:
                responses = self.provider.complete_batch(requests)
            except RateLimitError as error:
                wait = error.retry_after
            except ProviderError:
                wait = self.policy.retry.delay(attempt, key=requests[0].prompt)
            else:
                outcome = OUTCOME_SERVED if attempt == 0 else OUTCOME_RETRIED
                return [(response, outcome, attempt) for response in responses]
            if attempt >= self.policy.retry.max_retries:
                return None
            clock.advance(wait)
        return None

    def complete_many(
        self,
        prompts: Sequence[str],
        purpose: str = "",
        max_tokens: int = 256,
        version: str = _NO_VERSION,
    ) -> list[str]:
        """Answer many prompts, batching the distinct uncached ones.

        Equivalent to calling :meth:`complete` per prompt, except the cache
        is first primed with one batched provider request; per-prompt
        semantics (ledger records, errors, resilience) are unchanged.
        """
        self.prime(prompts, purpose=purpose, max_tokens=max_tokens, version=version)
        return [
            self.complete(
                prompt, purpose=purpose, max_tokens=max_tokens, version=version
            )
            for prompt in prompts
        ]

    def record_distilled(
        self,
        prompt: str,
        text: str,
        purpose: str = "",
        skill: str = "distilled",
        latency: float = 0.0,
    ) -> None:
        """Ledger a zero-cost answer produced by a distilled local model.

        The distillation router (:mod:`repro.core.optimizer.distill`) calls
        this for every record it answers instead of the provider, so the
        ledger stays a complete account of *every* answered prompt with
        provenance ``distilled``.  Scope-aware like any other record.
        ``latency`` (virtual seconds the local model charged, default 0)
        advances the active clock and lands in the record's
        ``latency_seconds`` — surfaced downstream as ``distilled_seconds``,
        never folded into provider time.
        """
        if latency:
            self._active_clock().advance(latency)
        self._record(
            CallRecord(
                prompt=prompt,
                response_text=text,
                prompt_tokens=count_tokens(prompt),
                completion_tokens=count_tokens(text),
                cost=0.0,
                cached=True,
                skill=skill,
                purpose=purpose,
                latency_seconds=latency,
                outcome=OUTCOME_CACHED,
                provenance=PROVENANCE_DISTILLED,
            )
        )

    def restore_from_records(self, records: Iterable[CallRecord]) -> int:
        """Re-warm the exact cache tier from replayed ledger records.

        The checkpoint runtime calls this before re-executing any live
        chunk: every answer a completed chunk *paid for* (provider calls,
        including retried/fallback ones) or *promoted* (near-duplicate
        donors) must be back in the exact tier first, or a live chunk that
        originally hit the cache would re-pay the provider and the resumed
        ledger would no longer be byte-identical to an uninterrupted run.

        Exact-tier hits are deliberately skipped: their backing entry is
        restored by whichever provider/near record originally created it,
        and re-inserting from a hit would also resurrect entries that
        predate the run.  Returns the number of entries inserted.
        """
        if not self.cache_enabled:
            return 0
        inserted = 0
        with self._lock:
            epoch = self._cache_epoch
        for record in records:
            if not record.succeeded:
                continue
            if record.cached and record.provenance != PROVENANCE_CACHE_NEAR:
                continue
            response = LLMResponse(
                text=record.response_text,
                prompt_tokens=record.prompt_tokens,
                completion_tokens=record.completion_tokens,
                model=record.model,
                skill=record.skill,
                latency_seconds=record.latency_seconds,
            )
            key = self._cache_key(record.prompt, record.max_tokens, record.version)
            self._cache_put(key, response, epoch)
            inserted += 1
        return inserted

    def _complete_resilient(
        self, request: LLMRequest, purpose: str
    ) -> tuple[LLMResponse, str, int]:
        """Walk the provider chain under the resilience policy.

        Returns ``(response, outcome, retries)`` on success; on exhaustion
        records a failure ledger entry and raises.
        """
        policy = self.policy
        # Keyed on the prompt (not a shared call counter) so the jitter
        # schedule is deterministic regardless of thread arrival order.
        call_key = request.prompt
        clock = self._active_clock()
        started = clock.now
        last_error: ProviderError | None = None
        saw_open = False
        chain = self._provider_chain()

        for p_index, provider in enumerate(chain):
            breaker = self.breakers[p_index] if p_index < len(self.breakers) else None
            if breaker is not None and not breaker.allow(clock.now):
                if p_index < len(chain) - 1:
                    saw_open = True  # divert to the next provider immediately
                    continue
                # Last provider: block (in virtual time) until the breaker
                # would allow a half-open probe, bounded by the deadline.
                wait = breaker.remaining(clock.now)
                if policy.deadline is not None:
                    wait = policy.deadline.clamp(wait, clock.now - started)
                clock.advance(wait)
                if not breaker.allow(clock.now):
                    saw_open = True
                    continue
            for attempt in range(policy.retry.max_retries + 1):
                try:
                    response = provider.complete(request)
                except RateLimitError as error:
                    last_error = error
                    wait = error.retry_after
                except ProviderError as error:
                    last_error = error
                    wait = policy.retry.delay(attempt, key=call_key)
                else:
                    if breaker is not None:
                        breaker.record_success(clock.now)
                    if p_index == 0:
                        outcome = OUTCOME_SERVED if attempt == 0 else OUTCOME_RETRIED
                    else:
                        outcome = OUTCOME_FALLBACK
                    return response, outcome, attempt
                if breaker is not None:
                    breaker.record_failure(clock.now)
                if attempt >= policy.retry.max_retries:
                    break
                elapsed = clock.now - started
                if policy.deadline is not None:
                    if policy.deadline.exhausted(elapsed):
                        break
                    wait = policy.deadline.clamp(wait, elapsed)
                clock.advance(wait)
                if breaker is not None and not breaker.allow(clock.now):
                    break  # opened mid-storm: stop hammering this provider

        if policy.fallback is not None and policy.fallback.degraded is not None:
            text = policy.fallback.degraded(request)
            response = LLMResponse(
                text=text,
                prompt_tokens=count_tokens(request.prompt),
                completion_tokens=count_tokens(text),
                model="degraded",
                skill="degraded",
                latency_seconds=0.0,
            )
            return response, OUTCOME_FALLBACK, 0

        outcome = (
            OUTCOME_CIRCUIT_OPEN
            if saw_open and last_error is None
            else OUTCOME_GAVE_UP
        )
        self._record(
            CallRecord(
                prompt=request.prompt,
                response_text="",
                prompt_tokens=0,
                completion_tokens=0,
                cost=0.0,
                cached=False,
                skill="",
                purpose=purpose,
                latency_seconds=0.0,
                retries=policy.retry.max_retries if last_error is not None else 0,
                outcome=outcome,
                max_tokens=request.max_tokens,
            )
        )
        if outcome == OUTCOME_CIRCUIT_OPEN:
            raise CircuitOpenError(
                "circuit breaker open: call refused without reaching a provider"
            )
        raise ProviderError(
            f"provider failed after {policy.retry.max_retries + 1} attempts "
            f"across {len(chain)} provider(s): {last_error}"
        )

    def _check_budget(self) -> None:
        # Budget checks read the merged ledger; records still buffered in
        # unfinished worker scopes are not yet visible, so under heavy
        # parallelism a budget may be overshot by up to one in-flight wave.
        with self._lock:
            if self.max_calls is not None and self.served_calls >= self.max_calls:
                raise BudgetExceededError(
                    f"call budget exhausted ({self.served_calls}/{self.max_calls})"
                )
            if self.max_cost is not None and self.total_cost >= self.max_cost:
                raise BudgetExceededError(
                    f"cost budget exhausted "
                    f"(${self.total_cost:.4f}/${self.max_cost:.4f})"
                )

    # -- accounting --------------------------------------------------------------

    @property
    def served_calls(self) -> int:
        """Successful calls that hit a provider (excludes cache hits/failures)."""
        return sum(1 for r in self.records if not r.cached and r.succeeded)

    @property
    def cached_calls(self) -> int:
        """Calls answered from the local cache."""
        return sum(1 for r in self.records if r.cached)

    @property
    def failed_calls(self) -> int:
        """Calls that exhausted the resilience policy (gave_up/circuit_open)."""
        return sum(1 for r in self.records if not r.succeeded)

    @property
    def near_hits(self) -> int:
        """Calls answered by the near-duplicate cache tier."""
        return sum(1 for r in self.records if r.provenance == PROVENANCE_CACHE_NEAR)

    @property
    def distilled_calls(self) -> int:
        """Calls answered by a distilled local model."""
        return sum(1 for r in self.records if r.provenance == PROVENANCE_DISTILLED)

    @property
    def total_cost(self) -> float:
        """Accumulated dollar cost."""
        return sum(r.cost for r in self.records)

    def usage(self, purpose: str | None = None) -> UsageSummary:
        """Aggregate usage, optionally filtered to one ``purpose`` label."""
        with self._lock:
            records: Iterable[CallRecord] = list(self.records)
        if purpose is not None:
            records = [r for r in records if r.purpose == purpose]
        records = list(records)
        return UsageSummary(
            total_calls=len(records),
            served_calls=sum(1 for r in records if not r.cached and r.succeeded),
            cached_calls=sum(1 for r in records if r.cached),
            prompt_tokens=sum(r.prompt_tokens for r in records),
            completion_tokens=sum(r.completion_tokens for r in records),
            cost=sum(r.cost for r in records),
            latency_seconds=sum(r.latency_seconds for r in records),
            retries=sum(r.retries for r in records),
            fallback_calls=sum(1 for r in records if r.outcome == OUTCOME_FALLBACK),
            failed_calls=sum(1 for r in records if not r.succeeded),
            near_hits=sum(
                1 for r in records if r.provenance == PROVENANCE_CACHE_NEAR
            ),
            distilled_calls=sum(
                1 for r in records if r.provenance == PROVENANCE_DISTILLED
            ),
            cache_evictions=self.cache.stats.evictions,
            # float(): an empty generator sums to int 0, which would render
            # as "0" instead of "0.0" in canonical report JSON.
            provider_seconds=float(
                sum(r.latency_seconds for r in records if not r.cached)
            ),
            distilled_seconds=float(
                sum(
                    r.latency_seconds
                    for r in records
                    if r.provenance == PROVENANCE_DISTILLED
                )
            ),
        )

    def ledger_table(self):
        """The call ledger as a :class:`repro.storage.table.Table`.

        Lets the usage data flow through the same tooling as any other
        table — SQL over your LLM spend, profiling, the UI's table views.
        """
        from repro.storage.table import Table

        return Table.from_records(
            "llm_ledger",
            [
                {
                    "purpose": r.purpose,
                    "skill": r.skill,
                    "cached": r.cached,
                    "provenance": r.provenance,
                    "outcome": r.outcome,
                    "prompt_tokens": r.prompt_tokens,
                    "completion_tokens": r.completion_tokens,
                    "cost": r.cost,
                    "latency_seconds": r.latency_seconds,
                    "retries": r.retries,
                }
                for r in self.records
            ],
        )

    def reset_usage(self) -> None:
        """Clear the ledger and virtual clock (cache is kept)."""
        with self._lock:
            self.records.clear()
            self.clock.reset()

    def clear_cache(self) -> None:
        """Drop all cached responses (both tiers, and the journal contents).

        Bumps the cache epoch so provider answers already in flight when
        the clear fired do not repopulate the fresh cache — a ``complete``
        after ``clear_cache`` always re-asks the provider, even when the
        clear raced an in-flight call for the same prompt.
        """
        with self._lock:
            self._cache_epoch += 1
            self.cache.clear()


class CoalesceHub:
    """Cross-service request coalescing for one shared provider.

    The multi-tenant serving layer gives every job its own
    :class:`LLMService` (own ledger, own virtual clock, own namespaced
    cache) so tenant runs stay byte-identical to direct runs — but all of
    those services front the *same* provider object, and tenants routinely
    ask identical prompts.  The hub deduplicates those at the provider
    boundary: requests are keyed namespace-free on ``(prompt, max_tokens)``,
    the first service to claim a slot leads the provider call, and a clean
    first-attempt success (``OUTCOME_SERVED``, zero retries) is settled
    into the hub for every later claimant.  Followers record full
    provider-style ledger entries — same cost, same latency — so per-tenant
    billing and reports are indistinguishable from having paid themselves;
    only the provider's call count (and :attr:`shared_calls`) reveals the
    dedup.

    Results that a solo caller would *not* have recorded — retried
    successes, fallbacks, failures — are never settled: the slot is
    released and the next claimant competes to lead.  Services whose
    ``provider`` is not :attr:`provider` (e.g. a job wrapping the shared
    provider in a chaos injector) bypass the hub entirely — see
    :meth:`LLMService._hub`.

    Settled answers are memoized for the hub's lifetime, which makes the
    dedup schedule-independent: across any interleaving of tenant jobs,
    the provider pays at most once per distinct shareable request.  The
    memo is *not* a cache tier — no tenant ledger ever records a hub
    answer as a cache hit — and :meth:`reset` drops it (the serving layer
    resets the hub whenever the shared provider's world changes).
    """

    def __init__(self, provider: LLMProvider):
        self.provider = provider
        self._lock = threading.Lock()
        self._inflight: dict[tuple[str, int], threading.Event] = {}
        self._settled: dict[tuple[str, int], tuple[LLMResponse, str, int]] = {}
        #: Calls answered from another service's settled result.
        self.shared_calls = 0
        #: Slots this hub's claimants paid the provider for and settled.
        self.settled_calls = 0

    @staticmethod
    def _key(request: LLMRequest) -> tuple[str, int]:
        return (request.prompt, request.max_tokens)

    def claim(self, request: LLMRequest):
        """Claim the slot for ``request``.

        Returns ``("hit", result)`` when a settled answer exists,
        ``("wait", event)`` when another claimant is leading (wait on the
        event, then re-claim), or ``("lead", None)`` when the caller now
        leads and **must** eventually :meth:`publish` — on every path,
        including failure — or waiters deadlock.
        """
        key = self._key(request)
        with self._lock:
            settled = self._settled.get(key)
            if settled is not None:
                return ("hit", settled)
            gate = self._inflight.get(key)
            if gate is not None:
                return ("wait", gate)
            self._inflight[key] = threading.Event()
            return ("lead", None)

    def publish(
        self,
        request: LLMRequest,
        result: "tuple[LLMResponse, str, int] | None",
    ) -> None:
        """Settle (or release) a led slot and wake every waiter.

        ``None`` releases without settling — the result was unshareable or
        the call failed — and waiters re-compete for leadership.
        """
        key = self._key(request)
        with self._lock:
            if result is not None and key not in self._settled:
                self._settled[key] = result
                self.settled_calls += 1
            gate = self._inflight.pop(key, None)
        if gate is not None:
            gate.set()

    def note_shared(self) -> None:
        with self._lock:
            self.shared_calls += 1

    def reset(self) -> None:
        """Drop settled results (in-flight slots are left to their leaders)."""
        with self._lock:
            self._settled.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "settled": len(self._settled),
                "inflight": len(self._inflight),
                "shared_calls": self.shared_calls,
                "settled_calls": self.settled_calls,
            }
