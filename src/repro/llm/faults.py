"""Deterministic fault injection: the chaos harness for the LLM substrate.

:class:`ChaosProvider` wraps any :class:`LLMProvider` and injects faults
according to a declarative list of :class:`FaultSpec` schedules: transient
``ProviderError`` bursts, ``RateLimitError`` storms, latency spikes,
truncated/malformed completions, and hard outage windows on the virtual
clock.  Every decision is a stable hash of ``(seed, call index, spec
index)``, so a chaos run with a fixed seed replays byte-identically —
robustness becomes a reproducible, benchmarkable property instead of a
flaky one.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, replace

from repro._util import stable_unit
from repro.llm.errors import ProviderError, RateLimitError
from repro.llm.providers import LLMProvider, LLMRequest, LLMResponse
from repro.resilience.clock import VirtualClock

__all__ = [
    "FaultKind",
    "FaultSpec",
    "ChaosProvider",
    "CrashInjected",
    "CrashPoint",
    "WorkerKilled",
    "WorkerKillPoint",
    "TriggerPoint",
]


class CrashInjected(BaseException):
    """Simulated process death raised by a :class:`CrashPoint`.

    Derives from :class:`BaseException` deliberately: the resilience layer
    and the record-quarantine machinery catch ``Exception`` broadly, and a
    crash must never be absorbed as one more recoverable record failure —
    a real ``kill -9`` would not be.
    """

    def __init__(self, boundary: str, hit: int):
        super().__init__(f"injected crash at boundary {boundary!r} (hit {hit})")
        self.boundary = boundary
        self.hit = hit


class CrashPoint:
    """Kill execution the Nth time a named boundary is reached.

    The checkpoint runtime (:mod:`repro.core.runtime.checkpoint`) announces
    named execution boundaries — ``chunk:entered``, ``chunk:executed``,
    ``chunk:journaled``, ``operator:committed`` — and the cache journal
    announces ``compaction:tmp-written``.  A crash point armed on one of
    them raises :class:`CrashInjected` on its ``hits``-th arrival, which
    unwinds the run exactly as process death would: whatever the write-ahead
    journal durably holds is all a resume gets to see.

    Thread safe: boundaries are reached from scheduler worker threads.
    ``fired`` records whether the crash actually triggered (a probe run
    with ``hits`` beyond the boundary count leaves it false) and ``seen``
    counts arrivals per boundary name, which is how the crash-matrix tests
    enumerate "every chunk boundary" before killing at each one.
    """

    #: exception type raised when the armed hit lands (subclasses override)
    exception: type[BaseException] = CrashInjected

    def __init__(self, boundary: str, hits: int = 1):
        if hits < 1:
            raise ValueError("hits must be at least 1")
        self.boundary = boundary
        self.hits = hits
        self.fired = False
        self.seen: Counter[str] = Counter()
        self._lock = threading.Lock()

    def _armed_hit(self, boundary: str) -> bool:
        """Count one arrival; True exactly when the armed hit lands."""
        self.seen[boundary] += 1
        if boundary != self.boundary or self.fired:
            return False
        if self.seen[boundary] == self.hits:
            self.fired = True
            return True
        return False

    def reached(self, boundary: str) -> None:
        """Announce one boundary arrival; raises when the armed hit lands."""
        with self._lock:
            if self._armed_hit(boundary):
                raise type(self).exception(boundary, self.hits)


class WorkerKilled(BaseException):
    """Simulated death of a single worker raised by a :class:`WorkerKillPoint`.

    Unlike :class:`CrashInjected` — which models whole-process death and
    unwinds the run — a worker kill is survivable: the streaming executor
    catches it at the worker loop, releases the victim's shard lease, rolls
    back the half-done shard's cache inserts, and carries on as the
    replacement worker.  ``BaseException`` for the same reason as
    :class:`CrashInjected`: the resilience layer must never absorb it as a
    recoverable record failure.
    """

    def __init__(self, boundary: str, hit: int):
        super().__init__(f"injected worker kill at boundary {boundary!r} (hit {hit})")
        self.boundary = boundary
        self.hit = hit


class WorkerKillPoint(CrashPoint):
    """Kill one *worker* (not the process) the Nth time a boundary is reached.

    The streaming work-queue announces per-shard boundaries —
    ``shard:claimed``, ``shard:executed``, ``shard:journaled`` — and a kill
    point armed on one of them raises :class:`WorkerKilled` there, exactly
    as if the worker thread had been destroyed mid-shard: its lease is
    released and the shard is re-claimed by a surviving worker.
    """

    exception = WorkerKilled


class TriggerPoint(CrashPoint):
    """A boundary counter that *reports* the armed hit instead of raising.

    Used for fault points where the faulted component must decide what
    failing means locally: the work queue arms one on ``lease:granted`` to
    force a lease expiry, and :class:`repro.storage.spill.SpillStore` arms
    one on ``spill:write`` to fail a shard's disk spill.  :meth:`fires`
    returns ``True`` exactly once, on the ``hits``-th arrival at the armed
    boundary.
    """

    def fires(self, boundary: str) -> bool:
        """Count one arrival; True exactly when the armed hit lands."""
        with self._lock:
            return self._armed_hit(boundary)

    def reached(self, boundary: str) -> None:
        """Trigger points never raise; use :meth:`fires`."""
        self.fires(boundary)


class FaultKind:
    """The catalogue of injectable fault kinds."""

    TRANSIENT = "transient"  # raise ProviderError
    RATE_LIMIT = "rate_limit"  # raise RateLimitError(retry_after=...)
    LATENCY = "latency"  # serve, but add extra_latency seconds
    MALFORMED = "malformed"  # serve, but truncate the completion text
    OUTAGE = "outage"  # fail everything inside the [start, end) window

    ALL = (TRANSIENT, RATE_LIMIT, LATENCY, MALFORMED, OUTAGE)


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault schedule.

    Parameters
    ----------
    kind:
        One of :class:`FaultKind`.
    rate:
        Per-call injection probability (ignored for ``outage``, which always
        fires inside its window).
    start / end:
        Optional virtual-clock window ``[start, end)`` outside which the
        spec is dormant.  ``None`` means unbounded on that side.
    retry_after:
        Cooldown attached to injected :class:`RateLimitError` responses.
    extra_latency:
        Seconds added to the response for ``latency`` spikes.
    truncate_to:
        Characters kept of the completion for ``malformed`` faults.
    """

    kind: str
    rate: float = 1.0
    start: float | None = None
    end: float | None = None
    retry_after: float = 1.0
    extra_latency: float = 5.0
    truncate_to: int = 5

    def __post_init__(self) -> None:
        if self.kind not in FaultKind.ALL:
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {FaultKind.ALL}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")

    def active_at(self, now: float) -> bool:
        """Whether the spec's window covers virtual time ``now``."""
        if self.start is not None and now < self.start:
            return False
        if self.end is not None and now >= self.end:
            return False
        return True


class ChaosProvider(LLMProvider):
    """Seeded, schedulable fault injection over any provider.

    Faults are evaluated in declaration order; the first one that fires for
    an error kind raises, while ``latency``/``malformed`` faults mutate the
    inner provider's response on the way out (and compose if several fire).
    ``injected`` counts fired faults by kind for assertions and reports.

    ``key_mode`` selects how fault decisions are keyed:

    - ``"arrival"`` (default, legacy): a global call counter — replayable
      for strictly sequential execution, but dependent on arrival order.
    - ``"content"``: the prompt text plus that prompt's own attempt
      counter — a given prompt's fault schedule is identical no matter when
      (or on which thread) it arrives, which is what makes chaos runs under
      the parallel scheduler byte-identical at any worker count.

    ``schedule_preview`` only models ``"arrival"`` keying.
    """

    KEY_MODES = ("arrival", "content")

    def __init__(
        self,
        inner: LLMProvider,
        faults: list[FaultSpec],
        seed: int | str = "chaos",
        clock: VirtualClock | None = None,
        key_mode: str = "arrival",
    ):
        if key_mode not in self.KEY_MODES:
            raise ValueError(
                f"unknown key_mode {key_mode!r}; known: {self.KEY_MODES}"
            )
        self.inner = inner
        self.model_name = inner.model_name
        self.faults = list(faults)
        self.seed = seed
        self.clock = clock or VirtualClock()
        self.key_mode = key_mode
        self.injected: Counter[str] = Counter()
        self.calls = 0
        self._attempts: Counter[str] = Counter()
        self._lock = threading.Lock()

    def schedule_preview(self, n_calls: int) -> list[list[str]]:
        """The fault kinds that *would* fire on the next ``n_calls`` calls.

        Window-gated specs are evaluated at the current clock; the preview
        is what makes chaos schedules assertable before a run.
        """
        now = self.clock.now
        preview: list[list[str]] = []
        for call in range(self.calls + 1, self.calls + n_calls + 1):
            fired = [
                spec.kind
                for index, spec in enumerate(self.faults)
                if spec.active_at(now)
                and (
                    spec.kind == FaultKind.OUTAGE
                    or stable_unit(self.seed, call, index) < spec.rate
                )
            ]
            preview.append(fired)
        return preview

    def fault_state(self) -> dict:
        """Snapshot of the mutable fault-decision state (JSON-safe).

        The checkpoint runtime records this at operator commit boundaries:
        content-keyed fault decisions depend on each prompt's attempt
        counter, so a resumed run must restore the counters or incomplete
        prompts would re-draw their fault schedules from attempt one.
        """
        with self._lock:
            return {
                "calls": self.calls,
                "attempts": dict(self._attempts),
                "injected": dict(self.injected),
            }

    def restore_fault_state(self, state: dict) -> None:
        """Restore a :meth:`fault_state` snapshot (checkpoint resume)."""
        with self._lock:
            self.calls = int(state.get("calls", 0))
            self._attempts = Counter(
                {str(k): int(v) for k, v in state.get("attempts", {}).items()}
            )
            self.injected = Counter(
                {str(k): int(v) for k, v in state.get("injected", {}).items()}
            )

    def _decision_key(self, request: LLMRequest) -> tuple[object, ...]:
        """The stable-hash parts that decide this call's faults."""
        with self._lock:
            self.calls += 1
            if self.key_mode == "content":
                self._attempts[request.prompt] += 1
                return (request.prompt, self._attempts[request.prompt])
            return (self.calls,)

    def complete(self, request: LLMRequest) -> LLMResponse:
        """Serve the request, injecting any scheduled faults."""
        key = self._decision_key(request)
        now = self.clock.now
        mutations: list[FaultSpec] = []
        for index, spec in enumerate(self.faults):
            if not spec.active_at(now):
                continue
            if spec.kind == FaultKind.OUTAGE:
                with self._lock:
                    self.injected[spec.kind] += 1
                raise ProviderError(
                    f"chaos: hard outage window at t={now:.1f}s"
                )
            if stable_unit(self.seed, *key, index) >= spec.rate:
                continue
            with self._lock:
                self.injected[spec.kind] += 1
            tag = "attempt" if self.key_mode == "content" else "call"
            if spec.kind == FaultKind.TRANSIENT:
                raise ProviderError(
                    f"chaos: injected transient failure ({tag} {key[-1]})"
                )
            if spec.kind == FaultKind.RATE_LIMIT:
                raise RateLimitError(
                    f"chaos: injected rate limit ({tag} {key[-1]})",
                    retry_after=spec.retry_after,
                )
            mutations.append(spec)  # latency / malformed apply post-response
        response = self.inner.complete(request)
        for spec in mutations:
            if spec.kind == FaultKind.LATENCY:
                response = replace(
                    response,
                    latency_seconds=response.latency_seconds + spec.extra_latency,
                )
            elif spec.kind == FaultKind.MALFORMED:
                response = replace(response, text=response.text[: spec.truncate_to])
        return response
