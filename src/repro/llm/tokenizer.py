"""Approximate tokeniser for cost accounting.

Real LLM pricing is per token; this estimator mirrors the usual "one token is
roughly four characters or three quarters of a word" rule so that cost
numbers scale realistically with prompt size.
"""

from __future__ import annotations

import math

__all__ = ["count_tokens", "estimate_cost"]

# Price per 1K tokens, in USD, loosely modelled on 2023-era GPT-3.5 pricing.
PROMPT_PRICE_PER_1K = 0.0015
COMPLETION_PRICE_PER_1K = 0.002


def count_tokens(text: str) -> int:
    """Estimate the token count of ``text`` (never less than 1 for non-empty)."""
    if not text:
        return 0
    words = len(text.split())
    by_chars = len(text) / 4.0
    by_words = words * 4.0 / 3.0
    return max(1, int(math.ceil((by_chars + by_words) / 2.0)))


def estimate_cost(prompt_tokens: int, completion_tokens: int) -> float:
    """Dollar cost of a call given its token counts."""
    return (
        prompt_tokens * PROMPT_PRICE_PER_1K / 1000.0
        + completion_tokens * COMPLETION_PRICE_PER_1K / 1000.0
    )
