"""Simulated LLM substrate: providers, service layer, skills, knowledge.

See DESIGN.md section 1 for why a deterministic simulated LLM is the right
substitution for the hosted APIs the paper used.
"""

from repro.llm.errors import (
    BudgetExceededError,
    CircuitOpenError,
    LLMError,
    MalformedResponseError,
    ProviderError,
    RateLimitError,
)
from repro.llm.cache import (
    PROVENANCE_CACHE_EXACT,
    PROVENANCE_CACHE_NEAR,
    PROVENANCE_DISTILLED,
    PROVENANCE_PROVIDER,
    CacheJournal,
    CacheKey,
    CacheStats,
    NearDuplicateIndex,
    PromptCache,
)
from repro.llm.faults import ChaosProvider, FaultKind, FaultSpec
from repro.llm.knowledge import KnowledgeBase
from repro.llm.providers import (
    FlakyProvider,
    LLMProvider,
    LLMRequest,
    LLMResponse,
    SimulatedProvider,
)
from repro.llm.service import CallRecord, CoalesceHub, LLMService, UsageSummary
from repro.llm.tokenizer import count_tokens, estimate_cost

__all__ = [
    "BudgetExceededError",
    "CircuitOpenError",
    "ChaosProvider",
    "FaultKind",
    "FaultSpec",
    "LLMError",
    "MalformedResponseError",
    "ProviderError",
    "RateLimitError",
    "KnowledgeBase",
    "FlakyProvider",
    "LLMProvider",
    "LLMRequest",
    "LLMResponse",
    "SimulatedProvider",
    "CallRecord",
    "CoalesceHub",
    "LLMService",
    "UsageSummary",
    "PROVENANCE_PROVIDER",
    "PROVENANCE_CACHE_EXACT",
    "PROVENANCE_CACHE_NEAR",
    "PROVENANCE_DISTILLED",
    "CacheJournal",
    "CacheKey",
    "CacheStats",
    "NearDuplicateIndex",
    "PromptCache",
    "count_tokens",
    "estimate_cost",
]
