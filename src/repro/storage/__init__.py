"""Relational storage substrate: typed tables, a SQL subset, a catalog."""

from repro.storage.columnar import (
    ColumnarBlock,
    TokenColumn,
    Vocabulary,
    columnar_mode,
    default_columnar,
    resolve_columnar,
    set_default_columnar,
)
from repro.storage.database import Database, QueryLogEntry
from repro.storage.spill import SpillStore, SpillWriteError
from repro.storage.sql.executor import SqlExecutionError, execute_statement
from repro.storage.sql.lexer import SqlLexError, tokenize_sql
from repro.storage.sql.parser import SqlParseError, parse_sql
from repro.storage.table import Column, ColumnType, Schema, Table

__all__ = [
    "ColumnarBlock",
    "TokenColumn",
    "Vocabulary",
    "columnar_mode",
    "default_columnar",
    "resolve_columnar",
    "set_default_columnar",
    "Database",
    "QueryLogEntry",
    "SpillStore",
    "SpillWriteError",
    "SqlExecutionError",
    "execute_statement",
    "SqlLexError",
    "tokenize_sql",
    "SqlParseError",
    "parse_sql",
    "Column",
    "ColumnType",
    "Schema",
    "Table",
]
