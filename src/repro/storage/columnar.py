"""Columnar batch representation for the local (non-provider) hot paths.

Per-record Python dicts and per-pair string loops dominate the system's
non-provider time (see ``RunProfile``'s provider/local split).  This module
introduces the columnar substrate those hot paths vectorize over:

- :class:`Vocabulary` — a deterministic (sorted) token -> id mapping shared
  by every row of a column, so set metrics and joins run over ``int32``
  arrays instead of Python string sets;
- :class:`TokenColumn` — one column of strings with **one-pass cached
  tokenization**: each distinct text is tokenized exactly once, and the
  column keeps flat CSR-style arrays of token ids, sorted-unique token-id
  sets and character codepoints;
- :class:`ColumnarBlock` — a batch of records as named columns, with a
  JSON-safe codec (:meth:`ColumnarBlock.to_payload`) so blocks interoperate
  with the streaming engine's :class:`repro.storage.spill.SpillStore`;
- low-level packing kernels (:func:`pack_codepoints`, :func:`token_id_rows`,
  :func:`unique_id_rows`) used by the vectorized similarity functions in
  :mod:`repro.text.similarity`;
- the process-wide **columnar mode toggle** (:func:`columnar_mode`,
  :func:`resolve_columnar`): every vectorized call site keeps its scalar
  implementation as the testing oracle and consults the toggle when the
  caller passes ``columnar=None``.

Determinism contract: token ids are assigned in sorted token order and all
array layouts are pure functions of the input rows, so two processes (or a
spill/restore round trip) always agree bit for bit.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

__all__ = [
    "Vocabulary",
    "TokenColumn",
    "ColumnarBlock",
    "pack_codepoints",
    "token_id_rows",
    "unique_id_rows",
    "set_default_columnar",
    "default_columnar",
    "columnar_mode",
    "resolve_columnar",
    "spill_encode",
    "spill_decode",
    "minhash_signatures_many",
    "band_keys_many",
]


# ---------------------------------------------------------------------------
# Columnar mode toggle
# ---------------------------------------------------------------------------

# Process-global default plus an override stack.  The stack is intentionally
# *not* thread-local: the scheduler fans module chunks out to worker threads,
# and a run-scoped ``columnar_mode(...)`` entered on the driver thread must
# govern those workers too.  Concurrent runs with conflicting overrides are
# not supported (the same holds for every other process-global knob here).
_DEFAULT_COLUMNAR = True
_OVERRIDES: list[bool] = []


def set_default_columnar(enabled: bool) -> None:
    """Set the process-wide default for ``columnar=None`` call sites."""
    global _DEFAULT_COLUMNAR
    _DEFAULT_COLUMNAR = bool(enabled)


def default_columnar() -> bool:
    """Current effective mode (innermost override, else the default)."""
    if _OVERRIDES:
        return _OVERRIDES[-1]
    return _DEFAULT_COLUMNAR


@contextmanager
def columnar_mode(enabled: bool) -> Iterator[None]:
    """Scope the effective columnar mode (nestable)."""
    _OVERRIDES.append(bool(enabled))
    try:
        yield
    finally:
        _OVERRIDES.pop()


def resolve_columnar(flag: bool | None) -> bool:
    """Resolve a call-site ``columnar`` argument against the ambient mode."""
    if flag is None:
        return default_columnar()
    return bool(flag)


# ---------------------------------------------------------------------------
# Packing kernels
# ---------------------------------------------------------------------------


def pack_codepoints(texts: Sequence[str], fill: int = -1) -> tuple[np.ndarray, np.ndarray]:
    """Pack strings into a padded ``(n, max_len)`` int32 codepoint matrix.

    Returns ``(codes, lengths)``.  Cells past a row's length hold ``fill``;
    pick distinct fills for the two sides of a pair batch so padding never
    compares equal.  An all-empty batch yields a ``(n, 0)`` matrix.
    """
    n = len(texts)
    lengths = np.fromiter((len(t) for t in texts), dtype=np.int64, count=n)
    width = int(lengths.max()) if n else 0
    codes = np.full((n, width), fill, dtype=np.int32)
    if width:
        flat = np.frombuffer(
            "".join(texts).encode("utf-32-le"), dtype=np.uint32
        ).astype(np.int32)
        mask = np.arange(width)[None, :] < lengths[:, None]
        codes[mask] = flat
    return codes, lengths


def token_id_rows(
    rows: Sequence[Sequence[str]], vocab: "Vocabulary"
) -> tuple[np.ndarray, np.ndarray]:
    """Flatten token rows into ``(ids, offsets)`` CSR arrays (order kept)."""
    offsets = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum([len(row) for row in rows], out=offsets[1:])
    ids = np.empty(int(offsets[-1]), dtype=np.int32)
    position = 0
    lookup = vocab._ids
    for row in rows:
        for token in row:
            ids[position] = lookup.get(token, -1)
            position += 1
    return ids, offsets


def unique_id_rows(
    ids: np.ndarray, offsets: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row sorted-unique reduction of a CSR token-id layout."""
    n = len(offsets) - 1
    out_offsets = np.zeros(n + 1, dtype=np.int64)
    chunks: list[np.ndarray] = []
    for i in range(n):
        row = np.unique(ids[offsets[i] : offsets[i + 1]])
        chunks.append(row)
        out_offsets[i + 1] = out_offsets[i] + len(row)
    flat = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int32)
    return flat.astype(np.int32, copy=False), out_offsets


# ---------------------------------------------------------------------------
# Vocabulary
# ---------------------------------------------------------------------------


class Vocabulary:
    """Deterministic token -> id mapping (ids follow sorted token order).

    Sorted assignment is the whole point: a vocabulary built from the same
    token multiset is identical across runs, platforms and processes, so
    every downstream array (and every float accumulated in id order) is
    reproducible.
    """

    __slots__ = ("tokens", "_ids")

    def __init__(self, tokens: Iterable[str]):
        self.tokens: tuple[str, ...] = tuple(sorted(set(tokens)))
        self._ids: dict[str, int] = {t: i for i, t in enumerate(self.tokens)}

    @classmethod
    def from_token_rows(cls, rows: Iterable[Sequence[str]]) -> "Vocabulary":
        """Build from many token rows in one pass."""
        seen: set[str] = set()
        for row in rows:
            seen.update(row)
        return cls(seen)

    def __len__(self) -> int:
        return len(self.tokens)

    def __contains__(self, token: str) -> bool:
        return token in self._ids

    def id_of(self, token: str) -> int:
        """Id of ``token`` (``-1`` when out of vocabulary)."""
        return self._ids.get(token, -1)

    def encode(self, tokens: Sequence[str]) -> np.ndarray:
        """Encode a token sequence to an int32 id array (OOV -> ``-1``)."""
        return np.fromiter(
            (self._ids.get(t, -1) for t in tokens), dtype=np.int32, count=len(tokens)
        )

    def to_payload(self) -> list[str]:
        """JSON-safe form."""
        return list(self.tokens)

    @classmethod
    def from_payload(cls, payload: Sequence[str]) -> "Vocabulary":
        """Rebuild from :meth:`to_payload` output."""
        vocab = cls.__new__(cls)
        vocab.tokens = tuple(payload)
        vocab._ids = {t: i for i, t in enumerate(vocab.tokens)}
        return vocab


# ---------------------------------------------------------------------------
# TokenColumn
# ---------------------------------------------------------------------------


def _default_tokenizer(text: str) -> list[str]:
    return text.split()


class TokenColumn:
    """One column of a :class:`ColumnarBlock`: texts plus derived arrays.

    Arrays:

    - ``token_ids`` / ``offsets`` — every token of every row, in row order
      (CSR layout over the column's :class:`Vocabulary`);
    - ``set_ids`` / ``set_offsets`` — per-row **sorted unique** token ids,
      the layout set metrics and joins consume;
    - ``char_codes`` / ``char_offsets`` — per-row Unicode codepoints for
      edit-distance metrics.

    Tokenization is one-pass cached: each *distinct* text in the column is
    tokenized exactly once, however many rows repeat it.
    """

    __slots__ = (
        "texts",
        "vocab",
        "token_ids",
        "offsets",
        "set_ids",
        "set_offsets",
        "char_codes",
        "char_offsets",
    )

    def __init__(
        self,
        texts: Sequence[str],
        tokenizer: Callable[[str], list[str]] | None = None,
        vocab: Vocabulary | None = None,
    ):
        tokenize = tokenizer or _default_tokenizer
        self.texts: tuple[str, ...] = tuple(texts)
        token_cache: dict[str, list[str]] = {}
        rows: list[list[str]] = []
        for text in self.texts:
            cached = token_cache.get(text)
            if cached is None:
                cached = tokenize(text)
                token_cache[text] = cached
            rows.append(cached)
        self.vocab = vocab if vocab is not None else Vocabulary.from_token_rows(rows)
        self.token_ids, self.offsets = token_id_rows(rows, self.vocab)
        self.set_ids, self.set_offsets = unique_id_rows(self.token_ids, self.offsets)
        flat_codes: list[np.ndarray] = []
        self.char_offsets = np.zeros(len(self.texts) + 1, dtype=np.int64)
        for i, text in enumerate(self.texts):
            codes = np.frombuffer(text.encode("utf-32-le"), dtype=np.uint32)
            flat_codes.append(codes.astype(np.int32))
            self.char_offsets[i + 1] = self.char_offsets[i] + len(codes)
        self.char_codes = (
            np.concatenate(flat_codes) if flat_codes else np.empty(0, dtype=np.int32)
        )

    def __len__(self) -> int:
        return len(self.texts)

    def row_token_ids(self, i: int) -> np.ndarray:
        """Token ids of row ``i`` in text order."""
        return self.token_ids[self.offsets[i] : self.offsets[i + 1]]

    def row_set_ids(self, i: int) -> np.ndarray:
        """Sorted unique token ids of row ``i``."""
        return self.set_ids[self.set_offsets[i] : self.set_offsets[i + 1]]

    def arrays(self) -> dict[str, np.ndarray]:
        """The derived arrays by name (used by tests and the codec)."""
        return {
            "token_ids": self.token_ids,
            "offsets": self.offsets,
            "set_ids": self.set_ids,
            "set_offsets": self.set_offsets,
            "char_codes": self.char_codes,
            "char_offsets": self.char_offsets,
        }

    def arrays_equal(self, other: "TokenColumn") -> bool:
        """Whether every derived array (and the vocab) matches exactly."""
        if self.texts != other.texts or self.vocab.tokens != other.vocab.tokens:
            return False
        mine, theirs = self.arrays(), other.arrays()
        return all(np.array_equal(mine[name], theirs[name]) for name in mine)

    def to_payload(self) -> dict[str, Any]:
        """JSON-safe form; arrays are stored explicitly, not re-derived."""
        payload: dict[str, Any] = {
            "texts": list(self.texts),
            "vocab": self.vocab.to_payload(),
        }
        for name, array in self.arrays().items():
            payload[name] = array.tolist()
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "TokenColumn":
        """Rebuild from :meth:`to_payload` output (bit-exact arrays)."""
        column = cls.__new__(cls)
        column.texts = tuple(payload["texts"])
        column.vocab = Vocabulary.from_payload(payload["vocab"])
        column.token_ids = np.asarray(payload["token_ids"], dtype=np.int32)
        column.offsets = np.asarray(payload["offsets"], dtype=np.int64)
        column.set_ids = np.asarray(payload["set_ids"], dtype=np.int32)
        column.set_offsets = np.asarray(payload["set_offsets"], dtype=np.int64)
        column.char_codes = np.asarray(payload["char_codes"], dtype=np.int32)
        column.char_offsets = np.asarray(payload["char_offsets"], dtype=np.int64)
        return column


# ---------------------------------------------------------------------------
# ColumnarBlock
# ---------------------------------------------------------------------------

_BLOCK_MARKER = "__columnar_block__"


class ColumnarBlock:
    """A batch of records as named :class:`TokenColumn` columns."""

    __slots__ = ("columns", "n_rows")

    def __init__(self, columns: Mapping[str, TokenColumn]):
        self.columns: dict[str, TokenColumn] = dict(columns)
        sizes = {len(column) for column in self.columns.values()}
        if len(sizes) > 1:
            raise ValueError(f"ragged block: column sizes {sorted(sizes)}")
        self.n_rows = sizes.pop() if sizes else 0

    @classmethod
    def from_records(
        cls,
        records: Sequence[Mapping[str, Any]],
        fields: Sequence[str],
        clean: Callable[[Any], str] | None = None,
        tokenizer: Callable[[str], list[str]] | None = None,
    ) -> "ColumnarBlock":
        """Columnarize ``records`` over ``fields``.

        ``clean`` maps a raw field value to the text that is columnarized
        (default: ``str(value)`` with ``None`` -> ``""``), applied once per
        distinct raw value.
        """
        to_text = clean or (lambda value: "" if value is None else str(value))
        clean_cache: dict[Any, str] = {}
        columns: dict[str, TokenColumn] = {}
        for field in fields:
            texts: list[str] = []
            for record in records:
                value = record.get(field)
                # Type-tagged key: True == 1 == 1.0 as dict keys, but they
                # clean to different texts.
                key = (
                    (type(value).__name__, value)
                    if isinstance(value, (str, int, float, bool))
                    else None
                )
                if key is not None and key in clean_cache:
                    texts.append(clean_cache[key])
                    continue
                text = to_text(value)
                if key is not None:
                    clean_cache[key] = text
                texts.append(text)
            columns[field] = TokenColumn(texts, tokenizer=tokenizer)
        return cls(columns)

    def column(self, name: str) -> TokenColumn:
        """Fetch a column by field name."""
        return self.columns[name]

    def arrays_equal(self, other: "ColumnarBlock") -> bool:
        """Whether both blocks hold identical columns and arrays."""
        if set(self.columns) != set(other.columns):
            return False
        return all(
            column.arrays_equal(other.columns[name])
            for name, column in self.columns.items()
        )

    def to_payload(self) -> dict[str, Any]:
        """JSON-safe form understood by :func:`spill_decode`."""
        return {
            _BLOCK_MARKER: 1,
            "columns": {name: col.to_payload() for name, col in self.columns.items()},
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ColumnarBlock":
        """Rebuild from :meth:`to_payload` output."""
        return cls(
            {
                name: TokenColumn.from_payload(column)
                for name, column in payload["columns"].items()
            }
        )


def spill_encode(value: Any) -> Any:
    """Spill-store codec: columnar blocks become JSON payloads, rest passes."""
    if isinstance(value, ColumnarBlock):
        return value.to_payload()
    return value


def spill_decode(value: Any) -> Any:
    """Inverse of :func:`spill_encode`."""
    if isinstance(value, Mapping) and value.get(_BLOCK_MARKER) == 1:
        return ColumnarBlock.from_payload(value)
    return value


# ---------------------------------------------------------------------------
# MinHash / LSH kernels (vectorized counterparts of repro.text.minhash)
# ---------------------------------------------------------------------------

# Shingle ids and the multipliers both live below 2**31, so a*x + b stays
# under 2**62: uint64 arithmetic computes the exact residue and the kernels
# below are *bitwise* equal to the scalar oracles, not approximately so.
_MINHASH_PRIME = np.uint64((1 << 31) - 1)


def minhash_signatures_many(
    id_rows: Sequence[Sequence[int]], a: Sequence[int], b: Sequence[int]
) -> np.ndarray:
    """MinHash signatures for a batch of shingle-id sets.

    ``a``/``b`` come from :func:`repro.text.minhash.minhash_params`.  Returns
    an ``(n_docs, num_perm)`` ``uint64`` array; empty rows get the all-
    ``EMPTY_SLOT`` (= prime) sentinel, matching the scalar oracle.
    """
    num_perm = len(a)
    a_arr = np.asarray(a, dtype=np.uint64)
    b_arr = np.asarray(b, dtype=np.uint64)
    out = np.full((len(id_rows), num_perm), _MINHASH_PRIME, dtype=np.uint64)
    for row_index, ids in enumerate(id_rows):
        if not len(ids):
            continue
        x = np.asarray(ids, dtype=np.uint64)
        # (n_ids, num_perm) residue table; min over the id axis.
        hashed = (x[:, None] * a_arr[None, :] + b_arr[None, :]) % _MINHASH_PRIME
        out[row_index] = hashed.min(axis=0)
    return out


def band_keys_many(signatures: np.ndarray, bands: int, rows: int) -> list[list[str]]:
    """LSH band keys per signature row, bitwise-equal to the scalar path.

    The digest input is the 4-byte little-endian band index followed by the
    band's values packed ``<u4`` — exactly the :func:`repro.text.minhash.band_key`
    layout — so candidate buckets agree between modes.
    """
    import hashlib
    import struct

    if signatures.ndim != 2 or signatures.shape[1] != bands * rows:
        raise ValueError(
            f"signatures must be (n, {bands * rows}), got {signatures.shape}"
        )
    packed = signatures.astype("<u4")
    prefixes = [struct.pack("<I", i) for i in range(bands)]
    keys: list[list[str]] = []
    for row in packed:
        keys.append(
            [
                hashlib.blake2b(
                    prefixes[i] + row[i * rows : (i + 1) * rows].tobytes(),
                    digest_size=8,
                ).hexdigest()
                for i in range(bands)
            ]
        )
    return keys
