"""In-memory relational table with a typed schema and CSV/JSON I/O.

The :class:`Table` is the unit of data that flows through Lingua Manga
pipelines (load -> curate -> save) and the storage layer the optimizer's
connector queries via SQL.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

__all__ = ["ColumnType", "Column", "Schema", "Table"]


class ColumnType:
    """Supported column types and their conversion rules."""

    INT = "INT"
    FLOAT = "FLOAT"
    TEXT = "TEXT"
    BOOL = "BOOL"

    ALL = (INT, FLOAT, TEXT, BOOL)

    @staticmethod
    def convert(value: Any, type_name: str) -> Any:
        """Coerce ``value`` to ``type_name``; ``None`` and '' become NULL."""
        if value is None or (isinstance(value, str) and value == ""):
            return None
        if type_name == ColumnType.INT:
            return int(float(value))
        if type_name == ColumnType.FLOAT:
            return float(value)
        if type_name == ColumnType.BOOL:
            if isinstance(value, str):
                return value.strip().lower() in {"1", "true", "t", "yes"}
            return bool(value)
        if type_name == ColumnType.TEXT:
            return str(value)
        raise ValueError(f"unknown column type: {type_name}")

    @staticmethod
    def infer(values: Iterable[Any]) -> str:
        """Infer the narrowest type that fits all non-null ``values``."""
        saw_any = False
        could_be_int = could_be_float = could_be_bool = True
        for value in values:
            if value is None or value == "":
                continue
            saw_any = True
            text = str(value).strip()
            if text.lower() not in {"true", "false", "t", "f", "0", "1", "yes", "no"}:
                could_be_bool = False
            try:
                as_float = float(text)
                if not as_float.is_integer():
                    could_be_int = False
            except ValueError:
                could_be_int = could_be_float = False
        if not saw_any:
            return ColumnType.TEXT
        if could_be_bool and not could_be_int:
            return ColumnType.BOOL
        if could_be_int:
            return ColumnType.INT
        if could_be_float:
            return ColumnType.FLOAT
        return ColumnType.TEXT


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    type: str = ColumnType.TEXT

    def __post_init__(self) -> None:
        if self.type not in ColumnType.ALL:
            raise ValueError(f"unknown column type: {self.type}")


@dataclass(frozen=True)
class Schema:
    """An ordered collection of columns with name lookup."""

    columns: tuple[Column, ...]

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate column names in schema: {names}")

    @classmethod
    def of(cls, *specs: str | Column | tuple[str, str]) -> "Schema":
        """Build a schema from names, ``(name, type)`` pairs, or columns."""
        columns: list[Column] = []
        for spec in specs:
            if isinstance(spec, Column):
                columns.append(spec)
            elif isinstance(spec, tuple):
                columns.append(Column(spec[0], spec[1]))
            else:
                columns.append(Column(spec))
        return cls(tuple(columns))

    @property
    def names(self) -> list[str]:
        """Column names in order."""
        return [c.name for c in self.columns]

    def index_of(self, name: str) -> int:
        """Position of column ``name`` (raises KeyError if absent)."""
        for i, column in enumerate(self.columns):
            if column.name == name:
                return i
        raise KeyError(f"no such column: {name!r}; have {self.names}")

    def __contains__(self, name: object) -> bool:
        return any(c.name == name for c in self.columns)

    def __len__(self) -> int:
        return len(self.columns)


class Table:
    """A named, schema-typed, row-oriented table.

    Rows are stored as tuples aligned with the schema.  Values are coerced on
    insert, so a ``Table`` is always internally consistent.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        rows: Iterable[Sequence[Any]] | None = None,
    ):
        self.name = name
        self.schema = schema
        self._rows: list[tuple[Any, ...]] = []
        if rows is not None:
            for row in rows:
                self.insert(row)

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_records(
        cls,
        name: str,
        records: Sequence[Mapping[str, Any]],
        schema: Schema | None = None,
    ) -> "Table":
        """Build a table from dict records, inferring the schema if absent."""
        if schema is None:
            keys: list[str] = []
            for record in records:
                for key in record:
                    if key not in keys:
                        keys.append(key)
            columns = tuple(
                Column(key, ColumnType.infer(r.get(key) for r in records))
                for key in keys
            )
            schema = Schema(columns)
        table = cls(name, schema)
        for record in records:
            table.insert([record.get(c.name) for c in schema.columns])
        return table

    # -- mutation --------------------------------------------------------------

    def insert(self, row: Sequence[Any] | Mapping[str, Any]) -> None:
        """Insert one row (sequence in schema order, or a mapping)."""
        if isinstance(row, Mapping):
            row = [row.get(c.name) for c in self.schema.columns]
        if len(row) != len(self.schema):
            raise ValueError(
                f"row has {len(row)} values but schema has {len(self.schema)} columns"
            )
        converted = tuple(
            ColumnType.convert(value, column.type)
            for value, column in zip(row, self.schema.columns)
        )
        self._rows.append(converted)

    def extend(self, rows: Iterable[Sequence[Any] | Mapping[str, Any]]) -> None:
        """Insert many rows."""
        for row in rows:
            self.insert(row)

    # -- access ------------------------------------------------------------------

    @property
    def rows(self) -> list[tuple[Any, ...]]:
        """The raw row tuples (do not mutate)."""
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self._rows)

    def record(self, index: int) -> dict[str, Any]:
        """Row ``index`` as a dict keyed by column name."""
        return dict(zip(self.schema.names, self._rows[index]))

    def records(self) -> list[dict[str, Any]]:
        """All rows as dicts."""
        names = self.schema.names
        return [dict(zip(names, row)) for row in self._rows]

    def column(self, name: str) -> list[Any]:
        """All values of column ``name``."""
        index = self.schema.index_of(name)
        return [row[index] for row in self._rows]

    def select_rows(self, predicate: Callable[[dict[str, Any]], bool]) -> "Table":
        """New table containing the rows whose record satisfies ``predicate``."""
        out = Table(self.name, self.schema)
        for record, row in zip(self.records(), self._rows):
            if predicate(record):
                out._rows.append(row)
        return out

    def head(self, n: int = 5) -> "Table":
        """New table with the first ``n`` rows."""
        out = Table(self.name, self.schema)
        out._rows = list(self._rows[:n])
        return out

    def copy(self, name: str | None = None) -> "Table":
        """Shallow copy (rows are immutable tuples so this is safe)."""
        out = Table(name or self.name, self.schema)
        out._rows = list(self._rows)
        return out

    # -- serialisation -------------------------------------------------------------

    def to_csv(self, path: str | Path | None = None) -> str:
        """Write CSV (returned as a string; also written to ``path`` if given)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.schema.names)
        for row in self._rows:
            writer.writerow(["" if v is None else v for v in row])
        text = buffer.getvalue()
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    @classmethod
    def from_csv(
        cls, source: str | Path, name: str | None = None, schema: Schema | None = None
    ) -> "Table":
        """Read a table from a CSV file path or CSV text."""
        path = Path(source) if isinstance(source, Path) else None
        if path is None:
            candidate = Path(str(source))
            try:
                if candidate.is_file():
                    path = candidate
            except OSError:
                path = None
        text = path.read_text(encoding="utf-8") if path else str(source)
        reader = csv.reader(io.StringIO(text))
        rows = list(reader)
        if not rows:
            raise ValueError("CSV source is empty")
        header, data = rows[0], rows[1:]
        if schema is None:
            columns = tuple(
                Column(
                    header[i],
                    ColumnType.infer(row[i] if i < len(row) else None for row in data),
                )
                for i in range(len(header))
            )
            schema = Schema(columns)
        table_name = name or (path.stem if path else "table")
        table = cls(table_name, schema)
        for row in data:
            padded = list(row) + [None] * (len(schema) - len(row))
            table.insert(padded[: len(schema)])
        return table

    def to_json(self, path: str | Path | None = None) -> str:
        """Serialise to a JSON document with schema and rows."""
        doc = {
            "name": self.name,
            "schema": [{"name": c.name, "type": c.type} for c in self.schema.columns],
            "rows": [list(row) for row in self._rows],
        }
        text = json.dumps(doc, ensure_ascii=False, indent=2)
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    @classmethod
    def from_json(cls, source: str | Path) -> "Table":
        """Deserialise a table previously written by :meth:`to_json`."""
        path = Path(str(source))
        try:
            exists = path.is_file()
        except OSError:
            exists = False
        text = path.read_text(encoding="utf-8") if exists else str(source)
        doc = json.loads(text)
        schema = Schema(tuple(Column(c["name"], c["type"]) for c in doc["schema"]))
        table = cls(doc["name"], schema)
        for row in doc["rows"]:
            table.insert(row)
        return table

    # -- display -------------------------------------------------------------------

    def to_text(self, max_rows: int = 20) -> str:
        """Fixed-width textual rendering (used by the terminal UI)."""
        names = self.schema.names
        shown = self._rows[:max_rows]
        widths = [len(n) for n in names]
        rendered = [["" if v is None else str(v) for v in row] for row in shown]
        for row in rendered:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [
            " | ".join(n.ljust(w) for n, w in zip(names, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for row in rendered:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if len(self._rows) > max_rows:
            lines.append(f"... ({len(self._rows) - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"Table({self.name!r}, {len(self)} rows, cols={self.schema.names})"
