"""Recursive-descent parser for the SQL subset.

Grammar (informal)::

    statement   := select | insert | create | delete
    select      := SELECT [DISTINCT] select_list FROM ident
                   [WHERE expr] [GROUP BY expr_list] [HAVING expr]
                   [ORDER BY order_list] [LIMIT n [OFFSET m]]
    expr        := or_expr
    or_expr     := and_expr (OR and_expr)*
    and_expr    := not_expr (AND not_expr)*
    not_expr    := NOT not_expr | predicate
    predicate   := additive [comparison | IN | IS NULL | LIKE]
    additive    := term ((+|-) term)*
    term        := factor ((*|/|%) factor)*
    factor      := -factor | literal | ident | function(...) | ( expr )
"""

from __future__ import annotations

from typing import Any

from repro.storage.expressions import (
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
)
from repro.storage.sql.ast import (
    Aggregate,
    CreateTableStatement,
    DeleteStatement,
    InsertStatement,
    OrderItem,
    SelectItem,
    SelectStatement,
    Statement,
)
from repro.storage.sql.lexer import SqlToken, tokenize_sql

__all__ = ["SqlParseError", "parse_sql"]

_AGGREGATES = {"COUNT", "SUM", "AVG", "MIN", "MAX"}
_SCALAR_FUNCTIONS = {"LOWER", "UPPER", "LENGTH", "ABS", "COALESCE", "TRIM"}
_COMPARISONS = {"=", "!=", "<>", "<", "<=", ">", ">="}


class SqlParseError(ValueError):
    """Raised on malformed SQL."""


class _Parser:
    def __init__(self, tokens: list[SqlToken], text: str):
        self._tokens = tokens
        self._text = text
        self._pos = 0

    # -- token helpers --------------------------------------------------------

    def _peek(self) -> SqlToken | None:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self) -> SqlToken:
        token = self._peek()
        if token is None:
            raise SqlParseError(f"unexpected end of input in: {self._text!r}")
        self._pos += 1
        return token

    def _match_keyword(self, *keywords: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "KEYWORD" and token.value in keywords:
            self._pos += 1
            return True
        return False

    def _expect_keyword(self, keyword: str) -> None:
        if not self._match_keyword(keyword):
            token = self._peek()
            found = token.value if token else "end of input"
            raise SqlParseError(f"expected {keyword}, found {found!r}")

    def _match_symbol(self, symbol: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "SYMBOL" and token.value == symbol:
            self._pos += 1
            return True
        return False

    def _expect_symbol(self, symbol: str) -> None:
        if not self._match_symbol(symbol):
            token = self._peek()
            found = token.value if token else "end of input"
            raise SqlParseError(f"expected {symbol!r}, found {found!r}")

    def _expect_ident(self) -> str:
        token = self._next()
        if token.kind != "IDENT":
            raise SqlParseError(f"expected identifier, found {token.value!r}")
        return token.value

    # -- statements ------------------------------------------------------------

    def parse_statement(self) -> Statement:
        token = self._peek()
        if token is None:
            raise SqlParseError("empty statement")
        if token.kind != "KEYWORD":
            raise SqlParseError(f"expected a statement keyword, found {token.value!r}")
        if token.value == "SELECT":
            statement: Statement = self._parse_select()
        elif token.value == "INSERT":
            statement = self._parse_insert()
        elif token.value == "CREATE":
            statement = self._parse_create()
        elif token.value == "DELETE":
            statement = self._parse_delete()
        else:
            raise SqlParseError(f"unsupported statement: {token.value}")
        self._match_symbol(";")
        if self._peek() is not None:
            raise SqlParseError(f"trailing input after statement: {self._peek().value!r}")
        return statement

    def _parse_select(self) -> SelectStatement:
        self._expect_keyword("SELECT")
        statement = SelectStatement()
        statement.distinct = self._match_keyword("DISTINCT")
        if self._match_symbol("*"):
            statement.star = True
        else:
            statement.items.append(self._parse_select_item())
            while self._match_symbol(","):
                statement.items.append(self._parse_select_item())
        self._expect_keyword("FROM")
        statement.table = self._expect_ident()
        if self._match_keyword("WHERE"):
            statement.where = self._parse_expression()
        if self._match_keyword("GROUP"):
            self._expect_keyword("BY")
            statement.group_by.append(self._parse_expression())
            while self._match_symbol(","):
                statement.group_by.append(self._parse_expression())
        if self._match_keyword("HAVING"):
            statement.having = self._parse_expression()
        if self._match_keyword("ORDER"):
            self._expect_keyword("BY")
            statement.order_by.append(self._parse_order_item())
            while self._match_symbol(","):
                statement.order_by.append(self._parse_order_item())
        if self._match_keyword("LIMIT"):
            statement.limit = self._parse_int()
            if self._match_keyword("OFFSET"):
                statement.offset = self._parse_int()
        return statement

    def _parse_order_item(self) -> OrderItem:
        expr = self._parse_expression()
        descending = False
        if self._match_keyword("DESC"):
            descending = True
        else:
            self._match_keyword("ASC")
        return OrderItem(expr, descending)

    def _parse_int(self) -> int:
        token = self._next()
        if token.kind != "NUMBER" or "." in token.value:
            raise SqlParseError(f"expected integer, found {token.value!r}")
        return int(token.value)

    def _parse_select_item(self) -> SelectItem:
        token = self._peek()
        expression: Expression | Aggregate
        if token is not None and token.kind == "KEYWORD" and token.value in _AGGREGATES:
            self._pos += 1
            self._expect_symbol("(")
            if token.value == "COUNT" and self._match_symbol("*"):
                expression = Aggregate("COUNT", None)
            else:
                expression = Aggregate(token.value, self._parse_expression())
            self._expect_symbol(")")
        else:
            expression = self._parse_expression()
        alias = None
        if self._match_keyword("AS"):
            alias = self._expect_ident()
        else:
            nxt = self._peek()
            if nxt is not None and nxt.kind == "IDENT":
                alias = self._next().value
        return SelectItem(expression, alias)

    def _parse_insert(self) -> InsertStatement:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_ident()
        columns: list[str] = []
        if self._match_symbol("("):
            columns.append(self._expect_ident())
            while self._match_symbol(","):
                columns.append(self._expect_ident())
            self._expect_symbol(")")
        self._expect_keyword("VALUES")
        rows: list[list[Any]] = []
        while True:
            self._expect_symbol("(")
            row: list[Any] = [self._parse_literal_value()]
            while self._match_symbol(","):
                row.append(self._parse_literal_value())
            self._expect_symbol(")")
            rows.append(row)
            if not self._match_symbol(","):
                break
        return InsertStatement(table, columns, rows)

    def _parse_literal_value(self) -> Any:
        token = self._next()
        if token.kind == "STRING":
            return token.value
        if token.kind == "NUMBER":
            return float(token.value) if "." in token.value else int(token.value)
        if token.kind == "KEYWORD" and token.value == "NULL":
            return None
        if token.kind == "KEYWORD" and token.value in ("TRUE", "FALSE"):
            return token.value == "TRUE"
        if token.kind == "SYMBOL" and token.value == "-":
            inner = self._parse_literal_value()
            if not isinstance(inner, (int, float)):
                raise SqlParseError("cannot negate a non-numeric literal")
            return -inner
        raise SqlParseError(f"expected a literal, found {token.value!r}")

    def _parse_create(self) -> CreateTableStatement:
        self._expect_keyword("CREATE")
        self._expect_keyword("TABLE")
        table = self._expect_ident()
        self._expect_symbol("(")
        columns: list[tuple[str, str]] = [self._parse_column_def()]
        while self._match_symbol(","):
            columns.append(self._parse_column_def())
        self._expect_symbol(")")
        return CreateTableStatement(table, columns)

    def _parse_column_def(self) -> tuple[str, str]:
        name = self._expect_ident()
        token = self._next()
        if token.kind != "KEYWORD" or token.value not in ("INT", "FLOAT", "TEXT", "BOOL"):
            raise SqlParseError(f"expected a column type, found {token.value!r}")
        return name, token.value

    def _parse_delete(self) -> DeleteStatement:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_ident()
        where = None
        if self._match_keyword("WHERE"):
            where = self._parse_expression()
        return DeleteStatement(table, where)

    # -- expressions ----------------------------------------------------------

    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self._match_keyword("OR"):
            left = BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self._match_keyword("AND"):
            left = BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> Expression:
        if self._match_keyword("NOT"):
            return UnaryOp("NOT", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expression:
        left = self._parse_additive()
        token = self._peek()
        if token is None:
            return left
        if token.kind == "SYMBOL" and token.value in _COMPARISONS:
            self._pos += 1
            return BinaryOp(token.value, left, self._parse_additive())
        negated = False
        if token.kind == "KEYWORD" and token.value == "NOT":
            lookahead = (
                self._tokens[self._pos + 1] if self._pos + 1 < len(self._tokens) else None
            )
            if lookahead is not None and lookahead.kind == "KEYWORD" and lookahead.value in (
                "IN",
                "LIKE",
            ):
                self._pos += 1
                negated = True
                token = self._peek()
        if token is not None and token.kind == "KEYWORD":
            if token.value == "IN":
                self._pos += 1
                self._expect_symbol("(")
                options: list[Expression] = [self._parse_expression()]
                while self._match_symbol(","):
                    options.append(self._parse_expression())
                self._expect_symbol(")")
                return InList(left, tuple(options), negated)
            if token.value == "LIKE":
                self._pos += 1
                pattern_token = self._next()
                if pattern_token.kind != "STRING":
                    raise SqlParseError("LIKE requires a string pattern")
                return Like(left, pattern_token.value, negated)
            if token.value == "IS":
                self._pos += 1
                is_negated = self._match_keyword("NOT")
                self._expect_keyword("NULL")
                return IsNull(left, is_negated)
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_term()
        while True:
            token = self._peek()
            if token is not None and token.kind == "SYMBOL" and token.value in ("+", "-"):
                self._pos += 1
                left = BinaryOp(token.value, left, self._parse_term())
            else:
                return left

    def _parse_term(self) -> Expression:
        left = self._parse_factor()
        while True:
            token = self._peek()
            if token is not None and token.kind == "SYMBOL" and token.value in ("*", "/", "%"):
                self._pos += 1
                left = BinaryOp(token.value, left, self._parse_factor())
            else:
                return left

    def _parse_factor(self) -> Expression:
        token = self._next()
        if token.kind == "SYMBOL" and token.value == "-":
            return UnaryOp("-", self._parse_factor())
        if token.kind == "SYMBOL" and token.value == "(":
            inner = self._parse_expression()
            self._expect_symbol(")")
            return inner
        if token.kind == "NUMBER":
            value = float(token.value) if "." in token.value else int(token.value)
            return Literal(value)
        if token.kind == "STRING":
            return Literal(token.value)
        if token.kind == "KEYWORD":
            if token.value == "NULL":
                return Literal(None)
            if token.value in ("TRUE", "FALSE"):
                return Literal(token.value == "TRUE")
            raise SqlParseError(f"unexpected keyword in expression: {token.value}")
        if token.kind == "IDENT":
            if token.value.upper() in _SCALAR_FUNCTIONS and self._match_symbol("("):
                args: list[Expression] = []
                if not self._match_symbol(")"):
                    args.append(self._parse_expression())
                    while self._match_symbol(","):
                        args.append(self._parse_expression())
                    self._expect_symbol(")")
                return FunctionCall(token.value.upper(), tuple(args))
            return ColumnRef(token.value)
        raise SqlParseError(f"unexpected token in expression: {token.value!r}")


def parse_sql(text: str) -> Statement:
    """Parse a single SQL statement; raises :class:`SqlParseError` on failure."""
    tokens = tokenize_sql(text)
    return _Parser(tokens, text).parse_statement()
