"""Executor for the SQL subset: statements against a table catalog."""

from __future__ import annotations

from typing import Any, Mapping

from repro.storage.expressions import evaluate
from repro.storage.sql.ast import (
    Aggregate,
    CreateTableStatement,
    DeleteStatement,
    InsertStatement,
    SelectStatement,
    Statement,
)
from repro.storage.table import Column, ColumnType, Schema, Table

__all__ = ["SqlExecutionError", "execute_statement"]


class SqlExecutionError(ValueError):
    """Raised on semantic errors (unknown table/column, bad aggregates...)."""


def execute_statement(statement: Statement, catalog: Mapping[str, Table]) -> Table | int:
    """Execute ``statement`` against ``catalog`` (name -> Table).

    SELECT returns a result :class:`Table`; INSERT/DELETE return the affected
    row count; CREATE TABLE registers a new table in the (mutable) catalog
    and returns 0.
    """
    if isinstance(statement, SelectStatement):
        return _execute_select(statement, catalog)
    if isinstance(statement, InsertStatement):
        return _execute_insert(statement, catalog)
    if isinstance(statement, CreateTableStatement):
        return _execute_create(statement, catalog)
    if isinstance(statement, DeleteStatement):
        return _execute_delete(statement, catalog)
    raise SqlExecutionError(f"unsupported statement type: {type(statement).__name__}")


def _get_table(catalog: Mapping[str, Table], name: str) -> Table:
    if name not in catalog:
        raise SqlExecutionError(f"no such table: {name!r}; have {sorted(catalog)}")
    return catalog[name]


def _execute_insert(statement: InsertStatement, catalog: Mapping[str, Table]) -> int:
    table = _get_table(catalog, statement.table)
    names = statement.columns or table.schema.names
    for row in statement.rows:
        if len(row) != len(names):
            raise SqlExecutionError(
                f"INSERT row has {len(row)} values for {len(names)} columns"
            )
        table.insert(dict(zip(names, row)))
    return len(statement.rows)


def _execute_create(statement: CreateTableStatement, catalog: Mapping[str, Table]) -> int:
    if statement.table in catalog:
        raise SqlExecutionError(f"table already exists: {statement.table!r}")
    schema = Schema(tuple(Column(name, type_) for name, type_ in statement.columns))
    if not isinstance(catalog, dict):
        raise SqlExecutionError("catalog is read-only; cannot CREATE TABLE")
    catalog[statement.table] = Table(statement.table, schema)
    return 0


def _execute_delete(statement: DeleteStatement, catalog: Mapping[str, Table]) -> int:
    table = _get_table(catalog, statement.table)
    if statement.where is None:
        count = len(table)
        table.rows.clear()
        return count
    keep: list[tuple[Any, ...]] = []
    deleted = 0
    for record, row in zip(table.records(), table.rows):
        if evaluate(statement.where, record) is True:
            deleted += 1
        else:
            keep.append(row)
    table.rows[:] = keep
    return deleted


def _execute_select(statement: SelectStatement, catalog: Mapping[str, Table]) -> Table:
    table = _get_table(catalog, statement.table)
    records = table.records()
    if statement.where is not None:
        records = [r for r in records if evaluate(statement.where, r) is True]

    has_aggregates = any(
        isinstance(item.expression, Aggregate) for item in statement.items
    )
    if statement.group_by or has_aggregates:
        result_records, names = _grouped_select(statement, records)
        environments = result_records
    else:
        result_records, names = _plain_select(statement, records, table)
        # ORDER BY may reference base columns that were projected away, so
        # sort keys are evaluated against base record + projected values.
        environments = [
            {**base, **projected}
            for base, projected in zip(records, result_records)
        ]

    if statement.having is not None and not (statement.group_by or has_aggregates):
        raise SqlExecutionError("HAVING requires GROUP BY or aggregates")

    if statement.order_by:
        result_records = _order(result_records, statement, environments)
    if statement.distinct:
        seen: set[tuple[Any, ...]] = set()
        unique: list[dict[str, Any]] = []
        for record in result_records:
            key = tuple(record[n] for n in names)
            if key not in seen:
                seen.add(key)
                unique.append(record)
        result_records = unique
    if statement.offset:
        result_records = result_records[statement.offset :]
    if statement.limit is not None:
        result_records = result_records[: statement.limit]

    return Table.from_records(
        "result", result_records, schema=_result_schema(names, result_records)
    )


def _result_schema(names: list[str], records: list[dict[str, Any]]) -> Schema:
    columns = tuple(
        Column(name, ColumnType.infer(r.get(name) for r in records)) for name in names
    )
    return Schema(columns)


def _plain_select(
    statement: SelectStatement, records: list[dict[str, Any]], table: Table
) -> tuple[list[dict[str, Any]], list[str]]:
    if statement.star:
        names = table.schema.names
        return [dict(r) for r in records], list(names)
    names = [item.output_name(i) for i, item in enumerate(statement.items)]
    out = []
    for record in records:
        row: dict[str, Any] = {}
        for name, item in zip(names, statement.items):
            row[name] = evaluate(item.expression, record)  # type: ignore[arg-type]
        out.append(row)
    return out, names


def _aggregate_value(agg: Aggregate, group: list[dict[str, Any]]) -> Any:
    if agg.function == "COUNT" and agg.argument is None:
        return len(group)
    values = [evaluate(agg.argument, r) for r in group]  # type: ignore[arg-type]
    values = [v for v in values if v is not None]
    if agg.function == "COUNT":
        return len(values)
    if not values:
        return None
    if agg.function == "SUM":
        return sum(values)
    if agg.function == "AVG":
        return sum(values) / len(values)
    if agg.function == "MIN":
        return min(values)
    if agg.function == "MAX":
        return max(values)
    raise SqlExecutionError(f"unknown aggregate: {agg.function}")


def _grouped_select(
    statement: SelectStatement, records: list[dict[str, Any]]
) -> tuple[list[dict[str, Any]], list[str]]:
    if statement.star:
        raise SqlExecutionError("SELECT * cannot be combined with aggregation")
    # Bucket rows by the GROUP BY key (a single global group if absent).
    groups: dict[tuple[Any, ...], list[dict[str, Any]]] = {}
    order: list[tuple[Any, ...]] = []
    for record in records:
        key = tuple(evaluate(e, record) for e in statement.group_by)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(record)
    if not statement.group_by and not groups:
        groups[()] = []
        order.append(())

    names = [item.output_name(i) for i, item in enumerate(statement.items)]
    group_by_sql = [e.sql() for e in statement.group_by]
    out: list[dict[str, Any]] = []
    for key in order:
        group = groups[key]
        row: dict[str, Any] = {}
        env: dict[str, Any] = dict(group[0]) if group else {}
        # Expose aggregate results under their rendered names so HAVING can
        # reference e.g. COUNT(*) indirectly through the output alias.
        for name, item in zip(names, statement.items):
            if isinstance(item.expression, Aggregate):
                row[name] = _aggregate_value(item.expression, group)
            else:
                expr_sql = item.expression.sql()
                if statement.group_by and expr_sql not in group_by_sql:
                    raise SqlExecutionError(
                        f"non-aggregated column {expr_sql} must appear in GROUP BY"
                    )
                if not group:
                    row[name] = None
                else:
                    row[name] = evaluate(item.expression, group[0])
            env[name] = row[name]
        if statement.having is not None:
            if evaluate(statement.having, env) is not True:
                continue
        out.append(row)
    return out, names


def _order(
    records: list[dict[str, Any]],
    statement: SelectStatement,
    environments: list[dict[str, Any]] | None = None,
) -> list[dict[str, Any]]:
    """Sort ``records``; sort keys are evaluated against ``environments``.

    ``environments`` carries the base columns alongside the projected ones
    so ORDER BY works on columns the projection dropped.  None sorts first
    ascending / last descending (SQLite order).
    """
    envs = environments if environments is not None else records

    def sort_key(pair: tuple[dict[str, Any], dict[str, Any]]):
        _, env = pair
        key = []
        for item in statement.order_by:
            try:
                value = evaluate(item.expression, env)
            except KeyError:
                # Unknown name: fall back to the rendered-alias lookup.
                value = env.get(item.expression.sql())
            null_rank = 0 if value is None else 1
            if item.descending:
                key.append((-null_rank, _Reversed(value)))
            else:
                key.append((null_rank, _Comparable(value)))
        return tuple(key)

    paired = sorted(zip(records, envs), key=sort_key)
    return [record for record, _ in paired]


class _Comparable:
    """Wrap heterogeneous values so sorting never raises TypeError."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def _rank(self) -> tuple[int, Any]:
        if self.value is None:
            return (0, 0)
        if isinstance(self.value, bool):
            return (1, int(self.value))
        if isinstance(self.value, (int, float)):
            return (2, self.value)
        return (3, str(self.value))

    def __lt__(self, other: "_Comparable") -> bool:
        return self._rank() < other._rank()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Comparable) and self._rank() == other._rank()


class _Reversed(_Comparable):
    """Descending-order wrapper."""

    def __lt__(self, other: "_Comparable") -> bool:  # type: ignore[override]
        return other._rank() < self._rank()
