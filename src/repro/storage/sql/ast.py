"""Statement AST for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.storage.expressions import Expression

__all__ = [
    "Statement",
    "SelectItem",
    "Aggregate",
    "OrderItem",
    "SelectStatement",
    "InsertStatement",
    "CreateTableStatement",
    "DeleteStatement",
]


class Statement:
    """Base class for parsed SQL statements."""


@dataclass(frozen=True)
class Aggregate:
    """An aggregate call in a select list: COUNT/SUM/AVG/MIN/MAX.

    ``argument`` is ``None`` for ``COUNT(*)``.
    """

    function: str
    argument: Expression | None

    def sql(self) -> str:
        inner = "*" if self.argument is None else self.argument.sql()
        return f"{self.function}({inner})"


@dataclass(frozen=True)
class SelectItem:
    """One select-list entry: an expression or aggregate, with optional alias."""

    expression: Expression | Aggregate
    alias: str | None = None

    def output_name(self, position: int) -> str:
        """Column name this item produces in the result schema."""
        if self.alias:
            return self.alias
        from repro.storage.expressions import ColumnRef

        if isinstance(self.expression, ColumnRef):
            return self.expression.name
        if isinstance(self.expression, Aggregate):
            return self.expression.sql().lower().replace(" ", "")
        return f"col{position}"


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    expression: Expression
    descending: bool = False


@dataclass
class SelectStatement(Statement):
    """``SELECT ... FROM ... [WHERE] [GROUP BY] [HAVING] [ORDER BY] [LIMIT]``."""

    items: list[SelectItem] = field(default_factory=list)
    star: bool = False
    table: str = ""
    where: Expression | None = None
    group_by: list[Expression] = field(default_factory=list)
    having: Expression | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    offset: int | None = None
    distinct: bool = False


@dataclass
class InsertStatement(Statement):
    """``INSERT INTO table [(cols)] VALUES (...), (...)``."""

    table: str
    columns: list[str] = field(default_factory=list)
    rows: list[list[Any]] = field(default_factory=list)


@dataclass
class CreateTableStatement(Statement):
    """``CREATE TABLE name (col TYPE, ...)``."""

    table: str
    columns: list[tuple[str, str]] = field(default_factory=list)


@dataclass
class DeleteStatement(Statement):
    """``DELETE FROM table [WHERE ...]``."""

    table: str
    where: Expression | None = None
