"""SQL subset: lexer, parser, AST and executor."""

from repro.storage.sql.ast import (
    Aggregate,
    CreateTableStatement,
    DeleteStatement,
    InsertStatement,
    OrderItem,
    SelectItem,
    SelectStatement,
    Statement,
)
from repro.storage.sql.executor import SqlExecutionError, execute_statement
from repro.storage.sql.lexer import SqlLexError, SqlToken, tokenize_sql
from repro.storage.sql.parser import SqlParseError, parse_sql

__all__ = [
    "Aggregate",
    "CreateTableStatement",
    "DeleteStatement",
    "InsertStatement",
    "OrderItem",
    "SelectItem",
    "SelectStatement",
    "Statement",
    "SqlExecutionError",
    "execute_statement",
    "SqlLexError",
    "SqlToken",
    "tokenize_sql",
    "SqlParseError",
    "parse_sql",
]
