"""SQL lexer for the connector's query subset."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SqlToken", "SqlLexError", "tokenize_sql", "KEYWORDS"]

KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
    "ASC", "DESC", "LIMIT", "OFFSET", "AND", "OR", "NOT", "IN", "IS", "NULL",
    "LIKE", "AS", "INSERT", "INTO", "VALUES", "CREATE", "TABLE", "TRUE",
    "FALSE", "COUNT", "SUM", "AVG", "MIN", "MAX", "DELETE", "UPDATE", "SET",
    "INT", "FLOAT", "TEXT", "BOOL",
}

_SYMBOLS = ("<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", "*", "+", "-", "/", "%", ".", ";")


class SqlLexError(ValueError):
    """Raised when the SQL text contains an unrecognised character."""


@dataclass(frozen=True)
class SqlToken:
    """A lexical token: kind is KEYWORD, IDENT, NUMBER, STRING or SYMBOL."""

    kind: str
    value: str
    position: int


def tokenize_sql(text: str) -> list[SqlToken]:
    """Tokenise ``text``; raises :class:`SqlLexError` on bad input."""
    tokens: list[SqlToken] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            j = i + 1
            parts: list[str] = []
            while True:
                if j >= n:
                    raise SqlLexError(f"unterminated string literal at {i}")
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(text[j])
                j += 1
            tokens.append(SqlToken("STRING", "".join(parts), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    seen_dot = True
                j += 1
            tokens.append(SqlToken("NUMBER", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word.upper() in KEYWORDS:
                tokens.append(SqlToken("KEYWORD", word.upper(), i))
            else:
                tokens.append(SqlToken("IDENT", word, i))
            i = j
            continue
        matched = False
        for symbol in _SYMBOLS:
            if text.startswith(symbol, i):
                tokens.append(SqlToken("SYMBOL", symbol, i))
                i += len(symbol)
                matched = True
                break
        if not matched:
            raise SqlLexError(f"unexpected character {ch!r} at position {i}")
    return tokens
