"""Typed expression trees shared by the SQL engine.

Expressions evaluate against an *environment*: a mapping from column name to
value.  SQL three-valued logic is approximated with Python ``None`` as NULL:
comparisons with NULL yield ``None`` and ``WHERE`` treats ``None`` as false,
which matches the observable behaviour of the SQL subset we support.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Mapping

__all__ = [
    "Expression",
    "Literal",
    "ColumnRef",
    "UnaryOp",
    "BinaryOp",
    "FunctionCall",
    "InList",
    "IsNull",
    "Like",
    "evaluate",
]


class Expression:
    """Base class for expression nodes."""

    def sql(self) -> str:
        """Render back to SQL-ish text (used by EXPLAIN and the UI)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value (number, string, boolean or NULL)."""

    value: Any

    def sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        return str(self.value)


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A reference to a column by name."""

    name: str

    def sql(self) -> str:
        return self.name


@dataclass(frozen=True)
class UnaryOp(Expression):
    """``NOT expr`` or ``-expr``."""

    op: str
    operand: Expression

    def sql(self) -> str:
        if self.op.upper() == "NOT":
            return f"NOT ({self.operand.sql()})"
        return f"{self.op}({self.operand.sql()})"


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Binary arithmetic, comparison or logical operator."""

    op: str
    left: Expression
    right: Expression

    def sql(self) -> str:
        return f"({self.left.sql()} {self.op} {self.right.sql()})"


@dataclass(frozen=True)
class FunctionCall(Expression):
    """Scalar function call: LOWER, UPPER, LENGTH, ABS, COALESCE."""

    name: str
    args: tuple[Expression, ...]

    def sql(self) -> str:
        return f"{self.name}({', '.join(a.sql() for a in self.args)})"


@dataclass(frozen=True)
class InList(Expression):
    """``expr IN (v1, v2, ...)`` (optionally negated)."""

    operand: Expression
    options: tuple[Expression, ...]
    negated: bool = False

    def sql(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.operand.sql()} {keyword} ({', '.join(o.sql() for o in self.options)}))"


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False

    def sql(self) -> str:
        keyword = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.sql()} {keyword})"


@dataclass(frozen=True)
class Like(Expression):
    """``expr LIKE pattern`` with ``%`` and ``_`` wildcards (case-insensitive)."""

    operand: Expression
    pattern: str
    negated: bool = False

    def sql(self) -> str:
        keyword = "NOT LIKE" if self.negated else "LIKE"
        return f"({self.operand.sql()} {keyword} '{self.pattern}')"


def _like_to_regex(pattern: str) -> re.Pattern[str]:
    parts: list[str] = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("^" + "".join(parts) + "$", re.IGNORECASE | re.DOTALL)


_SCALAR_FUNCTIONS = {
    "LOWER": lambda args: None if args[0] is None else str(args[0]).lower(),
    "UPPER": lambda args: None if args[0] is None else str(args[0]).upper(),
    "LENGTH": lambda args: None if args[0] is None else len(str(args[0])),
    "ABS": lambda args: None if args[0] is None else abs(args[0]),
    "COALESCE": lambda args: next((a for a in args if a is not None), None),
    "TRIM": lambda args: None if args[0] is None else str(args[0]).strip(),
}


def _numeric(op: str, a: Any, b: Any) -> Any:
    if a is None or b is None:
        return None
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if b == 0:
            return None
        return a / b
    if op == "%":
        if b == 0:
            return None
        return a % b
    raise ValueError(f"unknown arithmetic operator: {op}")


def _compare(op: str, a: Any, b: Any) -> Any:
    if a is None or b is None:
        return None
    # Allow numeric/text cross-comparison by coercing numbers when one side
    # is a string that parses; otherwise compare as-is.
    if isinstance(a, str) != isinstance(b, str):
        try:
            a = float(a)
            b = float(b)
        except (TypeError, ValueError):
            a, b = str(a), str(b)
    if op in ("=", "=="):
        return a == b
    if op in ("!=", "<>"):
        return a != b
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    if op == ">=":
        return a >= b
    raise ValueError(f"unknown comparison operator: {op}")


def evaluate(expr: Expression, env: Mapping[str, Any]) -> Any:
    """Evaluate ``expr`` against environment ``env`` (column -> value)."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ColumnRef):
        if expr.name not in env:
            raise KeyError(f"unknown column {expr.name!r}")
        return env[expr.name]
    if isinstance(expr, UnaryOp):
        value = evaluate(expr.operand, env)
        if expr.op.upper() == "NOT":
            return None if value is None else not bool(value)
        if expr.op == "-":
            return None if value is None else -value
        raise ValueError(f"unknown unary operator: {expr.op}")
    if isinstance(expr, BinaryOp):
        op = expr.op.upper()
        if op in ("AND", "OR"):
            left = evaluate(expr.left, env)
            right = evaluate(expr.right, env)
            lb = None if left is None else bool(left)
            rb = None if right is None else bool(right)
            if op == "AND":
                if lb is False or rb is False:
                    return False
                if lb is None or rb is None:
                    return None
                return True
            if lb is True or rb is True:
                return True
            if lb is None or rb is None:
                return None
            return False
        left = evaluate(expr.left, env)
        right = evaluate(expr.right, env)
        if expr.op in ("+", "-", "*", "/", "%"):
            if expr.op == "+" and (isinstance(left, str) or isinstance(right, str)):
                if left is None or right is None:
                    return None
                return str(left) + str(right)
            return _numeric(expr.op, left, right)
        return _compare(expr.op, left, right)
    if isinstance(expr, FunctionCall):
        fn = _SCALAR_FUNCTIONS.get(expr.name.upper())
        if fn is None:
            raise ValueError(f"unknown function: {expr.name}")
        return fn([evaluate(a, env) for a in expr.args])
    if isinstance(expr, InList):
        value = evaluate(expr.operand, env)
        if value is None:
            return None
        members = [evaluate(o, env) for o in expr.options]
        hit = any(_compare("=", value, m) is True for m in members)
        return (not hit) if expr.negated else hit
    if isinstance(expr, IsNull):
        value = evaluate(expr.operand, env)
        return (value is not None) if expr.negated else (value is None)
    if isinstance(expr, Like):
        value = evaluate(expr.operand, env)
        if value is None:
            return None
        hit = bool(_like_to_regex(expr.pattern).match(str(value)))
        return (not hit) if expr.negated else hit
    raise TypeError(f"cannot evaluate expression of type {type(expr).__name__}")


def columns_referenced(expr: Expression) -> set[str]:
    """All column names referenced anywhere in ``expr``."""
    if isinstance(expr, ColumnRef):
        return {expr.name}
    if isinstance(expr, Literal):
        return set()
    if isinstance(expr, UnaryOp):
        return columns_referenced(expr.operand)
    if isinstance(expr, BinaryOp):
        return columns_referenced(expr.left) | columns_referenced(expr.right)
    if isinstance(expr, FunctionCall):
        out: set[str] = set()
        for arg in expr.args:
            out |= columns_referenced(arg)
        return out
    if isinstance(expr, InList):
        out = columns_referenced(expr.operand)
        for option in expr.options:
            out |= columns_referenced(option)
        return out
    if isinstance(expr, (IsNull, Like)):
        return columns_referenced(expr.operand)
    return set()


__all__.append("columns_referenced")
