"""Disk spill store: bounded scratch space for in-flight streaming shards.

The streaming executor (:mod:`repro.core.runtime.workqueue`) pulls records
lazily from a source iterator and must be able to *retry* a shard without
rewinding that iterator — so every materialized shard's input records are
spilled to disk here and the in-memory copy is dropped.  A shard's spill
file lives exactly as long as its ledger entry is open: written at
materialization, read on each execution attempt, deleted when the shard's
results are folded downstream.

The store is scratch space, not a durability layer: a durable resume
rebuilds shard inputs by re-iterating the (seeded, deterministic) source,
so spill files carry no crash-safety obligations and are written with plain
buffered I/O.  What the store *does* enforce is the spill **budget**: the
executor consults :meth:`SpillStore.has_room` before materializing another
shard, which is one half of streaming backpressure (the other half is the
in-flight shard window).

Fault injection: arm a :class:`repro.llm.faults.TriggerPoint` on the
``spill:write`` boundary via ``write_fault`` and the Nth write raises
:class:`SpillWriteError`, which the executor treats as a transient
materialization failure — the pulled chunk is kept and the spill retried,
never silently dropped.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Callable

__all__ = ["SpillWriteError", "SpillStore"]


class SpillWriteError(RuntimeError):
    """A shard spill write failed (disk full, injected fault)."""


class SpillStore:
    """Byte-budgeted scratch files, one per in-flight shard.

    Parameters
    ----------
    directory:
        Where spill files live; created on first write.
    budget_bytes:
        Soft cap consulted by :meth:`has_room`; ``None`` means unbounded.
        ``put`` itself never refuses — the budget throttles *materialization*
        (backpressure), it does not fail work already pulled from the source.
    encode / decode:
        Per-record codecs; default to plain JSON.  The executor passes the
        checkpoint codec so shard inputs may contain tuples and other
        journal-safe values.
    write_fault:
        Optional :class:`repro.llm.faults.TriggerPoint`; when it fires at
        ``spill:write`` the write raises :class:`SpillWriteError` before
        touching disk.
    """

    def __init__(
        self,
        directory: str | Path,
        budget_bytes: int | None = None,
        encode: Callable[[Any], Any] | None = None,
        decode: Callable[[Any], Any] | None = None,
        write_fault: Any = None,
    ):
        if budget_bytes is not None and budget_bytes < 1:
            raise ValueError("budget_bytes must be positive (or None)")
        self.directory = Path(directory)
        self.budget_bytes = budget_bytes
        self._encode = encode or (lambda value: value)
        self._decode = decode or (lambda value: value)
        self.write_fault = write_fault
        #: optional repro.obs.metrics.MetricsRegistry (attached by the executor)
        self.metrics = None
        self.spilled_bytes = 0
        self.peak_bytes = 0
        self.writes = 0
        self.write_failures = 0
        self._sizes: dict[str, int] = {}
        self._lock = threading.Lock()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.spill"

    def has_room(self, estimate_bytes: int = 0) -> bool:
        """Whether the budget admits roughly ``estimate_bytes`` more."""
        if self.budget_bytes is None:
            return True
        with self._lock:
            return self.spilled_bytes + estimate_bytes <= self.budget_bytes

    def put(self, key: str, records: list) -> int:
        """Spill one shard's records; returns bytes written.

        Re-putting a key replaces its file (retried materialization after a
        failed write).  Raises :class:`SpillWriteError` when the armed write
        fault fires or the OS write fails.
        """
        if self.write_fault is not None and self.write_fault.fires("spill:write"):
            with self._lock:
                self.write_failures += 1
            if self.metrics is not None:
                self.metrics.counter("spill.write_failures").inc()
            raise SpillWriteError(f"injected spill-write failure for shard {key!r}")
        payload = json.dumps(
            [self._encode(record) for record in records], ensure_ascii=False
        )
        data = payload.encode("utf-8")
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._path(key).write_bytes(data)
        except OSError as error:
            with self._lock:
                self.write_failures += 1
            if self.metrics is not None:
                self.metrics.counter("spill.write_failures").inc()
            raise SpillWriteError(f"spill write failed for shard {key!r}: {error}")
        with self._lock:
            previous = self._sizes.get(key, 0)
            self._sizes[key] = len(data)
            self.spilled_bytes += len(data) - previous
            self.peak_bytes = max(self.peak_bytes, self.spilled_bytes)
            self.writes += 1
        if self.metrics is not None:
            self.metrics.counter("spill.writes").inc()
            self.metrics.gauge("spill.bytes").set(self.spilled_bytes)
        return len(data)

    def get(self, key: str) -> list:
        """Load one spilled shard's records (every retry re-reads disk)."""
        raw = json.loads(self._path(key).read_text(encoding="utf-8"))
        return [self._decode(record) for record in raw]

    def remove(self, key: str) -> int:
        """Delete one shard's spill file; returns bytes freed."""
        with self._lock:
            freed = self._sizes.pop(key, 0)
            self.spilled_bytes -= freed
        self._path(key).unlink(missing_ok=True)
        if self.metrics is not None:
            self.metrics.gauge("spill.bytes").set(self.spilled_bytes)
        return freed

    def clear(self) -> None:
        """Drop every spill file (end of run)."""
        with self._lock:
            keys = list(self._sizes)
        for key in keys:
            self.remove(key)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sizes)
