"""A named-table catalog with a SQL front end.

This is the locally-running store the optimizer's connector queries on the
LLM's behalf (paper section 3.2): the LLM sees only the schema and the
results of allow-listed queries, never the raw data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.sql.ast import SelectStatement, Statement
from repro.storage.sql.executor import SqlExecutionError, execute_statement
from repro.storage.sql.parser import parse_sql
from repro.storage.table import Table

__all__ = ["Database", "QueryLogEntry"]


@dataclass(frozen=True)
class QueryLogEntry:
    """One executed statement with its result cardinality."""

    sql: str
    kind: str
    rows_returned: int


@dataclass
class Database:
    """An in-memory database: tables by name plus a query log."""

    name: str = "default"
    tables: dict[str, Table] = field(default_factory=dict)
    query_log: list[QueryLogEntry] = field(default_factory=list)

    def register(self, table: Table, name: str | None = None) -> None:
        """Add (or replace) ``table`` under ``name`` (default: its own name)."""
        self.tables[name or table.name] = table

    def drop(self, name: str) -> None:
        """Remove table ``name`` (raises KeyError if absent)."""
        del self.tables[name]

    def table(self, name: str) -> Table:
        """Fetch table ``name`` (raises KeyError if absent)."""
        if name not in self.tables:
            raise KeyError(f"no such table: {name!r}; have {sorted(self.tables)}")
        return self.tables[name]

    def execute(self, sql: str) -> Table | int:
        """Parse and run one SQL statement; logs the execution."""
        statement = parse_sql(sql)
        result = execute_statement(statement, self.tables)
        rows = len(result) if isinstance(result, Table) else int(result)
        self.query_log.append(
            QueryLogEntry(sql=sql, kind=type(statement).__name__, rows_returned=rows)
        )
        return result

    def query(self, sql: str) -> Table:
        """Run a SELECT and return its result table (rejects non-SELECT)."""
        statement = parse_sql(sql)
        if not isinstance(statement, SelectStatement):
            raise SqlExecutionError("query() only accepts SELECT statements")
        result = execute_statement(statement, self.tables)
        assert isinstance(result, Table)
        self.query_log.append(
            QueryLogEntry(sql=sql, kind="SelectStatement", rows_returned=len(result))
        )
        return result

    def parse(self, sql: str) -> Statement:
        """Parse without executing (used by the connector's allow-list check)."""
        return parse_sql(sql)

    def schema_text(self) -> str:
        """Human/LLM-readable description of every table's schema.

        This is the *only* data-shaped information the connector reveals to
        the LLM by default.
        """
        lines = []
        for name in sorted(self.tables):
            table = self.tables[name]
            columns = ", ".join(f"{c.name} {c.type}" for c in table.schema.columns)
            lines.append(f"TABLE {name} ({columns}) -- {len(table)} rows")
        return "\n".join(lines)
