"""Data discovery: table search by natural-language description.

The paper's introduction lists "data discovery through table search" among
the curation tasks a generic system must cover.  This module ranks the
tables of a local :class:`~repro.storage.database.Database` against an NL
query using TF-IDF over each table's name, column names and a sample of its
values — entirely local, no LLM required (though the query may have been
produced by one).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.database import Database
from repro.text.normalize import normalize_text
from repro.text.similarity import TfIdfModel

__all__ = ["TableMatch", "search_tables"]


@dataclass(frozen=True)
class TableMatch:
    """One ranked search hit."""

    table: str
    score: float
    matched_terms: tuple[str, ...]


def _expand_tokens(text: str) -> str:
    """Split snake_case identifiers and add naive singular forms.

    ``first_name`` must match a query saying "names", and ``customers``
    must match "customer" — a light, stemming-like expansion is enough.
    """
    tokens: list[str] = []
    for token in normalize_text(text).replace("_", " ").split():
        tokens.append(token)
        if token.endswith("ies") and len(token) > 4:
            tokens.append(token[:-3] + "y")
        elif token.endswith("es") and len(token) > 4:
            tokens.append(token[:-2])
        if token.endswith("s") and len(token) > 3:
            tokens.append(token[:-1])
    return " ".join(tokens)


def _table_document(database: Database, name: str, sample_rows: int) -> str:
    table = database.table(name)
    parts = [name]
    parts.extend(column.name for column in table.schema.columns)
    for record in table.records()[:sample_rows]:
        parts.extend(str(v) for v in record.values() if v is not None)
    return _expand_tokens(" ".join(parts))


def search_tables(
    database: Database,
    query: str,
    limit: int = 5,
    sample_rows: int = 20,
) -> list[TableMatch]:
    """Rank tables against ``query``; returns at most ``limit`` scored hits.

    Scoring is TF-IDF cosine between the query and each table's "document"
    (name + columns + sampled values), so a query mentioning either a column
    name or a cell value finds the right table.
    """
    names = sorted(database.tables)
    if not names:
        return []
    documents = {
        name: _table_document(database, name, sample_rows) for name in names
    }
    model = TfIdfModel(list(documents.values()))
    cleaned_query = _expand_tokens(query)
    query_tokens = set(cleaned_query.split())
    matches: list[TableMatch] = []
    for name in names:
        score = model.similarity(cleaned_query, documents[name])
        if score <= 0.0:
            continue
        matched = tuple(
            sorted(query_tokens & set(documents[name].split()))
        )
        matches.append(TableMatch(table=name, score=score, matched_terms=matched))
    matches.sort(key=lambda m: (-m.score, m.table))
    return matches[:limit]
