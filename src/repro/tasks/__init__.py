"""Packaged data-curation tasks: the paper's demo applications plus the
blocking and discovery stages a full deployment needs."""

from repro.tasks.blocking import BlockingResult, block_records
from repro.tasks.discovery import TableMatch, search_tables
from repro.tasks.profiling import (
    Anomaly,
    ColumnProfile,
    TableProfile,
    detect_anomalies,
    profile_table,
    summarize_table,
)
from repro.tasks.curation import (
    CurationResult,
    iter_dedup_candidate_ids,
    iter_dedup_candidates,
    run_decontamination,
    run_dedup,
    run_quality_filter,
)
from repro.tasks.entity_resolution import (
    ERResult,
    pairs_as_inputs,
    pick_examples,
    run_lingua_manga_er,
)
from repro.tasks.imputation import (
    ImputationResult,
    run_hybrid_imputation,
    run_llm_imputation,
)
from repro.tasks.name_extraction import (
    NameExtractionResult,
    run_name_extraction,
    score_extractions,
)

__all__ = [
    "BlockingResult",
    "block_records",
    "TableMatch",
    "search_tables",
    "Anomaly",
    "ColumnProfile",
    "TableProfile",
    "detect_anomalies",
    "profile_table",
    "summarize_table",
    "CurationResult",
    "iter_dedup_candidate_ids",
    "iter_dedup_candidates",
    "run_decontamination",
    "run_dedup",
    "run_quality_filter",
    "ERResult",
    "pairs_as_inputs",
    "pick_examples",
    "run_lingua_manga_er",
    "ImputationResult",
    "run_hybrid_imputation",
    "run_llm_imputation",
    "NameExtractionResult",
    "run_name_extraction",
    "score_extractions",
]
