"""Data profiling, anomaly detection and table summarisation.

The paper's introduction lists "anomaly detection, data summarization" among
the extra tasks real curation processes involve.  This module provides:

- :func:`profile_table` — per-column statistics (null rate, distinct count,
  numeric range, top values);
- :func:`detect_anomalies` — numeric outliers (robust z-score on the median
  absolute deviation) and rare categorical values;
- :func:`summarize_table` — an NL summary of the profile via the LLM
  service (only *aggregates* are uploaded, never rows — the connector
  philosophy applied to summarisation).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

from repro.llm.service import LLMService
from repro.storage.table import ColumnType, Table

__all__ = [
    "ColumnProfile",
    "TableProfile",
    "Anomaly",
    "profile_table",
    "detect_anomalies",
    "summarize_table",
]


@dataclass(frozen=True)
class ColumnProfile:
    """Statistics of one column."""

    name: str
    type: str
    null_count: int
    distinct_count: int
    minimum: float | None = None
    maximum: float | None = None
    mean: float | None = None
    top_values: tuple[tuple[str, int], ...] = ()

    def to_text(self) -> str:
        """One-line rendering."""
        parts = [
            f"{self.name} ({self.type}): nulls={self.null_count}",
            f"distinct={self.distinct_count}",
        ]
        if self.mean is not None:
            parts.append(f"range=[{self.minimum:g}, {self.maximum:g}] mean={self.mean:g}")
        if self.top_values:
            top = ", ".join(f"{value}x{count}" for value, count in self.top_values[:3])
            parts.append(f"top: {top}")
        return " ".join(parts)


@dataclass
class TableProfile:
    """A whole-table profile."""

    table: str
    row_count: int
    columns: list[ColumnProfile] = field(default_factory=list)

    def column(self, name: str) -> ColumnProfile:
        """Profile of one column (raises KeyError if absent)."""
        for profile in self.columns:
            if profile.name == name:
                return profile
        raise KeyError(f"no profiled column {name!r}")

    def to_text(self) -> str:
        """Multi-line rendering."""
        lines = [f"table {self.table}: {self.row_count} rows"]
        lines.extend("  " + c.to_text() for c in self.columns)
        return "\n".join(lines)


@dataclass(frozen=True)
class Anomaly:
    """One flagged cell."""

    column: str
    row_index: int
    value: object
    kind: str  # "numeric_outlier" | "rare_category"
    score: float

    def describe(self) -> str:
        """One-line rendering."""
        return (
            f"{self.column}[{self.row_index}] = {self.value!r} "
            f"({self.kind}, score {self.score:.2f})"
        )


def profile_table(table: Table, top_k: int = 5) -> TableProfile:
    """Compute per-column statistics for ``table``."""
    profile = TableProfile(table=table.name, row_count=len(table))
    for column in table.schema.columns:
        values = table.column(column.name)
        non_null = [v for v in values if v is not None]
        numeric = [v for v in non_null if isinstance(v, (int, float)) and not isinstance(v, bool)]
        stats: dict = {
            "name": column.name,
            "type": column.type,
            "null_count": len(values) - len(non_null),
            "distinct_count": len(set(map(str, non_null))),
        }
        if numeric and column.type in (ColumnType.INT, ColumnType.FLOAT):
            stats["minimum"] = float(min(numeric))
            stats["maximum"] = float(max(numeric))
            stats["mean"] = sum(numeric) / len(numeric)
        else:
            counts = Counter(str(v) for v in non_null)
            stats["top_values"] = tuple(counts.most_common(top_k))
        profile.columns.append(ColumnProfile(**stats))
    return profile


def _robust_z_scores(values: list[float]) -> list[float]:
    """Median/MAD z-scores (robust to the outliers being hunted)."""
    ordered = sorted(values)
    n = len(ordered)
    median = ordered[n // 2] if n % 2 else (ordered[n // 2 - 1] + ordered[n // 2]) / 2
    deviations = sorted(abs(v - median) for v in values)
    mad = deviations[n // 2] if n % 2 else (deviations[n // 2 - 1] + deviations[n // 2]) / 2
    if mad == 0:
        # Fall back to the standard deviation when over half the data is
        # identical.
        mean = sum(values) / n
        std = math.sqrt(sum((v - mean) ** 2 for v in values) / n) or 1.0
        return [(v - mean) / std for v in values]
    return [0.6745 * (v - median) / mad for v in values]


def detect_anomalies(
    table: Table,
    z_threshold: float = 3.5,
    rare_fraction: float = 0.05,
    min_rows: int = 8,
) -> list[Anomaly]:
    """Flag numeric outliers and rare categorical values.

    Numeric columns use robust z-scores with threshold ``z_threshold``;
    text/bool columns flag values occurring in fewer than ``rare_fraction``
    of rows (and exactly once), provided the column is categorical-ish
    (distinct values << rows).
    """
    anomalies: list[Anomaly] = []
    if len(table) < min_rows:
        return anomalies
    for column in table.schema.columns:
        values = table.column(column.name)
        if column.type in (ColumnType.INT, ColumnType.FLOAT):
            indexed = [
                (i, float(v)) for i, v in enumerate(values) if v is not None
            ]
            if len(indexed) < min_rows:
                continue
            scores = _robust_z_scores([v for _, v in indexed])
            for (row_index, value), score in zip(indexed, scores):
                if abs(score) >= z_threshold:
                    anomalies.append(
                        Anomaly(column.name, row_index, value, "numeric_outlier", abs(score))
                    )
        else:
            non_null = [(i, str(v)) for i, v in enumerate(values) if v is not None]
            if not non_null:
                continue
            counts = Counter(v for _, v in non_null)
            if len(counts) > max(2, len(non_null) // 3):
                continue  # free-text column, rarity is meaningless
            for row_index, value in non_null:
                count = counts[value]
                if count == 1 and count / len(non_null) <= rare_fraction:
                    anomalies.append(
                        Anomaly(
                            column.name,
                            row_index,
                            value,
                            "rare_category",
                            1.0 - count / len(non_null),
                        )
                    )
    anomalies.sort(key=lambda a: (-a.score, a.column, a.row_index))
    return anomalies


def summarize_table(table: Table, service: LLMService) -> str:
    """NL summary of the table's profile (aggregates only reach the LLM)."""
    profile = profile_table(table)
    return service.complete(
        "Summarize the following table profile in plain language.\n"
        f"Text: {profile.to_text()}",
        purpose="profile-summary",
    )
