"""Blocking: candidate-pair generation for entity resolution.

The paper's Table 1 datasets are pre-paired, but a real ER deployment (two
raw tables, no pairs) needs a *blocking* stage first: cheaply pick the
record pairs worth sending to the (expensive) matcher.  This module
implements the standard TF-IDF token-blocking scheme: records sharing
high-weight tokens in a key attribute become candidates, ranked by weighted
overlap, with a per-record cap.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.text.normalize import normalize_text
from repro.text.similarity import TfIdfModel

__all__ = ["BlockingResult", "block_records"]


@dataclass(frozen=True)
class BlockingResult:
    """Candidate pairs plus blocking statistics."""

    pairs: list[tuple[int, int]]  # (left_index, right_index)
    candidates_considered: int
    reduction_ratio: float  # 1 - |candidates| / |cross product|

    def summary(self) -> str:
        """One-line rendering."""
        return (
            f"{len(self.pairs)} candidate pairs "
            f"(reduction {self.reduction_ratio:.1%})"
        )


def block_records(
    left: list[dict],
    right: list[dict],
    key: str,
    max_candidates_per_record: int = 5,
    min_shared_tokens: int = 1,
) -> BlockingResult:
    """TF-IDF token blocking between two record collections.

    For every left record, the ``max_candidates_per_record`` right records
    with the highest shared-token TF-IDF weight become candidate pairs.
    Records sharing fewer than ``min_shared_tokens`` tokens are never paired.
    """
    if not left or not right:
        return BlockingResult([], 0, 1.0)

    def key_text(record: dict) -> str:
        return normalize_text(str(record.get(key) or ""))

    left_texts = [key_text(r) for r in left]
    right_texts = [key_text(r) for r in right]
    model = TfIdfModel(left_texts + right_texts)

    # Inverted index over the right side.
    index: dict[str, list[int]] = defaultdict(list)
    for j, text in enumerate(right_texts):
        for token in set(text.split()):
            index[token].append(j)

    pairs: list[tuple[int, int]] = []
    considered = 0
    for i, text in enumerate(left_texts):
        scores: dict[int, float] = defaultdict(float)
        shared: dict[int, int] = defaultdict(int)
        for token in set(text.split()):
            weight = model.idf(token)
            for j in index.get(token, ()):
                scores[j] += weight
                shared[j] += 1
        considered += len(scores)
        eligible = [j for j in scores if shared[j] >= min_shared_tokens]
        eligible.sort(key=lambda j: (-scores[j], j))
        for j in eligible[:max_candidates_per_record]:
            pairs.append((i, j))

    total = len(left) * len(right)
    reduction = 1.0 - len(pairs) / total if total else 1.0
    return BlockingResult(pairs=pairs, candidates_considered=considered, reduction_ratio=reduction)
