"""Blocking: candidate-pair generation for entity resolution.

The paper's Table 1 datasets are pre-paired, but a real ER deployment (two
raw tables, no pairs) needs a *blocking* stage first: cheaply pick the
record pairs worth sending to the (expensive) matcher.  This module
implements the standard TF-IDF token-blocking scheme — records sharing
high-weight tokens in a key attribute become candidates, ranked by weighted
overlap, with a per-record cap — backed by an inverted token index so the
scan is proportional to candidates, never to the |left|×|right| cross
product.

Token blocking has a known blind spot: a typo inside every shared token
(``"sierr nevada"`` vs ``"sierra nevada"``) leaves zero index overlap, and
the record silently loses all candidates.  Left records that come up empty
therefore fall back to a **sorted neighborhood** pass: the right side's key
texts are sorted once, the left text is binary-searched into that order,
and the few lexicographic neighbours on either side are screened with the
*banded* Levenshtein distance (:func:`repro.text.similarity
.levenshtein_distance` with ``max_distance``), which answers "within d
edits?" in O(n·d) and exits early otherwise.  Only neighbours clearing
``fallback_similarity`` become candidates — disjoint vocabularies still
produce nothing.

Two implementations share this contract:

* the **scalar** path (dict probes, per-pair Levenshtein) — the testing
  oracle, and
* the **columnar** path (sorted token-id arrays, one ``searchsorted`` join,
  ``bincount`` score accumulation, batched banded Levenshtein) — the
  default.

Both accumulate each pair's TF-IDF score in ascending-token order, so the
float sums — and therefore every tie-break — are bitwise identical.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.storage.columnar import resolve_columnar
from repro.text.normalize import normalize_text
from repro.text.similarity import TfIdfModel, levenshtein_distance, levenshtein_distance_many

__all__ = ["BlockingResult", "block_records"]


@dataclass(frozen=True)
class BlockingResult:
    """Candidate pairs plus blocking statistics."""

    pairs: list[tuple[int, int]]  # (left_index, right_index)
    candidates_considered: int
    reduction_ratio: float  # 1 - |candidates| / |cross product|

    def summary(self) -> str:
        """One-line rendering."""
        return (
            f"{len(self.pairs)} candidate pairs "
            f"(reduction {self.reduction_ratio:.1%})"
        )


def _neighborhood_candidates(
    text: str,
    sorted_right: list[tuple[str, int]],
    window: int,
    fallback_similarity: float,
) -> tuple[list[tuple[int, float]], int]:
    """Sorted-neighborhood rescue for a left record with no token overlap.

    Returns ``(candidates, examined)`` where candidates are
    ``(right_index, similarity)`` pairs clearing ``fallback_similarity``.
    """
    if not text or not sorted_right:
        return [], 0
    position = bisect_left(sorted_right, (text, -1))
    lo = max(0, position - window)
    hi = min(len(sorted_right), position + window)
    found: list[tuple[int, float]] = []
    examined = 0
    for neighbor_text, j in sorted_right[lo:hi]:
        examined += 1
        if not neighbor_text:
            continue
        longest = max(len(text), len(neighbor_text))
        # "similarity >= bar" == "distance <= (1 - bar) * longest"; the
        # banded computation only ever fills that diagonal.
        budget = int((1.0 - fallback_similarity) * longest)
        distance = levenshtein_distance(text, neighbor_text, max_distance=budget)
        if distance <= budget:
            found.append((j, 1.0 - distance / longest))
    return found, examined


def _block_scalar(
    left_texts: list[str],
    right_texts: list[str],
    model: TfIdfModel,
    max_candidates_per_record: int,
    min_shared_tokens: int,
    neighborhood_window: int,
    fallback_similarity: float,
) -> tuple[list[tuple[int, int]], int]:
    """Dict-probe reference implementation (the columnar path's oracle)."""
    index: dict[str, list[int]] = defaultdict(list)
    for j, text in enumerate(right_texts):
        for token in set(text.split()):
            index[token].append(j)
    sorted_right = sorted((text, j) for j, text in enumerate(right_texts))

    pairs: list[tuple[int, int]] = []
    considered = 0
    for i, text in enumerate(left_texts):
        scores: dict[int, float] = defaultdict(float)
        shared: dict[int, int] = defaultdict(int)
        # Ascending-token iteration pins the float accumulation order, so
        # scores — and score ties — never depend on set/hash order.
        for token in sorted(set(text.split())):
            weight = model.idf(token)
            for j in index.get(token, ()):
                scores[j] += weight
                shared[j] += 1
        considered += len(scores)
        eligible = [j for j in scores if shared[j] >= min_shared_tokens]
        eligible.sort(key=lambda j: (-scores[j], j))
        if not eligible and neighborhood_window > 0:
            rescued, examined = _neighborhood_candidates(
                text, sorted_right, neighborhood_window, fallback_similarity
            )
            considered += examined
            rescued.sort(key=lambda item: (-item[1], item[0]))
            eligible = [j for j, _ in rescued]
        for j in eligible[:max_candidates_per_record]:
            pairs.append((i, j))
    return pairs, considered


def _ranks_within_groups(group: np.ndarray) -> np.ndarray:
    """0-based rank of each element inside its (contiguous) group."""
    if not len(group):
        return np.empty(0, dtype=np.int64)
    boundary = np.empty(len(group), dtype=bool)
    boundary[0] = True
    boundary[1:] = group[1:] != group[:-1]
    starts = np.nonzero(boundary)[0]
    run_lengths = np.diff(np.append(starts, len(group)))
    return np.arange(len(group), dtype=np.int64) - np.repeat(starts, run_lengths)


def _block_columnar(
    left_texts: list[str],
    right_texts: list[str],
    model: TfIdfModel,
    max_candidates_per_record: int,
    min_shared_tokens: int,
    neighborhood_window: int,
    fallback_similarity: float,
) -> tuple[list[tuple[int, int]], int]:
    """Array-join implementation; bitwise-equal to :func:`_block_scalar`.

    The inverted-index probe becomes one ``searchsorted`` join between the
    left entry list and the token-sorted right entry list; per-pair scores
    are ``bincount`` sums over entries sorted by ``(i, j, token)`` — the
    same addition sequence the scalar loop performs — and the
    sorted-neighborhood rescue screens all windows with one batched banded
    Levenshtein call.
    """
    n_left, n_right = len(left_texts), len(right_texts)

    token_rows: dict[str, tuple[str, ...]] = {}
    for text in left_texts:
        if text not in token_rows:
            token_rows[text] = tuple(sorted(set(text.split())))
    for text in right_texts:
        if text not in token_rows:
            token_rows[text] = tuple(sorted(set(text.split())))
    row_sizes = np.fromiter(
        (len(row) for row in token_rows.values()), np.int64, count=len(token_rows)
    )
    flat_tokens = [t for row in token_rows.values() for t in row]
    if flat_tokens:
        # One vectorized unique over a fixed-width unicode array replaces
        # per-text dict encoding; numpy's code-point comparison matches
        # Python's sort order, so ids equal the sorted-vocabulary ranks
        # and each row's ids are already ascending.
        vocab_tokens, flat_ids = np.unique(np.array(flat_tokens), return_inverse=True)
        flat_ids = flat_ids.astype(np.int64, copy=False)
    else:
        vocab_tokens = np.empty(0, dtype="U1")
        flat_ids = np.empty(0, dtype=np.int64)
    idf = np.fromiter(
        (model.idf(t) for t in vocab_tokens), dtype=np.float64, count=len(vocab_tokens)
    )
    row_offsets = np.concatenate(([0], np.cumsum(row_sizes)))
    text_row = {text: k for k, text in enumerate(token_rows)}

    def entries(texts: list[str]) -> tuple[np.ndarray, np.ndarray]:
        t_rows = np.fromiter((text_row[t] for t in texts), np.int64, count=len(texts))
        counts = row_sizes[t_rows]
        total = int(counts.sum())
        local = np.arange(total, dtype=np.int64)
        ids = flat_ids[local + np.repeat(row_offsets[t_rows] - (np.cumsum(counts) - counts), counts)]
        return ids, np.repeat(np.arange(len(texts), dtype=np.int64), counts)

    l_tid, l_row = entries(left_texts)
    r_tid, r_row = entries(right_texts)
    r_order = np.lexsort((r_row, r_tid))
    r_tid_sorted, r_row_sorted = r_tid[r_order], r_row[r_order]

    considered = 0
    has_eligible = np.zeros(n_left, dtype=bool)
    kept_i: list[np.ndarray] = []
    kept_j: list[np.ndarray] = []
    kept_rank: list[np.ndarray] = []

    starts = np.searchsorted(r_tid_sorted, l_tid, side="left")
    ends = np.searchsorted(r_tid_sorted, l_tid, side="right")
    counts = ends - starts
    total = int(counts.sum())
    if total:
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        positions = np.arange(total, dtype=np.int64) + np.repeat(starts - offsets, counts)
        entry_i = np.repeat(l_row, counts)
        entry_t = np.repeat(l_tid, counts)
        entry_j = r_row_sorted[positions]
        # Entries are generated with ascending tokens inside each left row,
        # so per (i, j) group the bincount adds idf weights in ascending
        # token order — exactly the scalar accumulation sequence — without
        # any entry sort; a single-key unique compacts the group ids.
        group_key = entry_i * np.int64(n_right) + entry_j
        keys, group_id = np.unique(group_key, return_inverse=True)
        scores = np.bincount(group_id, weights=idf[entry_t], minlength=len(keys))
        shared = np.bincount(group_id, minlength=len(keys))
        pair_i, pair_j = keys // n_right, keys % n_right
        considered += len(keys)

        eligible = shared >= min_shared_tokens
        elig_i, elig_j, elig_score = pair_i[eligible], pair_j[eligible], scores[eligible]
        has_eligible[elig_i] = True
        # Groups come out of np.unique ordered by (i, j); lexsort is stable,
        # so two keys suffice — equal (i, score) ties stay j-ascending.
        order = np.lexsort((-elig_score, elig_i))
        elig_i, elig_j = elig_i[order], elig_j[order]
        rank = _ranks_within_groups(elig_i)
        keep = rank < max_candidates_per_record
        kept_i.append(elig_i[keep])
        kept_j.append(elig_j[keep])
        kept_rank.append(rank[keep])

    if neighborhood_window > 0:
        sorted_order = sorted(range(n_right), key=lambda j: (right_texts[j], j))
        sorted_texts = [right_texts[j] for j in sorted_order]
        fb_i: list[int] = []
        fb_pos: list[int] = []
        for i in range(n_left):
            text = left_texts[i]
            if has_eligible[i] or not text:
                continue
            position = bisect_left(sorted_texts, text)
            lo = max(0, position - neighborhood_window)
            hi = min(n_right, position + neighborhood_window)
            considered += hi - lo
            for idx in range(lo, hi):
                if sorted_texts[idx]:
                    fb_i.append(i)
                    fb_pos.append(idx)
        if fb_i:
            a_texts = [left_texts[i] for i in fb_i]
            b_texts = [sorted_texts[p] for p in fb_pos]
            len_a = np.fromiter((len(t) for t in a_texts), np.int64, count=len(a_texts))
            len_b = np.fromiter((len(t) for t in b_texts), np.int64, count=len(b_texts))
            longest = np.maximum(len_a, len_b)
            budget = ((1.0 - fallback_similarity) * longest).astype(np.int64)
            distance = levenshtein_distance_many(a_texts, b_texts, max_distance=budget)
            admit = distance <= budget
            adm_i = np.asarray(fb_i, dtype=np.int64)[admit]
            adm_j = np.fromiter(
                (sorted_order[p] for p in fb_pos), np.int64, count=len(fb_pos)
            )[admit]
            similarity = 1.0 - distance[admit] / longest[admit]
            order = np.lexsort((adm_j, -similarity, adm_i))
            adm_i, adm_j = adm_i[order], adm_j[order]
            rank = _ranks_within_groups(adm_i)
            keep = rank < max_candidates_per_record
            kept_i.append(adm_i[keep])
            kept_j.append(adm_j[keep])
            kept_rank.append(rank[keep])

    if kept_i:
        all_i = np.concatenate(kept_i)
        all_j = np.concatenate(kept_j)
        all_rank = np.concatenate(kept_rank)
        order = np.lexsort((all_rank, all_i))
        pairs = list(zip(all_i[order].tolist(), all_j[order].tolist()))
    else:
        pairs = []
    return pairs, considered


def block_records(
    left: list[dict],
    right: list[dict],
    key: str,
    max_candidates_per_record: int = 5,
    min_shared_tokens: int = 1,
    neighborhood_window: int = 3,
    fallback_similarity: float = 0.55,
    columnar: bool | None = None,
) -> BlockingResult:
    """TF-IDF token blocking between two record collections.

    For every left record, the ``max_candidates_per_record`` right records
    with the highest shared-token TF-IDF weight become candidate pairs.
    Records sharing fewer than ``min_shared_tokens`` tokens are never paired
    by the index; left records the index leaves *empty* get one
    sorted-neighborhood pass over the ``neighborhood_window`` nearest right
    keys in lexicographic order, admitted only above
    ``fallback_similarity`` edit similarity (banded Levenshtein).  Set
    ``neighborhood_window=0`` to disable the fallback.

    ``columnar`` picks the implementation (``None`` follows the ambient
    :func:`repro.storage.columnar.resolve_columnar` mode); both produce
    identical results, pair for pair and count for count.
    """
    if not left or not right:
        return BlockingResult([], 0, 1.0)

    def key_text(record: dict) -> str:
        return normalize_text(str(record.get(key) or ""))

    left_texts = [key_text(r) for r in left]
    right_texts = [key_text(r) for r in right]
    model = TfIdfModel(left_texts + right_texts)

    implementation = _block_columnar if resolve_columnar(columnar) else _block_scalar
    pairs, considered = implementation(
        left_texts,
        right_texts,
        model,
        max_candidates_per_record,
        min_shared_tokens,
        neighborhood_window,
        fallback_similarity,
    )
    total = len(left) * len(right)
    reduction = 1.0 - len(pairs) / total if total else 1.0
    return BlockingResult(pairs=pairs, candidates_considered=considered, reduction_ratio=reduction)
