"""Blocking: candidate-pair generation for entity resolution.

The paper's Table 1 datasets are pre-paired, but a real ER deployment (two
raw tables, no pairs) needs a *blocking* stage first: cheaply pick the
record pairs worth sending to the (expensive) matcher.  This module
implements the standard TF-IDF token-blocking scheme — records sharing
high-weight tokens in a key attribute become candidates, ranked by weighted
overlap, with a per-record cap — backed by an inverted token index so the
scan is proportional to candidates, never to the |left|×|right| cross
product.

Token blocking has a known blind spot: a typo inside every shared token
(``"sierr nevada"`` vs ``"sierra nevada"``) leaves zero index overlap, and
the record silently loses all candidates.  Left records that come up empty
therefore fall back to a **sorted neighborhood** pass: the right side's key
texts are sorted once, the left text is binary-searched into that order,
and the few lexicographic neighbours on either side are screened with the
*banded* Levenshtein distance (:func:`repro.text.similarity
.levenshtein_distance` with ``max_distance``), which answers "within d
edits?" in O(n·d) and exits early otherwise.  Only neighbours clearing
``fallback_similarity`` become candidates — disjoint vocabularies still
produce nothing.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import defaultdict
from dataclasses import dataclass

from repro.text.normalize import normalize_text
from repro.text.similarity import TfIdfModel, levenshtein_distance

__all__ = ["BlockingResult", "block_records"]


@dataclass(frozen=True)
class BlockingResult:
    """Candidate pairs plus blocking statistics."""

    pairs: list[tuple[int, int]]  # (left_index, right_index)
    candidates_considered: int
    reduction_ratio: float  # 1 - |candidates| / |cross product|

    def summary(self) -> str:
        """One-line rendering."""
        return (
            f"{len(self.pairs)} candidate pairs "
            f"(reduction {self.reduction_ratio:.1%})"
        )


def _neighborhood_candidates(
    text: str,
    sorted_right: list[tuple[str, int]],
    window: int,
    fallback_similarity: float,
) -> tuple[list[tuple[int, float]], int]:
    """Sorted-neighborhood rescue for a left record with no token overlap.

    Returns ``(candidates, examined)`` where candidates are
    ``(right_index, similarity)`` pairs clearing ``fallback_similarity``.
    """
    if not text or not sorted_right:
        return [], 0
    position = bisect_left(sorted_right, (text, -1))
    lo = max(0, position - window)
    hi = min(len(sorted_right), position + window)
    found: list[tuple[int, float]] = []
    examined = 0
    for neighbor_text, j in sorted_right[lo:hi]:
        examined += 1
        if not neighbor_text:
            continue
        longest = max(len(text), len(neighbor_text))
        # "similarity >= bar" == "distance <= (1 - bar) * longest"; the
        # banded computation only ever fills that diagonal.
        budget = int((1.0 - fallback_similarity) * longest)
        distance = levenshtein_distance(text, neighbor_text, max_distance=budget)
        if distance <= budget:
            found.append((j, 1.0 - distance / longest))
    return found, examined


def block_records(
    left: list[dict],
    right: list[dict],
    key: str,
    max_candidates_per_record: int = 5,
    min_shared_tokens: int = 1,
    neighborhood_window: int = 3,
    fallback_similarity: float = 0.55,
) -> BlockingResult:
    """TF-IDF token blocking between two record collections.

    For every left record, the ``max_candidates_per_record`` right records
    with the highest shared-token TF-IDF weight become candidate pairs.
    Records sharing fewer than ``min_shared_tokens`` tokens are never paired
    by the index; left records the index leaves *empty* get one
    sorted-neighborhood pass over the ``neighborhood_window`` nearest right
    keys in lexicographic order, admitted only above
    ``fallback_similarity`` edit similarity (banded Levenshtein).  Set
    ``neighborhood_window=0`` to disable the fallback.
    """
    if not left or not right:
        return BlockingResult([], 0, 1.0)

    def key_text(record: dict) -> str:
        return normalize_text(str(record.get(key) or ""))

    left_texts = [key_text(r) for r in left]
    right_texts = [key_text(r) for r in right]
    model = TfIdfModel(left_texts + right_texts)

    # Inverted index over the right side.
    index: dict[str, list[int]] = defaultdict(list)
    for j, text in enumerate(right_texts):
        for token in set(text.split()):
            index[token].append(j)
    sorted_right = sorted((text, j) for j, text in enumerate(right_texts))

    pairs: list[tuple[int, int]] = []
    considered = 0
    for i, text in enumerate(left_texts):
        scores: dict[int, float] = defaultdict(float)
        shared: dict[int, int] = defaultdict(int)
        for token in set(text.split()):
            weight = model.idf(token)
            for j in index.get(token, ()):
                scores[j] += weight
                shared[j] += 1
        considered += len(scores)
        eligible = [j for j in scores if shared[j] >= min_shared_tokens]
        eligible.sort(key=lambda j: (-scores[j], j))
        if not eligible and neighborhood_window > 0:
            rescued, examined = _neighborhood_candidates(
                text, sorted_right, neighborhood_window, fallback_similarity
            )
            considered += examined
            rescued.sort(key=lambda item: (-item[1], item[0]))
            eligible = [j for j, _ in rescued]
        for j in eligible[:max_candidates_per_record]:
            pairs.append((i, j))

    total = len(left) * len(right)
    reduction = 1.0 - len(pairs) / total if total else 1.0
    return BlockingResult(pairs=pairs, candidates_considered=considered, reduction_ratio=reduction)
