"""Entity-resolution task: the section 4.1 flow, packaged.

Builds the Lingua Manga solution a novice gets from the template — an LLM
matcher with a curated task description and a handful of few-shot examples —
and evaluates it with the Table 1 protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.runtime.system import LinguaManga
from repro.core.templates.library import get_template
from repro.datasets.entity_resolution import ERDataset, RecordPair
from repro.ml.metrics import f1_score

__all__ = ["ERResult", "pick_examples", "run_lingua_manga_er", "pairs_as_inputs"]


@dataclass(frozen=True)
class ERResult:
    """Outcome of one entity-resolution run.

    ``cached_calls``/``near_hits``/``distilled_calls`` break down how many
    answers were produced without paying the provider (exact cache hits,
    near-duplicate cache hits, and distilled local-model answers).
    """

    dataset: str
    f1: float
    predictions: list[int]
    llm_calls: int
    cost: float
    cached_calls: int = 0
    near_hits: int = 0
    distilled_calls: int = 0
    #: the underlying RunReport (module stats, quarantine, profile)
    report: Any = None


def pick_examples(pairs: list[RecordPair], k: int = 4) -> list[tuple[tuple, bool]]:
    """Choose ``k`` balanced few-shot examples from labelled pairs.

    This is the paper's label efficiency: a handful of examples, not the
    thousands the supervised baselines consume.
    """
    positives = [p for p in pairs if p.label == 1]
    negatives = [p for p in pairs if p.label == 0]
    chosen: list[RecordPair] = []
    for index in range(k):
        source = positives if index % 2 == 0 else negatives
        if index // 2 < len(source):
            chosen.append(source[index // 2])
    return [((p.left, p.right), bool(p.label)) for p in chosen]


def pairs_as_inputs(pairs: list[RecordPair]) -> list[dict]:
    """Convert dataset pairs to the pipeline's input format."""
    return [{"left": p.left, "right": p.right} for p in pairs]


def run_lingua_manga_er(
    system: LinguaManga,
    dataset: ERDataset,
    n_examples: int = 4,
    workers: int | None = None,
    distill: bool = False,
    distill_config: dict | None = None,
    checkpoint_path: str | None = None,
    resume: bool = True,
    checkpoint: Any = None,
    columnar: bool | None = None,
    autotune: bool = False,
    profile_path: str | None = None,
    cancel: Any = None,
) -> ERResult:
    """Instantiate the ER template, run it on the test split, score F1.

    ``workers`` routes execution through the concurrent scheduler; results
    are identical at any worker count (see the determinism test suite).
    ``distill=True`` attaches the optimizer's distillation router to the
    matcher so high-confidence pairs are answered by a shadow-trained
    local classifier instead of the provider.  ``checkpoint_path`` makes
    the run crash-safe and resumable (see :meth:`LinguaManga.run`).
    """
    examples = pick_examples(dataset.train, n_examples)
    pipeline = get_template("entity_resolution").instantiate(
        examples=examples, distill=distill, distill_config=distill_config
    )
    before = system.usage()
    report = system.run(
        pipeline,
        {"pairs": pairs_as_inputs(dataset.test)},
        workers=workers,
        checkpoint_path=checkpoint_path,
        resume=resume,
        checkpoint=checkpoint,
        columnar=columnar,
        autotune=autotune,
        profile_path=profile_path,
        cancel=cancel,
    )
    after = system.usage()
    verdicts = next(iter(report.outputs.values()))
    predictions = [int(bool(v)) for v in verdicts]
    return ERResult(
        dataset=dataset.name,
        f1=f1_score([p.label for p in dataset.test], predictions),
        predictions=predictions,
        llm_calls=after.served_calls - before.served_calls,
        cost=after.cost - before.cost,
        cached_calls=after.cached_calls - before.cached_calls,
        near_hits=after.near_hits - before.near_hits,
        distilled_calls=after.distilled_calls - before.distilled_calls,
        report=report,
    )
