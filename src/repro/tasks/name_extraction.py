"""Name-extraction task: the section 4.2 flow, packaged.

Runs the Figure 3 pipeline over a (multilingual) corpus and scores
name-level precision/recall/F1 against ground truth.  Variants cover the
demo's storyline: a monolingual first draft, the language-detection fix, and
the simulator-accelerated version.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.runtime.system import LinguaManga
from repro.core.templates.library import get_template
from repro.datasets.names import NameDocument

__all__ = ["NameExtractionResult", "score_extractions", "run_name_extraction"]


@dataclass(frozen=True)
class NameExtractionResult:
    """Outcome of one name-extraction run."""

    variant: str
    precision: float
    recall: float
    f1: float
    llm_calls: int
    cost: float
    per_language_f1: dict[str, float]
    cached_calls: int = 0
    near_hits: int = 0
    distilled_calls: int = 0
    #: the underlying RunReport (module stats, quarantine, profile)
    report: Any = None


def score_extractions(
    documents: list[NameDocument], extracted: list[list[str]]
) -> tuple[float, float, float]:
    """Micro-averaged precision/recall/F1 over name sets per document."""
    if len(documents) != len(extracted):
        raise ValueError("documents and extractions must align")
    tp = fp = fn = 0
    for document, names in zip(documents, extracted):
        truth = set(document.names)
        found = set(names)
        tp += len(truth & found)
        fp += len(found - truth)
        fn += len(truth - found)
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return precision, recall, f1


def run_name_extraction(
    system: LinguaManga,
    documents: list[NameDocument],
    multilingual: bool = True,
    simulate_tagging: bool = False,
    variant: str | None = None,
    workers: int | None = None,
    checkpoint_path: str | None = None,
    resume: bool = True,
    checkpoint: Any = None,
    columnar: bool | None = None,
    autotune: bool = False,
    profile_path: str | None = None,
    cancel: Any = None,
) -> NameExtractionResult:
    """Run the Figure 3 template over ``documents`` and score it.

    ``checkpoint_path`` makes the run crash-safe and resumable (see
    :meth:`LinguaManga.run`).
    """
    pipeline = get_template("name_extraction").instantiate(
        multilingual=multilingual, simulate_tagging=simulate_tagging
    )
    before = system.usage()
    report = system.run(
        pipeline,
        {"documents": [{"text": d.text} for d in documents]},
        workers=workers,
        checkpoint_path=checkpoint_path,
        resume=resume,
        checkpoint=checkpoint,
        columnar=columnar,
        autotune=autotune,
        profile_path=profile_path,
        cancel=cancel,
    )
    after = system.usage()
    enriched = next(iter(report.outputs.values()))
    extracted = [doc.get("names", []) for doc in enriched]
    precision, recall, f1 = score_extractions(documents, extracted)

    per_language: dict[str, float] = {}
    languages = sorted({d.language for d in documents})
    for language in languages:
        subset = [
            (d, names)
            for d, names in zip(documents, extracted)
            if d.language == language
        ]
        _, _, lang_f1 = score_extractions(
            [d for d, _ in subset], [names for _, names in subset]
        )
        per_language[language] = lang_f1

    label = variant or (
        ("multilingual" if multilingual else "monolingual")
        + ("+simulator" if simulate_tagging else "")
    )
    return NameExtractionResult(
        variant=label,
        precision=precision,
        recall=recall,
        f1=f1,
        llm_calls=after.served_calls - before.served_calls,
        cost=after.cost - before.cost,
        per_language_f1=per_language,
        cached_calls=after.cached_calls - before.cached_calls,
        near_hits=after.near_hits - before.near_hits,
        distilled_calls=after.distilled_calls - before.distilled_calls,
        report=report,
    )
