"""Data-imputation task: the section 4.3 flow, packaged.

Two Lingua Manga variants are provided, matching the paper's comparison:

- **pure LLM module** — every record goes to the LLM (accuracy 93.92% in
  the paper);
- **optimized hybrid** — the validator-repaired LLMGC module resolves
  brand-mentioning records locally and escalates only the hard ones,
  "using only 1/6 LLM calls to achieve higher accuracy" (94.48%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.dsl.builder import PipelineBuilder
from repro.core.runtime.system import LinguaManga
from repro.core.templates.library import get_template
from repro.datasets.imputation import ImputationRecord
from repro.ml.metrics import accuracy

__all__ = ["ImputationResult", "run_llm_imputation", "run_hybrid_imputation"]


@dataclass(frozen=True)
class ImputationResult:
    """Outcome of one imputation run."""

    method: str
    accuracy: float
    predictions: list[str]
    llm_calls: int
    cost: float
    cached_calls: int = 0
    near_hits: int = 0
    distilled_calls: int = 0
    #: the underlying RunReport (module stats, quarantine, profile)
    report: Any = None


def _score(
    method: str,
    system: LinguaManga,
    records: list[ImputationRecord],
    raw_predictions: list,
    before,
    after,
    report=None,
) -> ImputationResult:
    predictions = [
        "Unknown" if p is None else str(p).strip() for p in raw_predictions
    ]
    return ImputationResult(
        method=method,
        accuracy=accuracy([r.manufacturer for r in records], predictions),
        predictions=predictions,
        llm_calls=after.served_calls - before.served_calls,
        cost=after.cost - before.cost,
        cached_calls=after.cached_calls - before.cached_calls,
        near_hits=after.near_hits - before.near_hits,
        distilled_calls=after.distilled_calls - before.distilled_calls,
        report=report,
    )


def run_llm_imputation(
    system: LinguaManga,
    records: list[ImputationRecord],
    workers: int | None = None,
    checkpoint_path: str | None = None,
    resume: bool = True,
    checkpoint: Any = None,
    columnar: bool | None = None,
    autotune: bool = False,
    profile_path: str | None = None,
    cancel: Any = None,
) -> ImputationResult:
    """Pure LLM-module pipeline: one (validated) prompt per record.

    ``checkpoint_path`` makes the run crash-safe and resumable (see
    :meth:`LinguaManga.run`).
    """
    pipeline = (
        PipelineBuilder("imputation_pure_llm", "LLM module for every record")
        .load(source="records")
        .impute(impl="llm")
        .save(key="imputed")
        .build()
    )
    before = system.usage()
    report = system.run(
        pipeline,
        {"records": [r.visible() for r in records]},
        workers=workers,
        checkpoint_path=checkpoint_path,
        resume=resume,
        checkpoint=checkpoint,
        columnar=columnar,
        autotune=autotune,
        profile_path=profile_path,
        cancel=cancel,
    )
    after = system.usage()
    return _score(
        "pure_llm",
        system,
        records,
        next(iter(report.outputs.values())),
        before,
        after,
        report=report,
    )


def run_hybrid_imputation(
    system: LinguaManga,
    records: list[ImputationRecord],
    workers: int | None = None,
    checkpoint_path: str | None = None,
    resume: bool = True,
    checkpoint: Any = None,
    columnar: bool | None = None,
    autotune: bool = False,
    profile_path: str | None = None,
    cancel: Any = None,
) -> ImputationResult:
    """The expert template: LLMGC rules + LLM escalation (Figure 4).

    ``workers`` is accepted for API symmetry with the other task runners;
    the LLMGC stage is not parallel-safe (self-repairing codegen), so the
    scheduler runs it whole-input sequentially either way.
    ``checkpoint_path`` makes the run crash-safe and resumable (see
    :meth:`LinguaManga.run`).
    """
    pipeline = get_template("data_imputation").instantiate()
    before = system.usage()
    report = system.run(
        pipeline,
        {"records": [r.visible() for r in records]},
        workers=workers,
        checkpoint_path=checkpoint_path,
        resume=resume,
        checkpoint=checkpoint,
        columnar=columnar,
        autotune=autotune,
        profile_path=profile_path,
        cancel=cancel,
    )
    after = system.usage()
    return _score(
        "hybrid_llmgc",
        system,
        records,
        next(iter(report.outputs.values())),
        before,
        after,
        report=report,
    )
