"""Corpus-curation tasks: deduplication, quality filtering, decontamination.

Packages the three curation templates the way
:mod:`repro.tasks.entity_resolution` packages ER: instantiate the template
with corpus-derived few-shot examples, run it through
:meth:`~repro.core.runtime.system.LinguaManga.run` (or, out of core,
:meth:`~repro.core.runtime.system.LinguaManga.run_stream`), score against
the corpus's planted ground truth and report the cost breakdown.

The streaming dedup path needs candidate pairs *without materialising the
corpus*: :func:`iter_dedup_candidate_ids` re-implements the in-memory
kernel :func:`repro.core.compiler.curation.dedup_candidate_pairs` as a
two-pass external algorithm — band-key postings are spilled to hash
partitions on disk during a single pass over the document stream, then each
partition is bucketed independently and the per-partition sorted pair runs
are merged with :func:`heapq.merge`.  The merged stream is *identical*,
pair for pair, to the in-memory kernel's output (the property suite locks
this), while peak memory stays O(batch + one partition's postings)
regardless of corpus size.
"""

from __future__ import annotations

import heapq
import itertools
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

from repro._util import chunked, stable_hash
from repro.core.compiler.curation import (
    DEDUP_BANDS,
    DEDUP_NUM_PERM,
    DEDUP_ROWS,
    DEDUP_SHINGLE_N,
    dedup_candidate_pairs,
)
from repro.core.runtime.system import LinguaManga
from repro.core.templates.library import get_template
from repro.datasets.curation import CurationCorpus
from repro.ml.metrics import f1_score
from repro.text.minhash import band_keys, minhash_params, minhash_signature
from repro.text.shingle import (
    document_digest,
    knowledge_canonical,
    shingle_ids,
    simple_canonical,
)

__all__ = [
    "CurationResult",
    "iter_dedup_candidate_ids",
    "iter_dedup_candidates",
    "run_dedup",
    "run_quality_filter",
    "run_decontamination",
]


@dataclass(frozen=True)
class CurationResult:
    """Outcome of one curation run, scored against planted ground truth.

    ``predictions`` are per-document 0/1 flags in corpus order (duplicate /
    keep / contaminated depending on the task); the cost fields carry the
    same cache/distillation breakdown as :class:`repro.tasks.entity_resolution.ERResult`.
    """

    task: str
    corpus: str
    f1: float
    predictions: list[int]
    llm_calls: int
    cost: float
    cached_calls: int = 0
    near_hits: int = 0
    distilled_calls: int = 0
    #: the underlying RunReport (module stats, quarantine, profile)
    report: Any = None


# ---------------------------------------------------------------------------
# Memory-flat candidate generation (streaming counterpart of the kernel)
# ---------------------------------------------------------------------------


def _posting_lines(
    batch: list[Any],
    params,
    bands: int,
    rows: int,
    shingle_n: int,
    dual: bool,
    use_columnar: bool,
) -> Iterator[tuple[str, Any]]:
    """``(bucket_key, doc_id)`` postings for one record batch.

    Bucket keys are namespaced per tier (``x:`` digest, ``s:`` simple LSH,
    ``k:`` knowledge LSH) so buckets never mix across tiers — exactly the
    separation the in-memory kernel keeps with its per-tier dictionaries.
    """
    ids = []
    texts = []
    for offset, record in enumerate(batch):
        if isinstance(record, dict):
            ids.append(record.get("id", offset))
            texts.append(str(record.get("text", "")))
        else:
            ids.append(offset)
            texts.append(str(record))
    for doc_id, text in zip(ids, texts):
        yield f"x:{document_digest(text)}", doc_id
    passes = [("s", simple_canonical)]
    if dual:
        passes.append(("k", knowledge_canonical))
    for prefix, canonical in passes:
        id_rows = [shingle_ids(canonical(text), shingle_n) for text in texts]
        if use_columnar:
            from repro.storage.columnar import band_keys_many, minhash_signatures_many

            signatures = minhash_signatures_many(id_rows, params.a, params.b)
            all_keys = band_keys_many(signatures, bands, rows)
        else:
            all_keys = [
                band_keys(minhash_signature(row, params), bands, rows)
                for row in id_rows
            ]
        for doc_id, keys in zip(ids, all_keys):
            for key in keys:
                yield f"{prefix}:{key}", doc_id


def iter_dedup_candidate_ids(
    records: Iterable[Any],
    *,
    num_perm: int = DEDUP_NUM_PERM,
    bands: int = DEDUP_BANDS,
    rows: int = DEDUP_ROWS,
    shingle_n: int = DEDUP_SHINGLE_N,
    dual: bool = True,
    columnar: bool | None = None,
    partitions: int = 16,
    batch_size: int = 256,
    spill_dir: str | Path | None = None,
    stats: dict | None = None,
) -> Iterator[tuple]:
    """Stream the candidate pairs of ``records`` without materialising them.

    Yields exactly the sorted ``(left_id, right_id)`` sequence of
    :func:`repro.core.compiler.curation.dedup_candidate_pairs` — same
    tiers, same kernels, same global order — but consumes ``records`` as a
    one-shot stream: pass 1 spills ``(bucket_key, doc_id)`` postings into
    ``partitions`` hash partitions on disk, pass 2 buckets one partition at
    a time and merges the per-partition sorted pair runs.  Peak memory is
    O(``batch_size`` documents + one partition's postings), independent of
    corpus size.

    ``stats`` (optional dict) receives accounting the memory-flatness tests
    assert on: ``docs``, ``postings``, ``peak_partition_postings``,
    ``spilled_bytes``.
    """
    if bands * rows != num_perm:
        raise ValueError(f"bands*rows must equal num_perm ({bands}*{rows} != {num_perm})")
    if partitions <= 0:
        raise ValueError("partitions must be positive")
    from repro.storage.columnar import resolve_columnar

    use_columnar = resolve_columnar(columnar)
    params = minhash_params(num_perm)
    own_dir = spill_dir is None
    root = Path(tempfile.mkdtemp(prefix="repro-dedup-")) if own_dir else Path(spill_dir)
    root.mkdir(parents=True, exist_ok=True)
    accounting = {"docs": 0, "postings": 0, "peak_partition_postings": 0, "spilled_bytes": 0}
    try:
        files = [open(root / f"part-{i:03d}.tsv", "w", encoding="utf-8") for i in range(partitions)]
        try:
            for batch in chunked(records, batch_size):
                accounting["docs"] += len(batch)
                for key, doc_id in _posting_lines(
                    batch, params, bands, rows, shingle_n, dual, use_columnar
                ):
                    line = f"{key}\t{doc_id}\n"
                    files[stable_hash("dedup-part", key) % partitions].write(line)
                    accounting["postings"] += 1
                    accounting["spilled_bytes"] += len(line)
        finally:
            for handle in files:
                handle.close()

        def partition_pairs(index: int) -> list[tuple]:
            buckets: dict[str, set] = {}
            count = 0
            with open(root / f"part-{index:03d}.tsv", encoding="utf-8") as handle:
                for line in handle:
                    key, _, doc_id = line.rstrip("\n").partition("\t")
                    buckets.setdefault(key, set()).add(doc_id)
                    count += 1
            accounting["peak_partition_postings"] = max(
                accounting["peak_partition_postings"], count
            )
            pairs: set[tuple] = set()
            for bucket in buckets.values():
                if len(bucket) < 2:
                    continue
                members = sorted(bucket)
                for i, left in enumerate(members):
                    for right in members[i + 1 :]:
                        pairs.add((left, right))
            return sorted(pairs)

        merged = heapq.merge(*(partition_pairs(i) for i in range(partitions)))
        for pair, _ in itertools.groupby(merged):
            yield pair
    finally:
        if stats is not None:
            stats.update(accounting)
        if own_dir:
            shutil.rmtree(root, ignore_errors=True)


def iter_dedup_candidates(
    corpus: CurationCorpus,
    *,
    fetch: Callable[[Any], dict] | None = None,
    **kernel: Any,
) -> Iterator[dict]:
    """Stream candidate pairs as the ``{"left", "right"}`` records the
    pairs-mode dedup template consumes.

    ``corpus`` must be index-addressable (``doc(i)``) so pair sides can be
    re-derived on demand — the stream never holds more than the two
    documents of the current pair (plus the scan's bounded state).  Pass
    ``fetch`` to override how a document id resolves to a record.
    """
    if fetch is None:

        def fetch(doc_id: Any) -> dict:
            return corpus.doc(int(str(doc_id)[1:])).record()

    for left_id, right_id in iter_dedup_candidate_ids(corpus.inputs(), **kernel):
        yield {"left": fetch(left_id), "right": fetch(right_id)}


# ---------------------------------------------------------------------------
# Task runners
# ---------------------------------------------------------------------------


def _usage_delta(before, after) -> dict:
    return {
        "llm_calls": after.served_calls - before.served_calls,
        "cost": after.cost - before.cost,
        "cached_calls": after.cached_calls - before.cached_calls,
        "near_hits": after.near_hits - before.near_hits,
        "distilled_calls": after.distilled_calls - before.distilled_calls,
    }


def _report_usage(report) -> dict:
    """Usage of a streamed run, read off the report's cost snapshot.

    ``run_stream`` accounts provider work on the report rather than the
    service-level counters (workers pay the provider; the canonical replay
    is served from the rewarmed cache), so the system-usage delta a batch
    run exposes reads zero here.  ``served_calls`` equals the number of
    LLM-adjudicated items — the same figure the batch path reports.
    """
    cost = report.cost
    return {
        "llm_calls": cost.served_calls,
        "cost": cost.cost,
        "cached_calls": cost.cached_calls,
        "near_hits": cost.near_hits,
        "distilled_calls": cost.distilled_calls,
    }


def run_dedup(
    system: LinguaManga,
    corpus: CurationCorpus,
    n_examples: int = 4,
    workers: int | None = None,
    chunk_size: int | None = None,
    stream: bool = False,
    checkpoint_path: Any = None,
    ledger_path: Any = None,
    resume: bool = True,
    columnar: bool | None = None,
    autotune: bool = False,
    num_perm: int = DEDUP_NUM_PERM,
    bands: int = DEDUP_BANDS,
    rows: int = DEDUP_ROWS,
    shingle_n: int = DEDUP_SHINGLE_N,
    dual: bool = True,
) -> CurationResult:
    """Deduplicate ``corpus`` and score duplicate detection per document.

    ``stream=False`` runs the docs-mode template (whole-corpus candidate
    kernel inside the pipeline); ``stream=True`` generates candidates with
    the memory-flat external scan and streams the pair records through the
    pairs-mode template's verifier core — same verdicts, bounded memory.
    A document is flagged duplicate when any verified pair links it to a
    lower-id partner (the cluster canonical keeps its place).
    """
    kernel = dict(num_perm=num_perm, bands=bands, rows=rows, shingle_n=shingle_n, dual=dual)
    examples = corpus.dedup_examples(n_examples)
    before = system.usage()
    if stream:
        pipeline = get_template("document_dedup").instantiate(
            mode="pairs", examples=examples
        )
        report = system.run_stream(
            pipeline,
            {"pairs": iter_dedup_candidates(corpus, columnar=columnar, **kernel)},
            workers=workers,
            chunk_size=chunk_size,
            ledger_path=ledger_path,
            resume=resume,
            source_id=f"{corpus.fingerprint}|dedup-pairs",
            autotune=autotune,
        )
        pair_ids = list(iter_dedup_candidate_ids(corpus.inputs(), columnar=columnar, **kernel))
    else:
        pipeline = get_template("document_dedup").instantiate(
            mode="docs", examples=examples, **kernel
        )
        records = [doc.record() for doc in corpus]
        report = system.run(
            pipeline,
            {"documents": records},
            workers=workers,
            chunk_size=chunk_size,
            checkpoint_path=checkpoint_path,
            resume=resume,
            columnar=columnar,
            autotune=autotune,
        )
        pair_ids = dedup_candidate_pairs(records, columnar=columnar, **kernel)
    usage = _report_usage(report) if stream else _usage_delta(before, system.usage())
    verdicts = next(iter(report.outputs.values()))
    if len(verdicts) != len(pair_ids):
        raise RuntimeError(
            f"verifier returned {len(verdicts)} verdicts for {len(pair_ids)} pairs"
        )
    duplicates = {max(a, b) for (a, b), verdict in zip(pair_ids, verdicts) if verdict}
    labels = []
    predictions = []
    for doc in corpus:
        labels.append(int(doc.is_duplicate))
        predictions.append(int(doc.doc_id in duplicates))
    return CurationResult(
        task="document_dedup",
        corpus=corpus.fingerprint,
        f1=f1_score(labels, predictions),
        predictions=predictions,
        report=report,
        **usage,
    )


def _run_doc_flag_task(
    system: LinguaManga,
    corpus: CurationCorpus,
    template: str,
    template_kwargs: dict,
    out_key: str,
    label_of: Callable[[Any], bool],
    *,
    workers: int | None,
    chunk_size: int | None,
    stream: bool,
    checkpoint_path: Any,
    ledger_path: Any,
    resume: bool,
    columnar: bool | None,
    autotune: bool,
    source_tag: str,
) -> tuple[dict, list[int], list[int], Any]:
    """Shared run/score plumbing of the two per-document flag tasks."""
    pipeline = get_template(template).instantiate(**template_kwargs)
    before = system.usage()
    if stream:
        report = system.run_stream(
            pipeline,
            {"documents": corpus.inputs()},
            workers=workers,
            chunk_size=chunk_size,
            ledger_path=ledger_path,
            resume=resume,
            source_id=f"{corpus.fingerprint}|{source_tag}",
            autotune=autotune,
        )
    else:
        report = system.run(
            pipeline,
            {"documents": [doc.record() for doc in corpus]},
            workers=workers,
            chunk_size=chunk_size,
            checkpoint_path=checkpoint_path,
            resume=resume,
            columnar=columnar,
            autotune=autotune,
        )
    usage = _report_usage(report) if stream else _usage_delta(before, system.usage())
    output = next(iter(report.outputs.values()))
    predictions = [int(bool(item[out_key])) for item in output]
    labels = [int(label_of(doc)) for doc in corpus]
    return usage, labels, predictions, report


def run_quality_filter(
    system: LinguaManga,
    corpus: CurationCorpus,
    n_examples: int = 4,
    workers: int | None = None,
    chunk_size: int | None = None,
    stream: bool = False,
    checkpoint_path: Any = None,
    ledger_path: Any = None,
    resume: bool = True,
    columnar: bool | None = None,
    autotune: bool = False,
    distill: bool = False,
    distill_config: dict | None = None,
) -> CurationResult:
    """Run the quality-filter cascade over ``corpus``, score keep/drop F1."""
    delta, labels, predictions, report = _run_doc_flag_task(
        system,
        corpus,
        "quality_filter",
        {
            "examples": corpus.quality_examples(n_examples),
            "distill": distill,
            "distill_config": distill_config,
        },
        "keep",
        lambda doc: doc.keep,
        workers=workers,
        chunk_size=chunk_size,
        stream=stream,
        checkpoint_path=checkpoint_path,
        ledger_path=ledger_path,
        resume=resume,
        columnar=columnar,
        autotune=autotune,
        source_tag="quality",
    )
    return CurationResult(
        task="quality_filter",
        corpus=corpus.fingerprint,
        f1=f1_score(labels, predictions),
        predictions=predictions,
        report=report,
        **delta,
    )


def run_decontamination(
    system: LinguaManga,
    corpus: CurationCorpus,
    n_examples: int = 4,
    workers: int | None = None,
    chunk_size: int | None = None,
    stream: bool = False,
    checkpoint_path: Any = None,
    ledger_path: Any = None,
    resume: bool = True,
    columnar: bool | None = None,
    autotune: bool = False,
) -> CurationResult:
    """Scan ``corpus`` against its held-out eval set, score contamination F1."""
    delta, labels, predictions, report = _run_doc_flag_task(
        system,
        corpus,
        "decontamination",
        {
            "eval_items": list(corpus.eval_set.items()),
            "examples": corpus.decontamination_examples(n_examples),
        },
        "contaminated",
        lambda doc: doc.contaminated,
        workers=workers,
        chunk_size=chunk_size,
        stream=stream,
        checkpoint_path=checkpoint_path,
        ledger_path=ledger_path,
        resume=resume,
        columnar=columnar,
        autotune=autotune,
        source_tag="decontam",
    )
    return CurationResult(
        task="decontamination",
        corpus=corpus.fingerprint,
        f1=f1_score(labels, predictions),
        predictions=predictions,
        report=report,
        **delta,
    )
