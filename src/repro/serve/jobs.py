"""Job model for the multi-tenant curation service.

A job is one curation run: a task (a named demo application or an inline
DSL program), a **dataset reference** (a seeded generator spec — datasets
are never uploaded, they are regenerated deterministically from the ref),
and options (worker count, chunk size, task-specific flags).  Everything
about a job is canonical JSON with no wall-clock timestamps, so job
payloads are byte-stable across runs, restarts and worker counts — the
golden API suite pins them.

The task registry maps task names onto the demo-app runners from
:mod:`repro.tasks`; every runner already accepts ``workers`` /
``checkpoint_path`` / ``resume`` / ``cancel``, which is the entire
contract the job queue needs.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "JOB_STATUSES",
    "TERMINAL_STATUSES",
    "TASKS",
    "JobSpec",
    "JobError",
    "resolve_dataset",
    "run_task",
    "result_payload",
    "canonical_json",
]

#: Every status a job can report.  ``resumable`` means the server died (or
#: the job was cancelled) while a checkpoint journal existed: a restarted
#: server requeues the job and the checkpoint machinery replays the
#: committed prefix byte-identically.
JOB_STATUSES = (
    "queued",
    "running",
    "succeeded",
    "failed",
    "cancelled",
    "resumable",
)

#: Statuses a job never leaves (within one server lifetime).
TERMINAL_STATUSES = ("succeeded", "failed", "cancelled")

_TENANT_RE = re.compile(r"^[a-z0-9][a-z0-9_-]{0,63}$")


class JobError(ValueError):
    """A job spec the service refuses (unknown task, bad dataset ref...)."""


def canonical_json(payload: Any) -> str:
    """Canonical JSON: sorted keys, compact separators, no NaN."""
    return json.dumps(
        payload,
        ensure_ascii=False,
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )


@dataclass(frozen=True)
class JobSpec:
    """What a tenant asked the service to run (immutable, canonical)."""

    tenant: str
    task: str
    dataset: dict = field(default_factory=dict)
    options: dict = field(default_factory=dict)
    program: str = ""  # DSL text, for task == "dsl"

    def validate(self) -> None:
        if not _TENANT_RE.match(self.tenant or ""):
            raise JobError(f"invalid tenant name {self.tenant!r}")
        if self.task not in TASKS:
            raise JobError(
                f"unknown task {self.task!r}; have {sorted(TASKS)}"
            )
        if self.task == "dsl" and not self.program.strip():
            raise JobError("task 'dsl' requires a non-empty program")
        if not isinstance(self.dataset, dict):
            raise JobError("dataset must be an object")
        if not isinstance(self.options, dict):
            raise JobError("options must be an object")
        resolve_dataset(self.task, self.dataset, probe=True)

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "task": self.task,
            "dataset": dict(self.dataset),
            "options": dict(self.options),
            "program": self.program,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobSpec":
        if not isinstance(payload, dict):
            raise JobError("job spec must be a JSON object")
        return cls(
            tenant=str(payload.get("tenant", "")),
            task=str(payload.get("task", "")),
            dataset=dict(payload.get("dataset") or {}),
            options=dict(payload.get("options") or {}),
            program=str(payload.get("program", "")),
        )

    def digest(self) -> str:
        """Stable identity digest (chaos tests seed fault injectors on it)."""
        return hashlib.sha256(
            canonical_json(self.to_dict()).encode("utf-8")
        ).hexdigest()[:16]


# -- dataset references -----------------------------------------------------------


def _int(ref: dict, key: str, default: int) -> int:
    try:
        return int(ref.get(key, default))
    except (TypeError, ValueError):
        raise JobError(f"dataset field {key!r} must be an integer") from None


def resolve_dataset(task: str, ref: dict, probe: bool = False) -> Any:
    """Materialise a dataset reference for ``task``.

    ``probe=True`` only validates the ref without generating anything
    (submission-time validation must stay cheap).  Generation is seeded and
    deterministic: the same ref always yields the same records, which is
    what makes a job re-runnable from its ledger entry alone.
    """
    if task == "er":
        name = str(ref.get("name", "beer"))
        from repro.datasets.entity_resolution import ER_DATASET_NAMES

        if name not in ER_DATASET_NAMES:
            raise JobError(
                f"unknown ER dataset {name!r}; have {sorted(ER_DATASET_NAMES)}"
            )
        seed = _int(ref, "seed", 7)
        n_entities = ref.get("n_entities")
        if probe:
            return None
        from repro.datasets.entity_resolution import generate_er_dataset

        return generate_er_dataset(
            name,
            seed=seed,
            n_entities=int(n_entities) if n_entities is not None else None,
        )
    if task == "names":
        seed = _int(ref, "seed", 3)
        n_documents = _int(ref, "n_documents", 80)
        if n_documents < 1:
            raise JobError("n_documents must be positive")
        if probe:
            return None
        from repro.datasets.names import generate_name_dataset

        return generate_name_dataset(seed=seed, n_documents=n_documents).documents
    if task == "imputation":
        seed = _int(ref, "seed", 11)
        n_train = _int(ref, "n_train", 60)
        n_test = _int(ref, "n_test", 120)
        if n_test < 1:
            raise JobError("n_test must be positive")
        if probe:
            return None
        from repro.datasets.imputation import generate_buy_dataset

        return generate_buy_dataset(seed=seed, n_train=n_train, n_test=n_test).test
    if task == "dsl":
        inputs = ref.get("inputs", {})
        if not isinstance(inputs, dict):
            raise JobError("dsl dataset ref must carry an 'inputs' object")
        return None if probe else dict(inputs)
    raise JobError(f"unknown task {task!r}; have {sorted(TASKS)}")


# -- task execution ---------------------------------------------------------------


def _run_er(system, data, options: dict, **run_kw) -> Any:
    from repro.tasks.entity_resolution import run_lingua_manga_er

    return run_lingua_manga_er(
        system,
        data,
        n_examples=int(options.get("n_examples", 4)),
        **run_kw,
    )


def _run_names(system, data, options: dict, **run_kw) -> Any:
    from repro.tasks.name_extraction import run_name_extraction

    return run_name_extraction(
        system,
        data,
        multilingual=bool(options.get("multilingual", True)),
        **run_kw,
    )


def _run_imputation(system, data, options: dict, **run_kw) -> Any:
    from repro.tasks.imputation import run_llm_imputation

    return run_llm_imputation(system, data, **run_kw)


def _run_dsl(system, data, options: dict, **run_kw) -> Any:
    pipeline = system.parse(options.get("program", ""))
    return system.run(pipeline, inputs=data or {}, **run_kw)


#: task name -> runner(system, dataset, options, **run_kw) -> result object.
TASKS: dict[str, Callable[..., Any]] = {
    "er": _run_er,
    "names": _run_names,
    "imputation": _run_imputation,
    "dsl": _run_dsl,
}


def run_task(
    spec: JobSpec,
    system,
    workers: int | None = None,
    checkpoint_path: str | None = None,
    resume: bool = True,
    cancel: Any = None,
) -> Any:
    """Execute ``spec`` on ``system``; returns the task's result object."""
    data = resolve_dataset(spec.task, spec.dataset)
    options = dict(spec.options)
    if spec.task == "dsl":
        options["program"] = spec.program
    return TASKS[spec.task](
        system,
        data,
        options,
        workers=workers,
        checkpoint_path=checkpoint_path,
        resume=resume,
        cancel=cancel,
    )


def result_payload(spec: JobSpec, result: Any) -> dict:
    """The canonical result summary a terminal job reports.

    Floats are rounded the way ``RunReport.canonical_dict`` rounds cost, so
    payloads are platform-stable; the full run report travels separately as
    its canonical JSON digest (and on-disk copy) rather than inline.
    """
    report = getattr(result, "report", None)
    if report is None and type(result).__name__ == "RunReport":
        report, result = result, None
    payload: dict[str, Any] = {"task": spec.task}
    if result is not None:
        for metric in (
            "f1",
            "precision",
            "recall",
            "accuracy",
            "llm_calls",
            "cost",
            "cached_calls",
            "near_hits",
            "distilled_calls",
        ):
            value = getattr(result, metric, None)
            if value is None:
                continue
            payload[metric] = round(value, 10) if isinstance(value, float) else value
    if report is not None:
        canonical = report.canonical_json()
        payload["report_digest"] = hashlib.sha256(
            canonical.encode("utf-8")
        ).hexdigest()[:16]
        payload["quarantined"] = len(report.quarantine)
    return payload
