"""``python -m repro.serve`` — run the curation service.

Binds the asyncio HTTP job API over a fresh (or recovered) job queue.
The data directory is durable: restarting against the same directory
recovers the job ledger, requeues interrupted jobs and warm-starts every
tenant's prompt cache from its journal.
"""

from __future__ import annotations

import argparse
import sys

from repro.serve.queue import JobQueue
from repro.serve.server import JobServer


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Multi-tenant Lingua Manga curation service",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument(
        "--data-dir",
        default="./serve-data",
        help="durable root for the job ledger, caches and checkpoints",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="maximum concurrent jobs across all tenants",
    )
    args = parser.parse_args(argv)

    queue = JobQueue(args.data_dir, max_workers=args.workers)
    server = JobServer(queue, host=args.host, port=args.port).start()
    print(f"serving on {server.address} (data dir: {args.data_dir})")
    try:
        import signal
        import threading

        stop = threading.Event()
        signal.signal(signal.SIGINT, lambda *_: stop.set())
        signal.signal(signal.SIGTERM, lambda *_: stop.set())
        stop.wait()
    finally:
        print("shutting down...")
        server.stop()
        queue.close(drain=False)
    return 0


if __name__ == "__main__":
    sys.exit(main())
