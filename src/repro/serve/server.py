"""A stdlib-asyncio HTTP/1.1 front end over the job queue.

No web framework: requests are parsed off ``asyncio.start_server``
streams directly (request line, headers, ``Content-Length`` body) and
answered with canonical JSON.  The event loop only *parses and routes* —
every queue operation it calls (submit, get, cancel) is a short
lock-guarded memory-or-append operation, so the loop never blocks on job
execution; jobs run on the queue's own worker threads.

Routes::

    GET  /healthz            liveness + queue stats
    POST /jobs               submit  {tenant, task, dataset?, options?, program?}
    GET  /jobs               list    (?tenant=<name> to filter)
    GET  /jobs/<id>          status + result + tracer-derived progress events
    POST /jobs/<id>/cancel   cancel queued or running

Status codes: 202 accepted, 200 ok, 400 malformed request or headers,
404 unknown job, 413 oversized body, 429 quota/rate refused,
503 shutting down.

:class:`JobServer` runs the loop in a daemon thread so tests (and
``python -m repro.serve``) can drive it over real sockets with the
blocking stdlib ``http.client``.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.serve.jobs import JobError, JobSpec, canonical_json
from repro.serve.queue import JobQueue, QuotaExceeded

__all__ = ["JobServer", "MAX_BODY_BYTES", "MAX_HEADER_BYTES"]

#: Submission bodies larger than this are refused (dataset refs are tiny;
#: a huge body is a client error, not a job).
MAX_BODY_BYTES = 1_000_000

#: Combined request-line + header bytes beyond this are refused with 400,
#: so a client streaming headers forever cannot tie up the event loop.
MAX_HEADER_BYTES = 32_768

# Sentinel "bodies" _read_request hands to _route in place of a real one;
# real bodies are JSON and can never start with a NUL byte.
_BAD_HEADERS = b"\x00malformed"
_BODY_TOO_LARGE = b"\x00oversized"

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    503: "Service Unavailable",
}


def _response(status: int, payload: Any) -> bytes:
    body = canonical_json(payload).encode("utf-8")
    reason = _REASONS.get(status, "OK")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("ascii")
    return head + body


class JobServer:
    """Serve a :class:`JobQueue` over HTTP; lifecycle-managed for tests."""

    def __init__(self, queue: JobQueue, host: str = "127.0.0.1", port: int = 0):
        self.queue = queue
        self.host = host
        self.port = port  # 0 = ephemeral; resolved on start
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._start_error: BaseException | None = None

    # -- request handling --------------------------------------------------------

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes] | None:
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, target, _version = (
                request_line.decode("ascii").strip().split(" ", 2)
            )
        except ValueError:
            return ("", "", b"")
        content_length = 0
        header_bytes = len(request_line)
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            header_bytes += len(line)
            if header_bytes > MAX_HEADER_BYTES:
                return (method.upper(), target, _BAD_HEADERS)
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return (method.upper(), target, _BAD_HEADERS)
                if content_length < 0:
                    return (method.upper(), target, _BAD_HEADERS)
        if content_length > MAX_BODY_BYTES:
            return (method.upper(), target, _BODY_TOO_LARGE)
        body = (
            await reader.readexactly(content_length) if content_length else b""
        )
        return (method.upper(), target, body)

    def _route(self, method: str, target: str, body: bytes) -> tuple[int, Any]:
        parts = urlsplit(target)
        path = parts.path.rstrip("/") or "/"
        if body == _BAD_HEADERS:
            return 400, {"error": "malformed or oversized request headers"}
        if body.startswith(b"\x00"):
            return 413, {"error": "request body too large"}
        if path == "/healthz" and method == "GET":
            return 200, {"status": "ok", "stats": self.queue.stats()}
        if path == "/jobs" and method == "POST":
            return self._submit(body)
        if path == "/jobs" and method == "GET":
            query = parse_qs(parts.query)
            tenant = query.get("tenant", [None])[0]
            return 200, {
                "jobs": [
                    job.to_dict(progress=False)
                    for job in self.queue.store.jobs(tenant=tenant)
                ]
            }
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/") :]
            if rest.endswith("/cancel") and method == "POST":
                job_id = rest[: -len("/cancel")]
                job = self.queue.cancel(job_id)
                if job is None:
                    return 404, {"error": f"unknown job {job_id!r}"}
                return 200, job.to_dict()
            if method == "GET" and "/" not in rest:
                job = self.queue.store.get(rest)
                if job is None:
                    return 404, {"error": f"unknown job {rest!r}"}
                return 200, job.to_dict()
        return (405 if path in ("/jobs", "/healthz") else 404), {
            "error": f"no route for {method} {path}"
        }

    def _submit(self, body: bytes) -> tuple[int, Any]:
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (ValueError, UnicodeDecodeError):
            return 400, {"error": "request body is not valid JSON"}
        try:
            spec = JobSpec.from_dict(payload)
            job = self.queue.submit(spec)
        except JobError as error:
            return 400, {"error": str(error)}
        except QuotaExceeded as error:
            return (429 if error.retryable else 503), {"error": error.reason}
        return 202, job.to_dict(progress=False)

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, target, body = request
            if not method:
                writer.write(_response(400, {"error": "malformed request line"}))
            else:
                status, payload = self._route(method, target, body)
                writer.write(_response(status, payload))
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Shutdown cancelled this handler; close the transport quietly
            # (re-raising here would surface through the stream protocol's
            # connection callback as spurious noise).
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    # -- lifecycle ---------------------------------------------------------------

    async def _serve(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        self._started.set()
        async with self._server:
            await self._server.serve_forever()

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        try:
            loop.run_until_complete(self._serve())
        except asyncio.CancelledError:
            pass
        except BaseException as error:  # noqa: BLE001 - surfaced to start()
            self._start_error = error
            self._started.set()
        finally:
            try:
                loop.run_until_complete(loop.shutdown_asyncgens())
            finally:
                loop.close()

    def start(self, timeout: float = 10.0) -> "JobServer":
        """Bind and serve on a background thread; returns once listening."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-serve-http", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise TimeoutError(f"server failed to start within {timeout}s")
        if self._start_error is not None:
            raise RuntimeError("server failed to start") from self._start_error
        return self

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self, timeout: float = 10.0) -> None:
        """Stop accepting connections and join the loop thread."""
        loop = self._loop
        if loop is None:
            return

        def _shutdown() -> None:
            if self._server is not None:
                self._server.close()
            for task in asyncio.all_tasks(loop):
                task.cancel()

        if self._thread is not None and self._thread.is_alive():
            loop.call_soon_threadsafe(_shutdown)
            self._thread.join(timeout)
        self._loop = None
        self._thread = None

    def __enter__(self) -> "JobServer":
        return self.start()

    def __exit__(self, *_exc: Any) -> None:
        self.stop()
