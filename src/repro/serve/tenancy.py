"""Tenant registry: namespaced caches and per-job service construction.

Isolation here is **defense in depth**.  Every tenant gets its own
:class:`~repro.llm.cache.PromptCache` object with its own JSONL journal
(``<data_dir>/tenants/<name>/cache.jsonl``) — tenants cannot share a hit
because they do not share a cache.  Independently, every key a tenant's
jobs create carries the tenant's name as its ``CacheKey.namespace``, so
even if cache objects were ever pooled (or journals concatenated, or
checkpoint records replayed into the wrong service) the keys themselves
still refuse to collide.  The chaos suite's provenance audit rides on the
second layer: it recomputes key digests from ledger records and checks
each one resolves to the owning tenant.

What tenants *do* share is the provider — one object, fronted by a
:class:`~repro.llm.service.CoalesceHub` so identical in-flight prompts
across tenants are answered by one provider call.  Each job still gets a
fresh :class:`LLMService` (own ledger, own virtual clock), which is what
keeps an API job's run report byte-identical to a direct ``system.run``.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any

from repro.llm.cache import PromptCache
from repro.llm.service import CoalesceHub, LLMService
from repro.resilience.clock import VirtualClock

__all__ = ["Tenant", "TenantRegistry"]


class Tenant:
    """One tenant's durable state: its namespace and its cache."""

    def __init__(self, name: str, cache: PromptCache):
        self.name = name
        self.cache = cache
        #: jobs currently executing for this tenant (registry-maintained).
        self.active_jobs = 0
        self._lock = threading.Lock()

    @property
    def namespace(self) -> str:
        return self.name


class TenantRegistry:
    """Creates tenants on first use and builds per-job services."""

    def __init__(
        self,
        data_dir: str | Path,
        provider: Any = None,
        cache_enabled: bool = True,
        persist_caches: bool = True,
    ):
        self.data_dir = Path(data_dir)
        if provider is None:
            from repro.llm.providers import SimulatedProvider

            provider = SimulatedProvider()
        self.provider = provider
        self.hub = CoalesceHub(provider)
        self.cache_enabled = cache_enabled
        self.persist_caches = persist_caches
        self._tenants: dict[str, Tenant] = {}
        self._lock = threading.RLock()

    def get(self, name: str) -> Tenant:
        with self._lock:
            tenant = self._tenants.get(name)
            if tenant is None:
                path = None
                if self.persist_caches:
                    path = self.data_dir / "tenants" / name / "cache.jsonl"
                tenant = Tenant(name, PromptCache(path=path))
                self._tenants[name] = tenant
            return tenant

    def tenants(self) -> list[str]:
        with self._lock:
            return sorted(self._tenants)

    def job_started(self, name: str) -> None:
        tenant = self.get(name)
        with self._lock:
            only_job = tenant.active_jobs == 0
            tenant.active_jobs += 1
        if only_job:
            # Re-seal the near-duplicate tier at job entry.  A direct warm
            # run seals at cache construction (journal load); a long-lived
            # server must refresh the seal so this job's sealed snapshot
            # equals "everything previous jobs cached" — the exact state a
            # fresh journal load would produce.  Only safe when no sibling
            # job is mid-flight (per-tenant max_running=1, the default).
            tenant.cache.seal()

    def job_finished(self, name: str) -> None:
        tenant = self.get(name)
        with self._lock:
            if tenant.active_jobs > 0:
                tenant.active_jobs -= 1

    def service_for_job(
        self,
        name: str,
        provider: Any = None,
        obs: Any = None,
        max_calls: int | None = None,
        max_cost: float | None = None,
    ) -> LLMService:
        """A fresh service for one job of tenant ``name``.

        ``provider`` overrides the shared provider for this job only (the
        chaos tests wrap the shared provider in a fault injector this
        way); a non-shared provider automatically bypasses the coalesce
        hub — see :meth:`LLMService._hub`.
        """
        tenant = self.get(name)
        return LLMService(
            provider=provider if provider is not None else self.provider,
            cache=tenant.cache,
            cache_enabled=self.cache_enabled,
            namespace=tenant.namespace,
            coalesce_hub=self.hub,
            clock=VirtualClock(),
            obs=obs,
            max_calls=max_calls,
            max_cost=max_cost,
        )

    def close(self) -> None:
        """Release tenant state (cache journals write through per append)."""
        with self._lock:
            self._tenants.clear()
