"""The multi-tenant job queue: one shared provider, isolated per-job runs.

Execution model
---------------

Every admitted job runs on a bounded thread pool with a **fresh**
:class:`~repro.llm.service.LLMService` — its own ledger and virtual clock —
so the job's :class:`RunReport` is byte-identical to a direct
``system.run`` of the same spec.  What jobs share is deliberate and
narrow:

- the **provider object**, fronted by one
  :class:`~repro.llm.service.CoalesceHub` that deduplicates identical
  in-flight (and settled) requests across tenants;
- the **tenant's prompt cache** (namespaced keys, own journal), shared
  only between that tenant's own jobs — which, with the default
  one-running-job-per-tenant quota, makes an API warm run equal a direct
  warm run byte for byte.

Crash safety
------------

The job ledger (:class:`~repro.serve.store.JobStore`) is write-ahead:
``kill()`` simulates server death by cancelling every running job's token
and *writing nothing* — the ledger still says ``running``, so the next
queue constructed over the same directory reports those jobs
``resumable`` and re-runs them through the PR 5 checkpoint machinery,
replaying committed chunks byte-identically.

Cross-tenant isolation audit
----------------------------

Beyond namespaced keys and per-tenant cache objects, the queue keeps a
live **provenance audit**: every ledger record of every finished job is
folded into a map of which tenants *paid* for which (namespace-free)
prompt identity, and every exact-cache hit must belong to a tenant that
previously paid for that identity itself.  If namespace isolation ever
regressed — keys pooled, namespaces dropped — the first cross-tenant hit
trips the audit.  The chaos suite asserts ``audit_violations == []``.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Callable

from repro.core.runtime.cancel import CancelToken, JobCancelled
from repro.obs import Observability, progress_events
from repro.resilience.clock import VirtualClock
from repro.serve.admission import AdmissionController, QuotaExceeded, TenantQuota
from repro.serve.jobs import (
    TERMINAL_STATUSES,
    JobError,
    JobSpec,
    result_payload,
    run_task,
)
from repro.serve.store import JobRecord, JobStore
from repro.serve.tenancy import TenantRegistry

__all__ = ["JobQueue", "QuotaExceeded", "JobError"]


def _base_digest(prompt: str, max_tokens: int, version: str) -> str:
    """Namespace-free prompt identity for the isolation audit."""
    payload = json.dumps([prompt, max_tokens, version], ensure_ascii=False)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class _IsolationAudit:
    """Tracks which tenants paid for which prompts; flags alien cache hits."""

    def __init__(self) -> None:
        self._creators: dict[str, set[str]] = {}
        self.violations: list[dict] = []
        self._lock = threading.Lock()

    def seed(self, tenant: str, keys) -> None:
        """Register a tenant's journal-loaded cache keys as self-paid."""
        with self._lock:
            for key in keys:
                digest = _base_digest(key.prompt, key.max_tokens, key.version)
                self._creators.setdefault(digest, set()).add(tenant)

    def fold(self, tenant: str, job_id: str, records) -> None:
        with self._lock:
            for record in records:
                digest = _base_digest(
                    record.prompt, record.max_tokens, record.version
                )
                if record.provenance == "cache-exact":
                    owners = self._creators.get(digest, set())
                    if tenant not in owners:
                        self.violations.append(
                            {
                                "job": job_id,
                                "tenant": tenant,
                                "digest": digest,
                                "owners": sorted(owners),
                            }
                        )
                else:
                    # provider calls, near-hit promotions and distilled
                    # answers all *create* the exact-tier entry this
                    # tenant may hit later.
                    self._creators.setdefault(digest, set()).add(tenant)


class JobQueue:
    """Admission-controlled, crash-safe execution of curation jobs.

    Parameters
    ----------
    data_dir:
        Durable root: the job ledger, per-tenant cache journals and
        per-job checkpoint journals all live under it.  Constructing a
        queue over an existing directory **recovers**: terminal jobs stay
        terminal, queued jobs re-enter the queue, and jobs that were
        running when the previous process died come back ``resumable``
        and re-run from their checkpoints.
    provider:
        The one shared provider (default: a fresh ``SimulatedProvider``).
    provider_factory:
        Optional hook ``(spec) -> provider | None`` consulted per job; a
        non-None return runs that job against its own provider (the chaos
        tests wrap the shared provider in per-job fault injectors this
        way — such jobs bypass the coalesce hub automatically).
    max_workers:
        Concurrent jobs across all tenants.
    clock:
        Admission-control clock (``.now``); defaults to a
        :class:`VirtualClock` so rate-limit behaviour is deterministic.
    """

    def __init__(
        self,
        data_dir: str | Path,
        provider: Any = None,
        max_workers: int = 4,
        clock: Any = None,
        default_quota: TenantQuota | None = None,
        cache_enabled: bool = True,
        provider_factory: Callable[[JobSpec], Any] | None = None,
        start: bool = True,
    ):
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.clock = clock if clock is not None else VirtualClock()
        self.max_workers = max_workers
        self.provider_factory = provider_factory
        self.store = JobStore(self.data_dir / "jobs.jsonl")
        self.registry = TenantRegistry(
            self.data_dir, provider=provider, cache_enabled=cache_enabled
        )
        self.admission = AdmissionController(
            clock=self.clock, default_quota=default_quota
        )
        self.audit = _IsolationAudit()
        self._lock = threading.RLock()
        self._backlog: dict[str, deque[str]] = {}
        self._tokens: dict[str, CancelToken] = {}
        self._active: dict[str, threading.Thread] = {}
        self._killed = False
        self._closed = False
        self._paused = not start
        #: Set by :meth:`kill` once the queue is marked dead and every
        #: active job's token is cancelled (but before worker threads are
        #: joined).  A test holding workers captive — e.g. parked on a
        #: blocking provider — waits on this, then releases them, so the
        #: kill is race-free without polling.
        self.kill_cancelled = threading.Event()
        self._recover()
        self._pump()

    # -- recovery ----------------------------------------------------------------

    def _recover(self) -> None:
        for job in self.store.jobs():
            if job.terminal:
                continue
            tenant = job.spec.tenant
            self.admission.restore_queued(tenant)
            self._backlog.setdefault(tenant, deque()).append(job.job_id)
            self._seed_tenant_audit(tenant)

    def _seed_tenant_audit(self, tenant: str) -> None:
        cache = self.registry.get(tenant).cache
        self.audit.seed(tenant, (key for key, _ in cache.entries()))

    # -- submission --------------------------------------------------------------

    def submit(self, spec: JobSpec) -> JobRecord:
        """Validate, admit and enqueue one job.

        Raises :class:`JobError` for malformed specs and
        :class:`QuotaExceeded` when admission refuses — neither leaves a
        trace in the ledger (refused work was never accepted).
        """
        spec.validate()
        with self._lock:
            if self._closed or self._killed:
                raise QuotaExceeded("queue is shut down", retryable=False)
            self.admission.admit(spec.tenant)
            self._seed_tenant_audit(spec.tenant)
            job = self.store.submit(spec)
            self._backlog.setdefault(spec.tenant, deque()).append(job.job_id)
        self._pump()
        return job

    def cancel(self, job_id: str) -> JobRecord | None:
        """Cancel a job: dequeued immediately, or interrupted at the next
        chunk boundary if running.  Terminal jobs are left untouched."""
        with self._lock:
            job = self.store.get(job_id)
            if job is None or job.terminal:
                return job
            tenant = job.spec.tenant
            backlog = self._backlog.get(tenant)
            if backlog is not None and job_id in backlog:
                backlog.remove(job_id)
                self.admission.forget_queued(tenant)
                return self.store.transition(
                    job_id, "cancelled", error="cancelled before start"
                )
            token = self._tokens.get(job_id)
        if token is not None:
            token.cancel("cancelled")
        return self.store.get(job_id)

    # -- dispatch ----------------------------------------------------------------

    def resume_pending(self) -> None:
        """Start dispatching (used with ``start=False`` construction)."""
        with self._lock:
            self._paused = False
        self._pump()

    def _pump(self) -> None:
        """Start queued jobs while pool slots and quotas allow."""
        while True:
            with self._lock:
                if self._paused or self._killed or self._closed:
                    return
                if len(self._active) >= self.max_workers:
                    return
                tenant = self.admission.next_tenant()
                if tenant is None:
                    return
                backlog = self._backlog.get(tenant)
                if not backlog:
                    # admission thinks work exists but the backlog is
                    # empty: reconcile (cancel raced) and try again.
                    self.admission.forget_queued(tenant)
                    continue
                if not self.admission.start(tenant):
                    return
                job_id = backlog.popleft()
                job = self.store.get(job_id)
                token = CancelToken()
                self._tokens[job_id] = token
                thread = threading.Thread(
                    target=self._run_job,
                    args=(job, token),
                    name=f"repro-serve-{job_id}",
                    daemon=True,
                )
                self._active[job_id] = thread
                # Start while still holding the lock: kill() snapshots
                # _active under this lock and joins every entry, so a
                # registered-but-unstarted thread would make join() raise
                # (and could run after the store closes).  start() returns
                # immediately, so holding the lock across it is safe.
                thread.start()

    # -- execution ---------------------------------------------------------------

    def _job_dir(self, job_id: str) -> Path:
        return self.data_dir / "jobs" / job_id

    def _restore_cache_state(self, job: JobRecord, tenant: str, job_dir: Path) -> None:
        """Pin the tenant cache to the state the job's *first* attempt saw.

        A killed attempt keeps appending to the tenant's cache journal up
        to the kill — including compile-phase entries written before the
        checkpoint header exists.  Re-running over that partially-warmed
        cache would make the resumed run cheaper (and its clock earlier)
        than the uninterrupted one instead of byte-identical, so the first
        attempt snapshots the cache's state digests beside the checkpoint
        and every re-attempt rewinds to them; the rewound entries are
        re-created identically as the resumed run re-pays them.  Only safe
        while no sibling job of the tenant is mid-flight — guaranteed by
        the default one-running-job-per-tenant quota; with a raised
        ``max_running`` the rewind is skipped and resumed byte-identity is
        out of contract.
        """
        if not self.registry.cache_enabled:
            return
        tenant_state = self.registry.get(tenant)
        if tenant_state.active_jobs != 1:
            return
        snapshot_path = job_dir / "cache_state.json"
        if job.attempts == 0:
            exact, sealed = tenant_state.cache.state_digests()
            tmp_path = snapshot_path.with_name(snapshot_path.name + ".tmp")
            tmp_path.write_text(
                json.dumps({"exact": exact, "sealed": sealed}), encoding="utf-8"
            )
            os.replace(tmp_path, snapshot_path)
        elif snapshot_path.exists():
            try:
                state = json.loads(snapshot_path.read_text(encoding="utf-8"))
                exact, sealed = state["exact"], state["sealed"]
            except (ValueError, KeyError, TypeError, OSError):
                # A torn or unreadable snapshot is treated as absent: the
                # resume still runs, it just skips the cache rewind.
                return
            tenant_state.cache.restore_state(exact, sealed)

    def _run_job(self, job: JobRecord, token: CancelToken) -> None:
        spec = job.spec
        tenant = spec.tenant
        obs = Observability()
        service = None
        started = False
        # Everything after this line — including setup — runs under the
        # try, so any failure still reaches a terminal status and the
        # finally block releases the admission slot and pool entry.
        try:
            self.registry.job_started(tenant)
            started = True
            job_dir = self._job_dir(job.job_id)
            job_dir.mkdir(parents=True, exist_ok=True)
            checkpoint_path = job_dir / "checkpoint.jsonl"
            resumed = checkpoint_path.exists()
            self._restore_cache_state(job, tenant, job_dir)
            self.store.transition(
                job.job_id,
                "running",
                attempts=job.attempts + 1,
                resumed=resumed,
            )
            provider = (
                self.provider_factory(spec)
                if self.provider_factory is not None
                else None
            )
            service = self.registry.service_for_job(
                tenant, provider=provider, obs=obs
            )
            from repro.core.runtime.system import LinguaManga

            system = LinguaManga(service=service)
            workers = int(spec.options.get("workers", 1))
            result = run_task(
                spec,
                system,
                workers=workers,
                checkpoint_path=str(checkpoint_path),
                resume=True,
                cancel=token,
            )
        except JobCancelled as cancelled:
            if not self._killed:
                if service is not None:
                    # Only operator-merged records exist here (cancellation
                    # unwinds at chunk/operator boundaries), so the ledger
                    # prefix is consistent and safe to audit.
                    self.audit.fold(tenant, job.job_id, list(service.records))
                self.store.transition(
                    job.job_id,
                    "cancelled",
                    error=str(cancelled.reason),
                    progress=progress_events(obs.tracer.roots),
                )
        except Exception as error:  # noqa: BLE001 - job boundary
            if not self._killed:
                if service is not None:
                    # Entries a failed attempt wrote to the tenant cache
                    # are real: register them as self-paid so a sibling
                    # job's later exact hits on them don't read as
                    # cross-tenant violations.
                    self.audit.fold(tenant, job.job_id, list(service.records))
                self.store.transition(
                    job.job_id,
                    "failed",
                    error=f"{type(error).__name__}: {error}",
                    progress=progress_events(obs.tracer.roots),
                )
        else:
            if not self._killed:
                report = getattr(result, "report", result)
                self.audit.fold(tenant, job.job_id, service.records)
                payload = result_payload(spec, result)
                if report is not None and hasattr(report, "canonical_json"):
                    (job_dir / "report.json").write_text(
                        report.canonical_json(), encoding="utf-8"
                    )
                self.store.transition(
                    job.job_id,
                    "succeeded",
                    result=payload,
                    progress=progress_events(obs.tracer.roots),
                )
        finally:
            if started:
                self.registry.job_finished(tenant)
            with self._lock:
                self._tokens.pop(job.job_id, None)
                self._active.pop(job.job_id, None)
                self.admission.finish(tenant)
            self._pump()

    # -- lifecycle ---------------------------------------------------------------

    def kill(self, join_timeout: float = 60.0) -> None:
        """Simulate abrupt server death.

        Running jobs are interrupted at their next cancellation boundary
        and **no ledger record is written** — on-disk state is exactly
        what a SIGKILL would leave, which is what the restart path (and
        the chaos suite) exercises.  Worker threads are joined so the old
        incarnation cannot keep appending to cache journals after a new
        queue opens the same directory.
        """
        with self._lock:
            self._killed = True
            tokens = list(self._tokens.values())
            threads = list(self._active.values())
        for token in tokens:
            token.cancel("server-killed")
        self.kill_cancelled.set()
        for thread in threads:
            thread.join(timeout=join_timeout)
            if thread.is_alive():
                raise TimeoutError(
                    f"worker {thread.name} survived kill for {join_timeout}s"
                )
        self.store.kill()
        self.registry.close()

    def drain(self, timeout: float = 120.0) -> dict[str, str]:
        """Wait until every accepted job is terminal; returns statuses."""
        deadline = time.monotonic() + timeout
        while True:
            pending = [
                job.job_id for job in self.store.jobs() if not job.terminal
            ]
            if not pending:
                return self.store.statuses()
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"jobs still pending after {timeout}s: {pending}")
            self.store.wait_for(
                pending[0],
                TERMINAL_STATUSES,
                timeout=remaining,
            )

    def close(self, drain: bool = True, timeout: float = 120.0) -> None:
        """Graceful shutdown: optionally drain, then settle the ledger."""
        if drain and not self._killed:
            self.drain(timeout=timeout)
        with self._lock:
            self._closed = True
        if not self._killed:
            self.store.close()
            self.registry.close()

    # -- introspection -----------------------------------------------------------

    @property
    def audit_violations(self) -> list[dict]:
        return list(self.audit.violations)

    def stats(self) -> dict:
        statuses = self.store.statuses()
        by_status: dict[str, int] = {}
        for status in statuses.values():
            by_status[status] = by_status.get(status, 0) + 1
        return {
            "jobs": dict(sorted(by_status.items())),
            "tenants": self.admission.counts(),
            "hub": self.registry.hub.stats(),
            "audit_violations": len(self.audit.violations),
            "refusals": self.admission.refusals,
        }
