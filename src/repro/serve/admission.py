"""Admission control: per-tenant quotas, token buckets, round-robin dispatch.

The service shares one provider and one worker pool across every tenant,
so admission is where multi-tenancy becomes *fair* instead of merely
concurrent:

- a **token bucket** per tenant rate-limits submissions (capacity =
  burst, refill = sustained rate).  Time comes from an injected clock
  object (any ``.now`` — a :class:`~repro.resilience.clock.VirtualClock`
  in every test), never from the wall, so bucket behaviour is exactly
  reproducible;
- **quotas** bound how many jobs a tenant may have queued and running at
  once — a tenant flooding the queue is refused at submission, not
  starved at dispatch;
- **round-robin dispatch** over tenants with ready work guarantees no
  tenant waits forever behind a busier one: each dispatch starts from the
  cursor *after* the last tenant served.

The hypothesis property suite (``tests/serve/test_admission_properties.py``)
pins the invariants: counters never go negative, tokens never exceed
capacity, grant/release sequences commute, and round-robin serves every
backlogged tenant within one full rotation.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

__all__ = [
    "TokenBucket",
    "TenantQuota",
    "QuotaExceeded",
    "AdmissionController",
    "DEFAULT_QUOTA",
]


class QuotaExceeded(Exception):
    """Submission refused: rate limit or queue quota hit.

    ``retryable`` distinguishes a 429 (try again later: rate/queue
    pressure) from a hard refusal.
    """

    def __init__(self, reason: str, retryable: bool = True):
        super().__init__(reason)
        self.reason = reason
        self.retryable = retryable


class _ZeroClock:
    now = 0.0


class TokenBucket:
    """A deterministic token bucket on an injected clock.

    ``capacity`` is the burst size, ``refill_rate`` tokens per (virtual)
    second.  Tokens are lazily refilled on every :meth:`try_acquire` from
    the elapsed clock delta; they never exceed ``capacity`` and never go
    negative — both invariants are property-tested.
    """

    def __init__(
        self,
        capacity: float,
        refill_rate: float,
        clock: Any = None,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if refill_rate < 0:
            raise ValueError("refill_rate must be non-negative")
        self.capacity = float(capacity)
        self.refill_rate = float(refill_rate)
        self.clock = clock if clock is not None else _ZeroClock()
        self._tokens = self.capacity
        self._last = float(self.clock.now)
        self._lock = threading.Lock()

    def _refill_locked(self) -> None:
        now = float(self.clock.now)
        if now > self._last:
            self._tokens = min(
                self.capacity, self._tokens + (now - self._last) * self.refill_rate
            )
        self._last = max(self._last, now)

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill_locked()
            return self._tokens

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; never blocks, never goes negative."""
        if n < 0:
            raise ValueError("cannot acquire a negative token count")
        with self._lock:
            self._refill_locked()
            if self._tokens + 1e-12 < n:
                return False
            self._tokens = max(0.0, self._tokens - n)
            return True


@dataclass
class TenantQuota:
    """Static limits for one tenant."""

    max_queued: int = 16
    max_running: int = 1
    rate: float = 0.0  # submissions per virtual second; 0 = unlimited
    burst: float = 4.0

    def __post_init__(self) -> None:
        if self.max_queued < 1:
            raise ValueError("max_queued must be at least 1")
        if self.max_running < 1:
            raise ValueError("max_running must be at least 1")


#: The default quota: one running job per tenant.  Serialising each
#: tenant's jobs is a determinism decision, not just a fairness one — a
#: tenant's warm run then sees exactly the cache state its previous job
#: left, byte-identical to running the jobs back-to-back directly.
DEFAULT_QUOTA = TenantQuota()


class AdmissionController:
    """Tracks per-tenant queue/run counts and arbitrates dispatch order.

    Thread safe.  The dispatch cursor implements round-robin: tenants are
    visited in sorted-name order starting after the last tenant served.
    """

    def __init__(self, clock: Any = None, default_quota: TenantQuota | None = None):
        self.clock = clock if clock is not None else _ZeroClock()
        self.default_quota = default_quota or DEFAULT_QUOTA
        self._lock = threading.RLock()
        self._quotas: dict[str, TenantQuota] = {}
        self._buckets: dict[str, TokenBucket] = {}
        self._queued: dict[str, int] = {}
        self._running: dict[str, int] = {}
        self._cursor: str | None = None
        self.refusals = 0

    # -- registration ------------------------------------------------------------

    def register(self, tenant: str, quota: TenantQuota | None = None) -> TenantQuota:
        """Declare a tenant (idempotent); returns its effective quota."""
        with self._lock:
            if quota is not None:
                self._quotas[tenant] = quota
                self._buckets.pop(tenant, None)
            resolved = self._quotas.setdefault(tenant, self.default_quota)
            if tenant not in self._buckets and resolved.rate > 0:
                self._buckets[tenant] = TokenBucket(
                    capacity=resolved.burst,
                    refill_rate=resolved.rate,
                    clock=self.clock,
                )
            self._queued.setdefault(tenant, 0)
            self._running.setdefault(tenant, 0)
            return resolved

    def quota(self, tenant: str) -> TenantQuota:
        with self._lock:
            return self._quotas.get(tenant, self.default_quota)

    # -- submission --------------------------------------------------------------

    def admit(self, tenant: str) -> None:
        """Account one submission; raises :class:`QuotaExceeded` on refusal.

        Checks the rate bucket first (a refused submission consumes no
        tokens and no quota), then the queued-jobs quota.  On success the
        tenant's queued count is incremented — callers must pair every
        admit with exactly one of :meth:`start` or :meth:`forget_queued`.
        """
        with self._lock:
            quota = self.register(tenant)
            bucket = self._buckets.get(tenant)
            if bucket is not None and not bucket.try_acquire():
                self.refusals += 1
                raise QuotaExceeded(f"tenant {tenant!r} rate limit exceeded")
            if self._queued[tenant] >= quota.max_queued:
                self.refusals += 1
                raise QuotaExceeded(
                    f"tenant {tenant!r} has {self._queued[tenant]} queued jobs "
                    f"(max {quota.max_queued})"
                )
            self._queued[tenant] += 1

    def restore_queued(self, tenant: str) -> None:
        """Re-account a queued job on restart (bypasses the rate bucket)."""
        with self._lock:
            self.register(tenant)
            self._queued[tenant] += 1

    # -- dispatch ----------------------------------------------------------------

    def can_start(self, tenant: str) -> bool:
        with self._lock:
            return (
                self._queued.get(tenant, 0) > 0
                and self._running.get(tenant, 0)
                < self.quota(tenant).max_running
            )

    def start(self, tenant: str) -> bool:
        """Move one job queued -> running if the running quota allows."""
        with self._lock:
            if not self.can_start(tenant):
                return False
            self._queued[tenant] -= 1
            self._running[tenant] += 1
            self._cursor = tenant
            return True

    def finish(self, tenant: str) -> None:
        """Account one running job ending (any terminal status)."""
        with self._lock:
            if self._running.get(tenant, 0) < 1:
                raise ValueError(f"tenant {tenant!r} has no running jobs to finish")
            self._running[tenant] -= 1

    def forget_queued(self, tenant: str) -> None:
        """Account one queued job leaving the queue without running."""
        with self._lock:
            if self._queued.get(tenant, 0) < 1:
                raise ValueError(f"tenant {tenant!r} has no queued jobs to forget")
            self._queued[tenant] -= 1

    def next_tenant(self) -> str | None:
        """The round-robin choice among tenants that could start a job now.

        Tenants are ordered by name; the scan starts just past the tenant
        served last, so a tenant with a deep backlog cannot shadow the
        others — every ready tenant is reached within one rotation.
        """
        with self._lock:
            tenants = sorted(self._queued)
            if not tenants:
                return None
            start = 0
            if self._cursor in tenants:
                start = tenants.index(self._cursor) + 1
            for offset in range(len(tenants)):
                tenant = tenants[(start + offset) % len(tenants)]
                if self.can_start(tenant):
                    return tenant
            return None

    # -- introspection -----------------------------------------------------------

    def queued(self, tenant: str) -> int:
        with self._lock:
            return self._queued.get(tenant, 0)

    def running(self, tenant: str) -> int:
        with self._lock:
            return self._running.get(tenant, 0)

    def counts(self) -> dict[str, dict[str, int]]:
        with self._lock:
            return {
                tenant: {
                    "queued": self._queued.get(tenant, 0),
                    "running": self._running.get(tenant, 0),
                }
                for tenant in sorted(self._queued)
            }
