"""The multi-tenant curation service: an asyncio job API over one system.

Lingua Manga, the paper, is a single-user library: one person, one
pipeline, one run.  This package is the deployment story the evaluation
section gestures at — many tenants submitting curation jobs (the demo
applications, or inline DSL programs) to one long-lived service that
shares a single provider while keeping every tenant's cache, ledger and
results fully isolated.  The load-bearing properties:

- **determinism survives serving**: a job submitted over HTTP produces a
  run report byte-identical to calling ``system.run`` directly, cold or
  warm, at any worker count;
- **multi-tenancy is enforced, not assumed**: per-tenant namespaced
  cache keys, per-tenant journals, quota/rate admission, round-robin
  dispatch, and a live provenance audit that trips on the first
  cross-tenant cache hit;
- **crashes are a feature**: the job ledger is write-ahead JSONL with
  the checkpoint journal's fsync/torn-tail discipline, so a killed
  server restarts with every accepted job either terminal or resumable,
  and resumed jobs replay byte-identically from their checkpoints.

Quickstart::

    python -m repro.serve --port 8080 --data-dir ./serve-data

    curl -X POST localhost:8080/jobs -d '{
        "tenant": "acme", "task": "er",
        "dataset": {"name": "beer", "seed": 7},
        "options": {"workers": 2}}'
    curl localhost:8080/jobs/job-0001
"""

from repro.serve.admission import (
    AdmissionController,
    QuotaExceeded,
    TenantQuota,
    TokenBucket,
)
from repro.serve.jobs import (
    JOB_STATUSES,
    TASKS,
    TERMINAL_STATUSES,
    JobError,
    JobSpec,
    result_payload,
)
from repro.serve.queue import JobQueue
from repro.serve.server import JobServer
from repro.serve.store import JobRecord, JobStore
from repro.serve.tenancy import Tenant, TenantRegistry

__all__ = [
    "JOB_STATUSES",
    "TERMINAL_STATUSES",
    "TASKS",
    "JobSpec",
    "JobError",
    "JobRecord",
    "JobStore",
    "JobQueue",
    "JobServer",
    "Tenant",
    "TenantRegistry",
    "TokenBucket",
    "TenantQuota",
    "AdmissionController",
    "QuotaExceeded",
    "result_payload",
]
