"""The crash-safe job store: a write-ahead JSONL ledger plus an in-memory view.

Durability rides on :class:`~repro.core.runtime.checkpoint.CheckpointJournal`
— the same append-only, flush-always, group-committed-fsync,
torn-tail-truncating JSONL primitive the run checkpoints use — so the job
queue inherits the crash discipline PR 5's suite already proves: an
acknowledged submission survives a process kill, and a torn final line is
truncated on load rather than poisoning the replay.

The ledger holds two record kinds::

    {"kind": "submit", "job": "job-0001", "seq": 1, "spec": {...}}
    {"kind": "status", "job": "job-0001", "seq": 2, "status": "running", ...}

``seq`` is a monotonic logical sequence number — the ledger carries **no
wall-clock timestamps**, which is what makes job payloads (and the golden
API fixtures) byte-stable across runs.

Crash semantics fall out of the fold: a job whose last status is
``running`` when the ledger is reloaded was interrupted by a server death
— the restarted store reports it ``resumable`` and the queue re-runs it
from its checkpoint journal.  A ``cancelled`` job with ``resumable: true``
recorded keeps its checkpoint and may be resubmitted.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.core.runtime.checkpoint import CheckpointJournal
from repro.serve.jobs import JOB_STATUSES, TERMINAL_STATUSES, JobSpec

__all__ = ["JobRecord", "JobStore"]


class JobRecord:
    """Mutable in-memory view of one job (the store guards mutation)."""

    def __init__(self, job_id: str, spec: JobSpec, seq: int):
        self.job_id = job_id
        self.spec = spec
        self.seq = seq  # ledger seq of the submit record
        self.status = "queued"
        self.status_seq = seq
        self.result: dict | None = None
        self.error: str = ""
        self.progress: list[dict] = []
        self.attempts = 0  # times the queue started (or restarted) this job
        self.resumed = False  # last start replayed an existing checkpoint

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATUSES

    def to_dict(self, progress: bool = True) -> dict:
        """Canonical payload for the HTTP API (no wall-clock fields)."""
        payload: dict[str, Any] = {
            "job_id": self.job_id,
            "tenant": self.spec.tenant,
            "task": self.spec.task,
            "status": self.status,
            "seq": self.status_seq,
            "attempts": self.attempts,
            "resumed": self.resumed,
        }
        if self.result is not None:
            payload["result"] = self.result
        if self.error:
            payload["error"] = self.error
        if progress:
            payload["progress"] = list(self.progress)
        return payload


class JobStore:
    """Thread-safe job table backed by the write-ahead ledger.

    Status transitions append to the ledger *before* they are visible in
    memory (write-ahead), and submissions/terminal transitions request a
    durable (fsynced) append.  ``wait_for`` gives tests and the server a
    bounded, fail-loud way to await a status without polling sleeps.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.journal = CheckpointJournal(self.path)
        self._lock = threading.RLock()
        self._changed = threading.Condition(self._lock)
        self._jobs: dict[str, JobRecord] = {}
        self._order: list[str] = []
        self._seq = 0
        self._next_id = 1
        self._closed = False
        self._load()

    # -- ledger replay -----------------------------------------------------------

    def _load(self) -> None:
        for record in self.journal.load():
            kind = record.get("kind")
            self._seq = max(self._seq, int(record.get("seq", 0)))
            if kind == "submit":
                job_id = str(record["job"])
                spec = JobSpec.from_dict(record.get("spec") or {})
                job = JobRecord(job_id, spec, int(record.get("seq", 0)))
                self._jobs[job_id] = job
                self._order.append(job_id)
                try:
                    number = int(job_id.rsplit("-", 1)[-1])
                except ValueError:
                    number = len(self._jobs)
                self._next_id = max(self._next_id, number + 1)
            elif kind == "status":
                job = self._jobs.get(str(record.get("job", "")))
                if job is None:
                    continue
                status = str(record.get("status", ""))
                if status not in JOB_STATUSES:
                    continue
                job.status = status
                job.status_seq = int(record.get("seq", job.status_seq))
                job.result = record.get("result")
                job.error = str(record.get("error", ""))
                job.progress = list(record.get("progress") or [])
                job.attempts = int(record.get("attempts", job.attempts))
                job.resumed = bool(record.get("resumed", job.resumed))
        # A job mid-flight when the process died never wrote a terminal
        # status: surface it as resumable so the queue re-runs it from its
        # checkpoint.  Queued jobs simply re-enter the queue.
        for job in self._jobs.values():
            if job.status == "running":
                job.status = "resumable"

    # -- submission and transitions ----------------------------------------------

    def _append(self, record: dict, durable: bool) -> None:
        if self._closed:
            return
        self.journal.append(record, durable=durable)

    def submit(self, spec: JobSpec) -> JobRecord:
        with self._lock:
            job_id = f"job-{self._next_id:04d}"
            self._next_id += 1
            self._seq += 1
            job = JobRecord(job_id, spec, self._seq)
            self._append(
                {
                    "kind": "submit",
                    "job": job_id,
                    "seq": self._seq,
                    "spec": spec.to_dict(),
                },
                durable=True,
            )
            self._jobs[job_id] = job
            self._order.append(job_id)
            self._changed.notify_all()
            return job

    def transition(
        self,
        job_id: str,
        status: str,
        result: dict | None = None,
        error: str = "",
        progress: list[dict] | None = None,
        attempts: int | None = None,
        resumed: bool | None = None,
        durable: bool | None = None,
    ) -> JobRecord:
        """Append a status record and update the in-memory view."""
        if status not in JOB_STATUSES:
            raise ValueError(f"unknown status {status!r}")
        with self._lock:
            job = self._jobs[job_id]
            self._seq += 1
            if attempts is not None:
                job.attempts = attempts
            if resumed is not None:
                job.resumed = resumed
            record: dict[str, Any] = {
                "kind": "status",
                "job": job_id,
                "seq": self._seq,
                "status": status,
                "attempts": job.attempts,
                "resumed": job.resumed,
            }
            if result is not None:
                record["result"] = result
            if error:
                record["error"] = error
            if progress is not None:
                record["progress"] = progress
            self._append(
                record,
                durable=(
                    durable
                    if durable is not None
                    else status in TERMINAL_STATUSES
                ),
            )
            job.status = status
            job.status_seq = self._seq
            job.result = result
            job.error = error
            if progress is not None:
                job.progress = progress
            self._changed.notify_all()
            return job

    # -- lookup ------------------------------------------------------------------

    def get(self, job_id: str) -> JobRecord | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self, tenant: str | None = None) -> list[JobRecord]:
        with self._lock:
            jobs = [self._jobs[job_id] for job_id in self._order]
        if tenant is not None:
            jobs = [job for job in jobs if job.spec.tenant == tenant]
        return jobs

    def statuses(self) -> dict[str, str]:
        with self._lock:
            return {job_id: self._jobs[job_id].status for job_id in self._order}

    def wait_for(
        self,
        job_id: str,
        statuses: Iterable[str] = TERMINAL_STATUSES,
        timeout: float = 30.0,
        predicate: Callable[[JobRecord], bool] | None = None,
    ) -> JobRecord:
        """Block until the job reaches one of ``statuses``; fail loud.

        A bounded condition wait, not a polling sleep: waiters wake on
        every transition and the deadline exists only to turn a hung queue
        into a test failure instead of a hang.
        """
        wanted = set(statuses)
        deadline = time.monotonic() + timeout
        with self._lock:
            while True:
                job = self._jobs.get(job_id)
                if job is not None and job.status in wanted:
                    if predicate is None or predicate(job):
                        return job
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    current = job.status if job is not None else "<missing>"
                    raise TimeoutError(
                        f"job {job_id} did not reach {sorted(wanted)} within "
                        f"{timeout}s (currently {current!r})"
                    )
                self._changed.wait(remaining)

    # -- lifecycle ---------------------------------------------------------------

    def kill(self) -> None:
        """Simulate server death: stop writing, leave the ledger as-is.

        Nothing is appended — a job that was running stays ``running`` on
        disk, which is exactly what makes the *next* load mark it
        resumable.
        """
        with self._lock:
            self._closed = True
            self.journal.close()
            self._changed.notify_all()

    def close(self) -> None:
        """Graceful shutdown: settle fsyncs and release the file handle."""
        with self._lock:
            self._closed = True
            self._changed.notify_all()
        self.journal.close()
