"""The virtual clock resilience policies schedule against.

Nothing in this reproduction sleeps.  Latencies, backoff waits, rate-limit
cooldowns and outage windows all advance a shared :class:`VirtualClock`, so
a chaos experiment that models minutes of provider downtime still runs in
milliseconds and replays byte-identically.
"""

from __future__ import annotations

__all__ = ["VirtualClock"]


class VirtualClock:
    """A monotonically advancing virtual timeline (seconds)."""

    def __init__(self, now: float = 0.0):
        self.now = float(now)

    def advance(self, seconds: float) -> float:
        """Move time forward; negative advances are clamped to zero."""
        if seconds > 0:
            self.now += seconds
        return self.now

    def reset(self, now: float = 0.0) -> None:
        """Rewind the clock (between experiment arms)."""
        self.now = float(now)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"VirtualClock(now={self.now:.3f})"
