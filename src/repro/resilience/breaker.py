"""Circuit breaker over the virtual clock.

Retrying a provider that is hard-down wastes budget and inflates latency.
The breaker watches a sliding window of attempt outcomes and, once the
failure rate clears a threshold, *opens*: calls fail fast (or divert to a
fallback provider) until a cooldown has elapsed on the virtual clock.  The
first call after the cooldown runs as a *half-open* probe — success closes
the breaker, failure re-opens it for another cooldown.

The breaker never reads wall time; callers pass ``now`` explicitly, which
keeps every transition deterministic and unit-testable.
"""

from __future__ import annotations

from collections import deque

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState:
    """The three classic breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Failure-rate breaker with cooldown and half-open probing.

    Parameters
    ----------
    failure_threshold:
        Open when the failure rate over the window reaches this fraction.
    window:
        Number of most recent attempt outcomes considered.
    min_calls:
        Never open before this many outcomes are in the window (avoids
        tripping on the first unlucky call).
    cooldown_seconds:
        Virtual-clock time the breaker stays open before allowing a probe.
    """

    def __init__(
        self,
        failure_threshold: float = 0.5,
        window: int = 20,
        min_calls: int = 5,
        cooldown_seconds: float = 30.0,
    ):
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        self.failure_threshold = failure_threshold
        self.window = window
        self.min_calls = min_calls
        self.cooldown_seconds = cooldown_seconds
        self.state = BreakerState.CLOSED
        self.opened_at = 0.0
        self.opens = 0  # lifetime count of closed/half-open -> open transitions
        self._outcomes: deque[bool] = deque(maxlen=window)
        # Optional repro.obs.metrics.MetricsRegistry (set by attach_obs).
        self.metrics = None

    def clone(self) -> "CircuitBreaker":
        """A fresh breaker with the same configuration (per-provider copies)."""
        return CircuitBreaker(
            failure_threshold=self.failure_threshold,
            window=self.window,
            min_calls=self.min_calls,
            cooldown_seconds=self.cooldown_seconds,
        )

    # -- queries ----------------------------------------------------------------

    def allow(self, now: float) -> bool:
        """May a call be attempted at virtual time ``now``?

        An open breaker whose cooldown has elapsed transitions to half-open
        and allows exactly the probing call through.
        """
        if self.state == BreakerState.OPEN:
            if now >= self.opened_at + self.cooldown_seconds:
                self.state = BreakerState.HALF_OPEN
                return True
            return False
        return True

    def remaining(self, now: float) -> float:
        """Virtual seconds until the next probe is allowed (0 when callable)."""
        if self.state != BreakerState.OPEN:
            return 0.0
        return max(0.0, self.opened_at + self.cooldown_seconds - now)

    @property
    def failure_rate(self) -> float:
        """Failure fraction over the current window."""
        if not self._outcomes:
            return 0.0
        return sum(1 for ok in self._outcomes if not ok) / len(self._outcomes)

    # -- outcome reporting ----------------------------------------------------------

    def record_success(self, now: float) -> None:
        """Report a successful attempt."""
        if self.state == BreakerState.HALF_OPEN:
            self._close()
            return
        self._outcomes.append(True)

    def record_failure(self, now: float) -> None:
        """Report a failed attempt; may open the breaker."""
        if self.state == BreakerState.HALF_OPEN:
            self._open(now)
            return
        self._outcomes.append(False)
        if (
            self.state == BreakerState.CLOSED
            and len(self._outcomes) >= self.min_calls
            and self.failure_rate >= self.failure_threshold
        ):
            self._open(now)

    # -- transitions ----------------------------------------------------------------

    def _open(self, now: float) -> None:
        self.state = BreakerState.OPEN
        self.opened_at = now
        self.opens += 1
        self._outcomes.clear()
        if self.metrics is not None:
            self.metrics.counter("breaker.opens").inc()

    def _close(self) -> None:
        self.state = BreakerState.CLOSED
        self._outcomes.clear()
        if self.metrics is not None:
            self.metrics.counter("breaker.closes").inc()

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"CircuitBreaker(state={self.state}, rate={self.failure_rate:.2f}, "
            f"opens={self.opens})"
        )
