"""Composable resilience policies: retries, deadlines, the service composite.

Every knob is deterministic: backoff jitter comes from a stable hash of the
call index, and all waiting is virtual-clock time, so a chaos run with a
fixed seed reproduces the exact same retry schedule every time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import stable_unit
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.fallback import FallbackChain

__all__ = [
    "RetryPolicy",
    "Deadline",
    "ResiliencePolicy",
    "OUTCOME_SERVED",
    "OUTCOME_CACHED",
    "OUTCOME_RETRIED",
    "OUTCOME_FALLBACK",
    "OUTCOME_CIRCUIT_OPEN",
    "OUTCOME_GAVE_UP",
    "SUCCESS_OUTCOMES",
]

# Per-call resilience outcomes recorded in the service ledger.
OUTCOME_SERVED = "served"  # first attempt on the primary provider succeeded
OUTCOME_CACHED = "cached"  # answered from the local response cache
OUTCOME_RETRIED = "retried"  # primary succeeded after >= 1 retry
OUTCOME_FALLBACK = "fallback"  # a secondary provider or degraded answer served
OUTCOME_CIRCUIT_OPEN = "circuit_open"  # refused: breaker open, no fallback
OUTCOME_GAVE_UP = "gave_up"  # every provider and retry exhausted

SUCCESS_OUTCOMES = (OUTCOME_SERVED, OUTCOME_CACHED, OUTCOME_RETRIED, OUTCOME_FALLBACK)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter and a retry budget.

    ``delay(attempt, key)`` is the wait after failed attempt ``attempt``
    (0-based).  Jitter is a deterministic fraction of the base delay keyed
    on ``(seed, key, attempt)`` so concurrent callers de-synchronise but a
    rerun reproduces the identical schedule.
    """

    max_retries: int = 3
    backoff_seconds: float = 0.5
    multiplier: float = 2.0
    max_backoff_seconds: float = 60.0
    jitter: float = 0.0  # max extra delay as a fraction of the base delay
    seed: str = "retry"

    def delay(self, attempt: int, key: object = 0) -> float:
        """Backoff after the ``attempt``-th failure (deterministic)."""
        base = min(
            self.backoff_seconds * self.multiplier**attempt, self.max_backoff_seconds
        )
        if self.jitter <= 0:
            return base
        return base * (1.0 + self.jitter * stable_unit(self.seed, key, attempt))

    def schedule(self, key: object = 0) -> list[float]:
        """The full backoff sequence for one call (for tests and reports)."""
        return [self.delay(attempt, key) for attempt in range(self.max_retries)]


@dataclass(frozen=True)
class Deadline:
    """Caps the total virtual-clock time one call may spend waiting.

    This is what keeps a storm of ``retry_after=60`` rate-limit responses
    from inflating the virtual clock unboundedly: cumulative waits are
    clamped to ``max_seconds`` and the call gives up once they are spent.
    """

    max_seconds: float

    def remaining(self, elapsed: float) -> float:
        """Wait budget left after ``elapsed`` seconds have been spent."""
        return max(0.0, self.max_seconds - elapsed)

    def exhausted(self, elapsed: float) -> bool:
        """Whether the budget is spent."""
        return elapsed >= self.max_seconds

    def clamp(self, wait: float, elapsed: float) -> float:
        """Clip a proposed wait to the remaining budget."""
        return min(wait, self.remaining(elapsed))


@dataclass
class ResiliencePolicy:
    """The composite policy :class:`repro.llm.service.LLMService` executes.

    Parameters
    ----------
    retry:
        Backoff schedule applied per provider.
    deadline:
        Per-call cap on cumulative virtual-clock waiting (``None`` = uncapped).
    breaker:
        Breaker guarding the primary provider; fallback providers receive
        independent clones.  ``None`` disables circuit breaking.
    fallback:
        Secondary providers and/or a degraded answer function.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    deadline: Deadline | None = None
    breaker: CircuitBreaker | None = None
    fallback: FallbackChain | None = None

    def describe(self) -> str:
        """One-line rendering for reports and EXPLAIN output."""
        parts = [
            f"retry(max={self.retry.max_retries}, base={self.retry.backoff_seconds}s)"
        ]
        if self.deadline is not None:
            parts.append(f"deadline({self.deadline.max_seconds}s)")
        if self.breaker is not None:
            parts.append(
                f"breaker(rate>={self.breaker.failure_threshold}, "
                f"cooldown={self.breaker.cooldown_seconds}s)"
            )
        if self.fallback is not None:
            parts.append(f"fallback({self.fallback.describe()})")
        return " + ".join(parts)
