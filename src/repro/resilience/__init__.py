"""Resilience layer: virtual clock, retry/deadline policies, breaker, fallbacks.

Lingua Manga treats the LLM as an unreliable, expensive black box.  This
package supplies the machinery the service and executor use to absorb
provider outages instead of aborting pipelines:

- :class:`VirtualClock` — the shared virtual timeline every policy reasons on.
- :class:`RetryPolicy` / :class:`Deadline` — bounded, deterministic retries.
- :class:`CircuitBreaker` — fail-fast once a provider is clearly down.
- :class:`FallbackChain` — secondary providers and degraded last resorts.
- :class:`ResiliencePolicy` — the composite the :class:`LLMService` accepts.

All waiting happens on the virtual clock, so chaos experiments replay
instantly and deterministically.
"""

from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.resilience.clock import VirtualClock
from repro.resilience.fallback import FallbackChain
from repro.resilience.policy import (
    OUTCOME_CACHED,
    OUTCOME_CIRCUIT_OPEN,
    OUTCOME_FALLBACK,
    OUTCOME_GAVE_UP,
    OUTCOME_RETRIED,
    OUTCOME_SERVED,
    SUCCESS_OUTCOMES,
    Deadline,
    ResiliencePolicy,
    RetryPolicy,
)

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "VirtualClock",
    "FallbackChain",
    "Deadline",
    "ResiliencePolicy",
    "RetryPolicy",
    "OUTCOME_CACHED",
    "OUTCOME_CIRCUIT_OPEN",
    "OUTCOME_FALLBACK",
    "OUTCOME_GAVE_UP",
    "OUTCOME_RETRIED",
    "OUTCOME_SERVED",
    "SUCCESS_OUTCOMES",
]
