"""Fallback chains: where a call goes when the primary provider is down.

The chain is ordered: primary provider (owned by the service) -> each
secondary provider in ``providers`` -> the ``degraded`` answer function as a
last resort.  A degraded answer is the service-level analogue of the
optimizer's simulator takeover — a cheap local approximation that keeps the
pipeline producing output while the real model is unreachable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.llm.providers import LLMProvider, LLMRequest

__all__ = ["FallbackChain"]


@dataclass
class FallbackChain:
    """Secondary providers plus an optional degraded last-resort answer.

    Parameters
    ----------
    providers:
        Secondary :class:`LLMProvider` instances, tried in order after the
        primary fails or its breaker is open.
    degraded:
        ``request -> text`` callable used when every provider is exhausted;
        ``None`` means exhaustion raises instead.
    """

    providers: list["LLMProvider"] = field(default_factory=list)
    degraded: Callable[["LLMRequest"], str] | None = None

    def describe(self) -> str:
        """One-line rendering for reports."""
        names = [getattr(p, "model_name", type(p).__name__) for p in self.providers]
        tail = " -> degraded" if self.degraded is not None else ""
        return " -> ".join(names) + tail if (names or tail) else "(empty)"
