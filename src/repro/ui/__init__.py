"""Terminal UI layer reproducing the paper's Figure 5 views."""

from repro.ui.views import (
    ModuleInspectorView,
    PipelineCanvasView,
    ProfilePanelView,
    RunLogView,
    UsagePanelView,
    render_screen,
)

__all__ = [
    "ModuleInspectorView",
    "PipelineCanvasView",
    "ProfilePanelView",
    "RunLogView",
    "UsagePanelView",
    "render_screen",
]
