"""Text views of the Lingua Manga UI (paper Figure 5).

The demo paper shows a browser UI with a pipeline canvas, a module
inspector, and a run log.  This reproduction renders the same three panels
as fixed-width text so the whole experience works in a terminal and in
tests.  Views are pure functions of system state — no interactivity is
simulated, only the screens.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compiler.plan import PhysicalPlan, RunReport
from repro.core.dsl.pipeline import Pipeline
from repro.core.modules.base import Module
from repro.llm.service import LLMService

__all__ = [
    "PipelineCanvasView",
    "ModuleInspectorView",
    "RunLogView",
    "UsagePanelView",
    "ProfilePanelView",
    "render_screen",
]


def _box(title: str, body_lines: list[str], width: int = 72) -> str:
    inner = width - 2
    top = "+" + "-" * inner + "+"
    head = "|" + f" {title} ".center(inner, "=") + "|"
    rows = []
    for line in body_lines:
        for chunk in _wrap(line, inner - 2):
            rows.append("| " + chunk.ljust(inner - 2) + " |")
    return "\n".join([top, head] + rows + [top])


def _wrap(line: str, width: int) -> list[str]:
    if not line:
        return [""]
    return [line[i : i + width] for i in range(0, len(line), width)]


@dataclass
class PipelineCanvasView:
    """The canvas panel: operators as boxes joined by arrows."""

    pipeline: Pipeline

    def render(self) -> str:
        """Render the canvas."""
        lines: list[str] = []
        operators = self.pipeline.topological_order()
        for index, op in enumerate(operators):
            lines.append(f"[{op.name}]  kind={op.kind}")
            hints = {
                k: v
                for k, v in op.params.items()
                if k in ("impl", "simulate", "use_language")
            }
            if "validator_cases" in op.params:
                hints["validator"] = f"{len(op.params['validator_cases'])} cases"
            if hints:
                lines.append(
                    "    " + ", ".join(f"{k}={v}" for k, v in sorted(hints.items()))
                )
            if index < len(operators) - 1:
                lines.append("      |")
                lines.append("      v")
        return _box(f"pipeline: {self.pipeline.name}", lines)


@dataclass
class ModuleInspectorView:
    """The inspector panel: one module's type, stats and internals."""

    module: Module

    def render(self) -> str:
        """Render the inspector."""
        lines = [
            f"name: {self.module.name}",
            f"type: {self.module.module_type}",
            f"stats: {self.module.stats.to_text()}",
            f"describe: {self.module.describe()}",
        ]
        source = getattr(self.module, "source", None)
        if source:
            lines.append("generated code:")
            lines.extend("  " + code_line for code_line in source.strip().splitlines())
        return _box(f"module: {self.module.name}", lines)


@dataclass
class RunLogView:
    """The run panel: per-operator stats and cost of the last execution."""

    report: RunReport

    def render(self) -> str:
        """Render the run log."""
        lines = [f"pipeline: {self.report.pipeline_name}"]
        for name, stats in self.report.module_stats.items():
            lines.append(f"{name}: {stats}")
        if self.report.cost is not None:
            lines.append(f"cost: {self.report.cost.to_text()}")
        for sink, value in self.report.outputs.items():
            preview = repr(value)
            lines.append(f"output[{sink}]: {preview[:120]}")
        return _box("run log", lines)


@dataclass
class ProfilePanelView:
    """The profiler panel: the run's per-module cost/provenance table."""

    report: RunReport

    def render(self) -> str:
        """Render the profile table (empty box when the run has no profile)."""
        profile = self.report.profile
        if profile is None or not profile.rows:
            return _box("run profile", ["(no profile collected)"])
        return _box("run profile", profile.to_table().splitlines(), width=110)


@dataclass
class UsagePanelView:
    """The footer: cumulative LLM usage of the session."""

    service: LLMService

    def render(self) -> str:
        """Render the usage footer."""
        usage = self.service.usage()
        by_purpose: dict[str, int] = {}
        for record in self.service.records:
            if not record.cached:
                by_purpose[record.purpose] = by_purpose.get(record.purpose, 0) + 1
        lines = [usage.to_text()]
        for purpose in sorted(by_purpose):
            lines.append(f"  {purpose}: {by_purpose[purpose]} calls")
        return _box("LLM usage", lines)


def render_screen(
    plan: PhysicalPlan,
    report: RunReport | None = None,
    inspect: str | None = None,
) -> str:
    """Compose the full Figure 5 screen for a compiled plan.

    ``inspect`` selects an operator whose module inspector panel is shown.
    """
    panels = [PipelineCanvasView(plan.pipeline).render()]
    if inspect is not None:
        panels.append(ModuleInspectorView(plan.module(inspect)).render())
    if report is not None:
        panels.append(RunLogView(report).render())
        if report.profile is not None and report.profile.rows:
            panels.append(ProfilePanelView(report).render())
    panels.append(UsagePanelView(plan.context.service).render())
    return "\n\n".join(panels)
