"""Tests for the chaos harness: seeded, schedulable fault injection."""

from __future__ import annotations

import pytest

from repro.llm.errors import ProviderError, RateLimitError
from repro.llm.faults import ChaosProvider, FaultKind, FaultSpec
from repro.llm.providers import LLMRequest, SimulatedProvider

PROMPT = "Which language is this? Text: El informe fue presentado ayer."


def make_chaos(faults, seed="chaos", clock=None):
    return ChaosProvider(SimulatedProvider(), faults, seed=seed, clock=clock)


def drive(provider, n_calls):
    """Call the provider n times; returns the per-call outcome labels."""
    outcomes = []
    for index in range(n_calls):
        request = LLMRequest(prompt=f"summarize item number {index}")
        try:
            provider.complete(request)
            outcomes.append("ok")
        except RateLimitError:
            outcomes.append("rate_limit")
        except ProviderError:
            outcomes.append("error")
    return outcomes


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="meteor_strike")

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.TRANSIENT, rate=1.5)

    def test_window_activation(self):
        spec = FaultSpec(kind=FaultKind.OUTAGE, start=10.0, end=20.0)
        assert not spec.active_at(9.9)
        assert spec.active_at(10.0)
        assert spec.active_at(19.9)
        assert not spec.active_at(20.0)


class TestChaosDeterminism:
    def test_same_seed_replays_identically(self):
        faults = [
            FaultSpec(kind=FaultKind.TRANSIENT, rate=0.3),
            FaultSpec(kind=FaultKind.RATE_LIMIT, rate=0.2, retry_after=2.0),
        ]
        first = drive(make_chaos(faults, seed=11), 60)
        second = drive(make_chaos(faults, seed=11), 60)
        assert first == second
        assert "error" in first and "rate_limit" in first and "ok" in first

    def test_different_seed_differs(self):
        faults = [FaultSpec(kind=FaultKind.TRANSIENT, rate=0.5)]
        assert drive(make_chaos(faults, seed=1), 60) != drive(
            make_chaos(faults, seed=2), 60
        )

    def test_schedule_preview_matches_execution(self):
        faults = [FaultSpec(kind=FaultKind.TRANSIENT, rate=0.4)]
        chaos = make_chaos(faults, seed=5)
        preview = chaos.schedule_preview(40)
        outcomes = drive(chaos, 40)
        expected = ["error" if fired else "ok" for fired in preview]
        assert outcomes == expected

    def test_injected_counter_counts_by_kind(self):
        faults = [FaultSpec(kind=FaultKind.TRANSIENT, rate=0.5)]
        chaos = make_chaos(faults, seed=3)
        outcomes = drive(chaos, 50)
        assert chaos.injected[FaultKind.TRANSIENT] == outcomes.count("error")


class TestFaultKinds:
    def test_transient_rate_one_always_fails(self):
        chaos = make_chaos([FaultSpec(kind=FaultKind.TRANSIENT, rate=1.0)])
        assert drive(chaos, 5) == ["error"] * 5

    def test_rate_zero_never_fails(self):
        chaos = make_chaos([FaultSpec(kind=FaultKind.TRANSIENT, rate=0.0)])
        assert drive(chaos, 5) == ["ok"] * 5

    def test_rate_limit_carries_retry_after(self):
        chaos = make_chaos(
            [FaultSpec(kind=FaultKind.RATE_LIMIT, rate=1.0, retry_after=7.5)]
        )
        with pytest.raises(RateLimitError) as excinfo:
            chaos.complete(LLMRequest(prompt=PROMPT))
        assert excinfo.value.retry_after == 7.5

    def test_outage_window_on_virtual_clock(self, virtual_clock):
        chaos = make_chaos(
            [FaultSpec(kind=FaultKind.OUTAGE, start=10.0, end=20.0)],
            clock=virtual_clock,
        )
        request = LLMRequest(prompt=PROMPT)
        assert chaos.complete(request).text  # before the window: healthy
        virtual_clock.advance(15.0)
        with pytest.raises(ProviderError):
            chaos.complete(request)
        virtual_clock.advance(10.0)  # past the window: healthy again
        assert chaos.complete(request).text

    def test_latency_spike_adds_seconds(self):
        request = LLMRequest(prompt=PROMPT)
        baseline = SimulatedProvider().complete(request).latency_seconds
        chaos = make_chaos(
            [FaultSpec(kind=FaultKind.LATENCY, rate=1.0, extra_latency=9.0)]
        )
        spiked = chaos.complete(request).latency_seconds
        assert spiked == pytest.approx(baseline + 9.0)

    def test_malformed_truncates_completion(self):
        request = LLMRequest(prompt=PROMPT)
        full = SimulatedProvider().complete(request).text
        chaos = make_chaos(
            [FaultSpec(kind=FaultKind.MALFORMED, rate=1.0, truncate_to=3)]
        )
        assert chaos.complete(request).text == full[:3]

    def test_model_name_passthrough(self):
        chaos = make_chaos([])
        assert chaos.model_name == "sim-gpt-2023"
