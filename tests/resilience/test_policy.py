"""Tests for repro.resilience: retry policy, deadline, breaker, fallbacks."""

from __future__ import annotations

import pytest

from repro.llm.providers import SimulatedProvider
from repro.resilience import (
    BreakerState,
    CircuitBreaker,
    Deadline,
    FallbackChain,
    ResiliencePolicy,
    RetryPolicy,
    VirtualClock,
)


class TestVirtualClock:
    def test_advances(self, virtual_clock):
        virtual_clock.advance(1.5)
        virtual_clock.advance(2.5)
        assert virtual_clock.now == pytest.approx(4.0)

    def test_negative_advance_clamped(self):
        clock = VirtualClock(now=3.0)
        clock.advance(-10.0)
        assert clock.now == pytest.approx(3.0)

    def test_reset(self):
        clock = VirtualClock(now=9.0)
        clock.reset()
        assert clock.now == 0.0


class TestRetryPolicy:
    @pytest.mark.parametrize(
        ("base", "multiplier", "expected"),
        [
            (0.5, 2.0, [0.5, 1.0, 2.0]),
            (1.0, 3.0, [1.0, 3.0, 9.0]),
            (0.25, 1.0, [0.25, 0.25, 0.25]),
        ],
    )
    def test_backoff_sequence_without_jitter(self, base, multiplier, expected):
        policy = RetryPolicy(max_retries=3, backoff_seconds=base, multiplier=multiplier)
        assert policy.schedule() == pytest.approx(expected)

    def test_backoff_capped(self):
        policy = RetryPolicy(
            max_retries=6, backoff_seconds=1.0, multiplier=10.0, max_backoff_seconds=50.0
        )
        assert max(policy.schedule()) == pytest.approx(50.0)

    def test_jitter_is_deterministic(self):
        a = RetryPolicy(max_retries=4, jitter=0.5, seed="s")
        b = RetryPolicy(max_retries=4, jitter=0.5, seed="s")
        assert a.schedule(key=7) == b.schedule(key=7)

    def test_jitter_varies_with_key(self):
        policy = RetryPolicy(max_retries=4, jitter=0.5)
        assert policy.schedule(key=1) != policy.schedule(key=2)

    def test_jitter_bounded_by_fraction(self):
        policy = RetryPolicy(max_retries=1, backoff_seconds=1.0, jitter=0.25)
        delay = policy.delay(0, key=3)
        assert 1.0 <= delay <= 1.25


class TestDeadline:
    def test_remaining_and_exhausted(self):
        deadline = Deadline(10.0)
        assert deadline.remaining(4.0) == pytest.approx(6.0)
        assert not deadline.exhausted(9.99)
        assert deadline.exhausted(10.0)
        assert deadline.remaining(15.0) == 0.0

    def test_clamp_caps_waits(self):
        deadline = Deadline(10.0)
        assert deadline.clamp(60.0, elapsed=7.0) == pytest.approx(3.0)
        assert deadline.clamp(1.0, elapsed=7.0) == pytest.approx(1.0)


class TestCircuitBreaker:
    def make(self, **overrides):
        config = dict(
            failure_threshold=0.5, window=10, min_calls=4, cooldown_seconds=30.0
        )
        config.update(overrides)
        return CircuitBreaker(**config)

    def test_starts_closed(self):
        breaker = self.make()
        assert breaker.state == BreakerState.CLOSED
        assert breaker.allow(0.0)

    def test_does_not_open_before_min_calls(self):
        breaker = self.make(min_calls=5)
        for _ in range(4):
            breaker.record_failure(0.0)
        assert breaker.state == BreakerState.CLOSED

    def test_opens_on_failure_rate(self):
        breaker = self.make()
        for _ in range(4):
            breaker.record_failure(1.0)
        assert breaker.state == BreakerState.OPEN
        assert breaker.opens == 1
        assert not breaker.allow(2.0)

    def test_open_to_half_open_after_cooldown(self):
        breaker = self.make(cooldown_seconds=30.0)
        for _ in range(4):
            breaker.record_failure(10.0)
        assert not breaker.allow(39.9)
        assert breaker.remaining(20.0) == pytest.approx(20.0)
        assert breaker.allow(40.0)  # cooldown elapsed: half-open probe
        assert breaker.state == BreakerState.HALF_OPEN

    def test_half_open_success_closes(self):
        breaker = self.make()
        for _ in range(4):
            breaker.record_failure(0.0)
        assert breaker.allow(30.0)
        breaker.record_success(30.0)
        assert breaker.state == BreakerState.CLOSED
        assert breaker.failure_rate == 0.0  # window cleared

    def test_half_open_failure_reopens(self):
        breaker = self.make()
        for _ in range(4):
            breaker.record_failure(0.0)
        assert breaker.allow(30.0)
        breaker.record_failure(30.0)
        assert breaker.state == BreakerState.OPEN
        assert breaker.opened_at == pytest.approx(30.0)
        assert breaker.opens == 2

    def test_mixed_outcomes_below_threshold_stay_closed(self):
        breaker = self.make(failure_threshold=0.7)
        for index in range(20):
            if index % 2 == 0:
                breaker.record_failure(0.0)
            else:
                breaker.record_success(0.0)
        assert breaker.state == BreakerState.CLOSED

    def test_clone_copies_config_not_state(self):
        breaker = self.make(cooldown_seconds=12.0)
        for _ in range(4):
            breaker.record_failure(0.0)
        clone = breaker.clone()
        assert clone.cooldown_seconds == 12.0
        assert clone.state == BreakerState.CLOSED
        assert clone.opens == 0


class TestFallbackChain:
    def test_describe_orders_providers(self):
        chain = FallbackChain(
            providers=[SimulatedProvider(), SimulatedProvider()],
            degraded=lambda request: "n/a",
        )
        text = chain.describe()
        assert text.count("sim-gpt-2023") == 2
        assert text.endswith("degraded")

    def test_policy_describe_mentions_components(self):
        policy = ResiliencePolicy(
            retry=RetryPolicy(max_retries=2),
            deadline=Deadline(20.0),
            breaker=CircuitBreaker(),
            fallback=FallbackChain(degraded=lambda request: ""),
        )
        text = policy.describe()
        assert "retry" in text and "deadline" in text
        assert "breaker" in text and "fallback" in text
