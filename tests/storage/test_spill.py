"""Tests for the disk spill store (streaming shard scratch space)."""

from __future__ import annotations

import pytest

from repro.core.runtime.checkpoint import decode_value, encode_value
from repro.llm.faults import TriggerPoint
from repro.storage import SpillStore, SpillWriteError


class TestSpillRoundTrip:
    def test_put_get_remove(self, tmp_path):
        store = SpillStore(tmp_path / "spill")
        records = [{"left": "a", "n": 1}, {"left": "b", "n": 2}]
        written = store.put("0", records)
        assert written > 0
        assert store.get("0") == records
        assert len(store) == 1
        freed = store.remove("0")
        assert freed == written
        assert len(store) == 0
        assert store.spilled_bytes == 0

    def test_checkpoint_codec_preserves_tuples(self, tmp_path):
        store = SpillStore(tmp_path, encode=encode_value, decode=decode_value)
        records = [("pair", {"abv": "5.0%"}), ("pair", {"abv": "6.1%"})]
        store.put("7", records)
        assert store.get("7") == records

    def test_reput_replaces_not_accumulates(self, tmp_path):
        store = SpillStore(tmp_path)
        store.put("0", [{"x": 1}])
        first = store.spilled_bytes
        store.put("0", [{"x": 1}])
        assert store.spilled_bytes == first
        assert len(store) == 1

    def test_clear_drops_everything(self, tmp_path):
        store = SpillStore(tmp_path)
        for key in ("0", "1", "2"):
            store.put(key, [{"k": key}])
        store.clear()
        assert len(store) == 0
        assert store.spilled_bytes == 0
        assert not list(store.directory.glob("*.spill"))


class TestSpillBudget:
    def test_has_room_tracks_budget(self, tmp_path):
        store = SpillStore(tmp_path, budget_bytes=64)
        assert store.has_room(10)
        store.put("0", [{"pad": "x" * 40}])
        assert not store.has_room(40)
        store.remove("0")
        assert store.has_room(40)

    def test_put_never_refuses_over_budget(self, tmp_path):
        # The budget throttles materialization; work already pulled from
        # the source must always be spillable.
        store = SpillStore(tmp_path, budget_bytes=8)
        store.put("0", [{"pad": "x" * 100}])
        assert store.spilled_bytes > store.budget_bytes

    def test_peak_bytes_high_watermark(self, tmp_path):
        store = SpillStore(tmp_path)
        store.put("0", [{"pad": "x" * 50}])
        store.put("1", [{"pad": "x" * 50}])
        peak = store.spilled_bytes
        store.remove("0")
        store.remove("1")
        assert store.peak_bytes == peak
        assert store.spilled_bytes == 0

    def test_rejects_non_positive_budget(self, tmp_path):
        with pytest.raises(ValueError):
            SpillStore(tmp_path, budget_bytes=0)


class TestSpillFaults:
    def test_injected_write_failure(self, tmp_path):
        fault = TriggerPoint("spill:write", hits=2)
        store = SpillStore(tmp_path, write_fault=fault)
        store.put("0", [{"x": 1}])
        with pytest.raises(SpillWriteError):
            store.put("1", [{"x": 2}])
        assert store.write_failures == 1
        # A retry of the same key succeeds (the trigger fires once).
        store.put("1", [{"x": 2}])
        assert store.get("1") == [{"x": 2}]

    def test_failed_write_leaves_accounting_untouched(self, tmp_path):
        fault = TriggerPoint("spill:write", hits=1)
        store = SpillStore(tmp_path, write_fault=fault)
        with pytest.raises(SpillWriteError):
            store.put("0", [{"x": 1}])
        assert store.spilled_bytes == 0
        assert len(store) == 0
