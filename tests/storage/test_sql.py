"""Tests for the SQL lexer, parser and executor."""

from __future__ import annotations

import pytest

from repro.storage.database import Database
from repro.storage.sql.ast import (
    CreateTableStatement,
    DeleteStatement,
    InsertStatement,
    SelectStatement,
)
from repro.storage.sql.lexer import SqlLexError, tokenize_sql
from repro.storage.sql.parser import SqlParseError, parse_sql
from repro.storage.table import Table


@pytest.fixture()
def db() -> Database:
    database = Database()
    database.register(
        Table.from_records(
            "beers",
            [
                {"id": 1, "name": "Stone IPA", "abv": 6.9, "brewery": "Stone"},
                {"id": 2, "name": "Wild Otter", "abv": 5.1, "brewery": "Avery"},
                {"id": 3, "name": "Old Monk", "abv": None, "brewery": "Stone"},
                {"id": 4, "name": "Raging Moon", "abv": 9.0, "brewery": "Bells"},
            ],
        )
    )
    return database


class TestLexer:
    def test_keywords_uppercased(self):
        kinds = [(t.kind, t.value) for t in tokenize_sql("select a FROM t")]
        assert kinds[0] == ("KEYWORD", "SELECT")
        assert kinds[2] == ("KEYWORD", "FROM")

    def test_string_with_escaped_quote(self):
        tokens = tokenize_sql("SELECT 'it''s'")
        assert tokens[1] == tokens[1].__class__("STRING", "it's", tokens[1].position)

    def test_numbers(self):
        tokens = tokenize_sql("1 2.5")
        assert [t.value for t in tokens] == ["1", "2.5"]

    def test_unterminated_string_raises(self):
        with pytest.raises(SqlLexError):
            tokenize_sql("SELECT 'oops")

    def test_unknown_character_raises(self):
        with pytest.raises(SqlLexError):
            tokenize_sql("SELECT @")


class TestParser:
    def test_simple_select(self):
        statement = parse_sql("SELECT name FROM beers")
        assert isinstance(statement, SelectStatement)
        assert statement.table == "beers"
        assert not statement.star

    def test_select_star(self):
        assert parse_sql("SELECT * FROM t").star is True

    def test_where_with_precedence(self):
        statement = parse_sql("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        # AND binds tighter than OR.
        assert statement.where.op == "OR"

    def test_order_limit_offset(self):
        statement = parse_sql("SELECT * FROM t ORDER BY a DESC, b LIMIT 5 OFFSET 2")
        assert statement.order_by[0].descending is True
        assert statement.order_by[1].descending is False
        assert statement.limit == 5 and statement.offset == 2

    def test_group_by_having(self):
        statement = parse_sql(
            "SELECT brewery, COUNT(*) AS n FROM beers GROUP BY brewery HAVING n > 1"
        )
        assert len(statement.group_by) == 1
        assert statement.having is not None

    def test_aliases(self):
        statement = parse_sql("SELECT name AS n, abv strength FROM beers")
        assert statement.items[0].alias == "n"
        assert statement.items[1].alias == "strength"

    def test_insert(self):
        statement = parse_sql("INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)")
        assert isinstance(statement, InsertStatement)
        assert statement.rows == [[1, "x"], [2, None]]

    def test_insert_negative_number(self):
        statement = parse_sql("INSERT INTO t VALUES (-5)")
        assert statement.rows == [[-5]]

    def test_create_table(self):
        statement = parse_sql("CREATE TABLE t (a INT, b TEXT)")
        assert isinstance(statement, CreateTableStatement)
        assert statement.columns == [("a", "INT"), ("b", "TEXT")]

    def test_delete(self):
        statement = parse_sql("DELETE FROM t WHERE a = 1")
        assert isinstance(statement, DeleteStatement)

    def test_trailing_garbage_raises(self):
        with pytest.raises(SqlParseError):
            parse_sql("SELECT * FROM t garbage here")

    def test_empty_raises(self):
        with pytest.raises(SqlParseError):
            parse_sql("   ")

    def test_unsupported_statement_raises(self):
        with pytest.raises(SqlParseError):
            parse_sql("UPDATE t SET a = 1")

    def test_like_requires_string(self):
        with pytest.raises(SqlParseError):
            parse_sql("SELECT * FROM t WHERE a LIKE 5")


class TestExecutor:
    def test_projection(self, db: Database):
        result = db.query("SELECT name FROM beers")
        assert result.schema.names == ["name"]
        assert len(result) == 4

    def test_where_filters(self, db: Database):
        result = db.query("SELECT name FROM beers WHERE abv > 6")
        assert sorted(result.column("name")) == ["Raging Moon", "Stone IPA"]

    def test_null_excluded_by_comparison(self, db: Database):
        result = db.query("SELECT name FROM beers WHERE abv < 100")
        assert "Old Monk" not in result.column("name")

    def test_is_null(self, db: Database):
        result = db.query("SELECT name FROM beers WHERE abv IS NULL")
        assert result.column("name") == ["Old Monk"]

    def test_like(self, db: Database):
        result = db.query("SELECT name FROM beers WHERE name LIKE '%moon%'")
        assert result.column("name") == ["Raging Moon"]

    def test_in_list(self, db: Database):
        result = db.query("SELECT name FROM beers WHERE brewery IN ('Stone', 'Bells')")
        assert len(result) == 3

    def test_order_by_desc_nulls_last(self, db: Database):
        result = db.query("SELECT name, abv FROM beers ORDER BY abv DESC")
        assert result.column("name")[0] == "Raging Moon"
        assert result.column("name")[-1] == "Old Monk"

    def test_order_by_asc_nulls_first(self, db: Database):
        result = db.query("SELECT name FROM beers ORDER BY abv ASC")
        assert result.column("name")[0] == "Old Monk"

    def test_limit_offset(self, db: Database):
        result = db.query("SELECT id FROM beers ORDER BY id LIMIT 2 OFFSET 1")
        assert result.column("id") == [2, 3]

    def test_distinct(self, db: Database):
        result = db.query("SELECT DISTINCT brewery FROM beers")
        assert len(result) == 3

    def test_count_star(self, db: Database):
        result = db.query("SELECT COUNT(*) AS n FROM beers")
        assert result.column("n") == [4]

    def test_count_column_skips_nulls(self, db: Database):
        result = db.query("SELECT COUNT(abv) AS n FROM beers")
        assert result.column("n") == [3]

    def test_avg_min_max_sum(self, db: Database):
        result = db.query("SELECT AVG(abv) a, MIN(abv) lo, MAX(abv) hi, SUM(abv) s FROM beers")
        record = result.record(0)
        assert record["lo"] == 5.1 and record["hi"] == 9.0
        assert record["a"] == pytest.approx((6.9 + 5.1 + 9.0) / 3)
        assert record["s"] == pytest.approx(21.0)

    def test_group_by(self, db: Database):
        result = db.query(
            "SELECT brewery, COUNT(*) AS n FROM beers GROUP BY brewery ORDER BY n DESC"
        )
        assert result.record(0) == {"brewery": "Stone", "n": 2}

    def test_having(self, db: Database):
        result = db.query(
            "SELECT brewery, COUNT(*) AS n FROM beers GROUP BY brewery HAVING n > 1"
        )
        assert result.column("brewery") == ["Stone"]

    def test_group_by_rejects_ungrouped_column(self, db: Database):
        from repro.storage.sql.executor import SqlExecutionError

        with pytest.raises(SqlExecutionError):
            db.query("SELECT name, COUNT(*) FROM beers GROUP BY brewery")

    def test_scalar_function_in_where(self, db: Database):
        result = db.query("SELECT name FROM beers WHERE LOWER(brewery) = 'stone'")
        assert len(result) == 2

    def test_arithmetic_in_projection(self, db: Database):
        result = db.query("SELECT abv * 2 AS double FROM beers WHERE id = 1")
        assert result.column("double") == [pytest.approx(13.8)]

    def test_insert_and_delete(self, db: Database):
        assert db.execute("INSERT INTO beers VALUES (5, 'New One', 4.2, 'Stone')") == 1
        assert len(db.table("beers")) == 5
        assert db.execute("DELETE FROM beers WHERE id = 5") == 1
        assert len(db.table("beers")) == 4

    def test_delete_all(self, db: Database):
        assert db.execute("DELETE FROM beers") == 4
        assert len(db.table("beers")) == 0

    def test_create_table(self, db: Database):
        db.execute("CREATE TABLE notes (id INT, body TEXT)")
        assert "notes" in db.tables
        db.execute("INSERT INTO notes VALUES (1, 'hi')")
        assert db.query("SELECT * FROM notes").records() == [{"id": 1, "body": "hi"}]

    def test_create_duplicate_raises(self, db: Database):
        from repro.storage.sql.executor import SqlExecutionError

        with pytest.raises(SqlExecutionError):
            db.execute("CREATE TABLE beers (x INT)")

    def test_unknown_table_raises(self, db: Database):
        from repro.storage.sql.executor import SqlExecutionError

        with pytest.raises(SqlExecutionError):
            db.query("SELECT * FROM nope")

    def test_query_rejects_non_select(self, db: Database):
        from repro.storage.sql.executor import SqlExecutionError

        with pytest.raises(SqlExecutionError):
            db.query("DELETE FROM beers")

    def test_query_log_records_statements(self, db: Database):
        db.query("SELECT * FROM beers")
        assert db.query_log[-1].rows_returned == 4

    def test_schema_text_mentions_tables(self, db: Database):
        assert "TABLE beers" in db.schema_text()
        assert "4 rows" in db.schema_text()
