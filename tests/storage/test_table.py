"""Tests for repro.storage.table."""

from __future__ import annotations

import pytest

from repro.storage.table import Column, ColumnType, Schema, Table


class TestColumnType:
    def test_convert_int(self):
        assert ColumnType.convert("42", ColumnType.INT) == 42

    def test_convert_float_string_to_int(self):
        assert ColumnType.convert("42.0", ColumnType.INT) == 42

    def test_convert_bool_strings(self):
        assert ColumnType.convert("true", ColumnType.BOOL) is True
        assert ColumnType.convert("no", ColumnType.BOOL) is False

    def test_empty_string_is_null(self):
        assert ColumnType.convert("", ColumnType.TEXT) is None

    def test_none_is_null(self):
        assert ColumnType.convert(None, ColumnType.FLOAT) is None

    def test_unknown_type_raises(self):
        with pytest.raises(ValueError):
            ColumnType.convert("x", "BLOB")

    def test_infer_int(self):
        assert ColumnType.infer(["1", "2", None]) == ColumnType.INT

    def test_infer_float(self):
        assert ColumnType.infer(["1.5", "2"]) == ColumnType.FLOAT

    def test_infer_text(self):
        assert ColumnType.infer(["a", "1"]) == ColumnType.TEXT

    def test_infer_bool(self):
        assert ColumnType.infer(["true", "false"]) == ColumnType.BOOL

    def test_infer_empty_defaults_text(self):
        assert ColumnType.infer([]) == ColumnType.TEXT


class TestSchema:
    def test_of_mixed_specs(self):
        schema = Schema.of("a", ("b", ColumnType.INT), Column("c", ColumnType.FLOAT))
        assert schema.names == ["a", "b", "c"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Schema.of("a", "a")

    def test_index_of(self):
        schema = Schema.of("x", "y")
        assert schema.index_of("y") == 1
        with pytest.raises(KeyError):
            schema.index_of("z")

    def test_contains(self):
        schema = Schema.of("x")
        assert "x" in schema and "q" not in schema


class TestTable:
    def make(self) -> Table:
        return Table.from_records(
            "t",
            [
                {"id": 1, "name": "alpha", "price": 1.5},
                {"id": 2, "name": "beta", "price": None},
            ],
        )

    def test_schema_inference(self):
        table = self.make()
        types = {c.name: c.type for c in table.schema.columns}
        assert types == {"id": "INT", "name": "TEXT", "price": "FLOAT"}

    def test_insert_mapping(self):
        table = self.make()
        table.insert({"id": 3, "name": "gamma", "price": 2.0})
        assert len(table) == 3

    def test_insert_wrong_arity_raises(self):
        table = self.make()
        with pytest.raises(ValueError):
            table.insert([1, 2])

    def test_values_coerced_on_insert(self):
        table = self.make()
        table.insert(["7", "delta", "3.25"])
        assert table.record(2) == {"id": 7, "name": "delta", "price": 3.25}

    def test_column_access(self):
        assert self.make().column("name") == ["alpha", "beta"]

    def test_select_rows(self):
        filtered = self.make().select_rows(lambda r: r["id"] > 1)
        assert len(filtered) == 1

    def test_head(self):
        assert len(self.make().head(1)) == 1

    def test_csv_roundtrip(self):
        table = self.make()
        text = table.to_csv()
        back = Table.from_csv(text, name="t")
        assert back.records() == table.records()

    def test_csv_roundtrip_via_file(self, tmp_path):
        table = self.make()
        path = tmp_path / "t.csv"
        table.to_csv(path)
        back = Table.from_csv(path)
        assert back.records() == table.records()
        assert back.name == "t"

    def test_json_roundtrip(self):
        table = self.make()
        back = Table.from_json(table.to_json())
        assert back.records() == table.records()
        assert back.schema == table.schema

    def test_to_text_contains_headers_and_values(self):
        text = self.make().to_text()
        assert "name" in text and "alpha" in text

    def test_to_text_truncates(self):
        table = self.make()
        for i in range(30):
            table.insert([i, f"r{i}", 0.0])
        assert "more rows" in table.to_text(max_rows=5)

    def test_copy_is_independent(self):
        table = self.make()
        clone = table.copy()
        clone.insert([9, "x", 0.0])
        assert len(table) == 2 and len(clone) == 3

    def test_empty_csv_raises(self):
        with pytest.raises(ValueError):
            Table.from_csv("")
