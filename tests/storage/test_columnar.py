"""Tests for the columnar batch representation and its spill interop.

Covers the determinism contract (sorted vocabularies, platform-stable
arrays), the one-pass tokenization cache, the mode toggle, and the
satellite requirement that a spilled shard round-trips through the
columnar block codec unchanged — including a crash mid-spill via the
existing fault hooks, a resume, and an array-for-array comparison.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.llm.faults import TriggerPoint
from repro.storage import SpillStore, SpillWriteError
from repro.storage.columnar import (
    ColumnarBlock,
    TokenColumn,
    Vocabulary,
    columnar_mode,
    default_columnar,
    pack_codepoints,
    resolve_columnar,
    set_default_columnar,
    spill_decode,
    spill_encode,
)


class TestVocabulary:
    def test_ids_follow_sorted_token_order(self):
        vocab = Vocabulary(["zeta", "alpha", "mid", "alpha"])
        assert vocab.tokens == ("alpha", "mid", "zeta")
        assert [vocab.id_of(t) for t in vocab.tokens] == [0, 1, 2]

    def test_same_multiset_same_vocabulary(self):
        a = Vocabulary(["b", "a", "c"])
        b = Vocabulary(["c", "c", "a", "b"])
        assert a.tokens == b.tokens

    def test_encode_marks_oov(self):
        vocab = Vocabulary(["a", "b"])
        assert vocab.encode(["b", "zzz", "a"]).tolist() == [1, -1, 0]

    def test_payload_round_trip(self):
        vocab = Vocabulary(["café", "東京", "ascii"])
        rebuilt = Vocabulary.from_payload(vocab.to_payload())
        assert rebuilt.tokens == vocab.tokens
        assert rebuilt.id_of("東京") == vocab.id_of("東京")


class TestPackCodepoints:
    def test_shapes_and_fill(self):
        matrix, lengths = pack_codepoints(["ab", "", "xyz"], fill=-1)
        assert matrix.shape == (3, 3)
        assert lengths.tolist() == [2, 0, 3]
        assert matrix[1].tolist() == [-1, -1, -1]
        assert matrix[0, :2].tolist() == [ord("a"), ord("b")]

    def test_non_bmp_codepoints(self):
        matrix, lengths = pack_codepoints(["a\U0001F600"])
        assert lengths.tolist() == [2]
        assert matrix[0].tolist() == [ord("a"), 0x1F600]


class TestTokenColumn:
    def test_tokenizes_each_distinct_text_once(self):
        calls: list[str] = []

        def tokenizer(text: str) -> list[str]:
            calls.append(text)
            return text.split()

        column = TokenColumn(["a b", "c", "a b", "a b", "c"], tokenizer=tokenizer)
        assert calls == ["a b", "c"]
        assert column.row_token_ids(0).tolist() == column.row_token_ids(2).tolist()

    def test_set_ids_are_sorted_unique(self):
        column = TokenColumn(["beta alpha beta", "alpha"])
        ids = column.row_set_ids(0)
        assert ids.tolist() == sorted(set(ids.tolist()))
        assert len(ids) == 2

    def test_payload_round_trip_is_bit_exact(self):
        column = TokenColumn(["stone ipa", "", "café 東京", "stone ipa"])
        rebuilt = TokenColumn.from_payload(column.to_payload())
        assert rebuilt.arrays_equal(column)


class TestColumnarBlock:
    RECORDS = [
        {"name": "Stone IPA", "abv": 6.9},
        {"name": None, "abv": None},
        {"name": "Stone IPA", "abv": "6.9%"},
    ]

    def test_from_records_round_trip(self):
        block = ColumnarBlock.from_records(self.RECORDS, fields=("name", "abv"))
        assert block.n_rows == 3
        rebuilt = ColumnarBlock.from_payload(block.to_payload())
        assert rebuilt.arrays_equal(block)

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError):
            ColumnarBlock({"a": TokenColumn(["x"]), "b": TokenColumn(["x", "y"])})

    def test_clean_cache_distinguishes_equal_keys_of_different_types(self):
        # True == 1 as dict keys; their cleaned texts must not be shared.
        block = ColumnarBlock.from_records(
            [{"v": True}, {"v": 1}, {"v": 1.0}], fields=("v",)
        )
        assert block.column("v").texts == ("True", "1", "1.0")


class TestModeToggle:
    def test_default_is_columnar(self):
        assert default_columnar() is True
        assert resolve_columnar(None) is True

    def test_explicit_flag_wins_over_ambient(self):
        with columnar_mode(False):
            assert resolve_columnar(True) is True
            assert resolve_columnar(False) is False
            assert resolve_columnar(None) is False

    def test_context_nests_and_restores(self):
        assert resolve_columnar(None) is True
        with columnar_mode(False):
            with columnar_mode(True):
                assert resolve_columnar(None) is True
            assert resolve_columnar(None) is False
        assert resolve_columnar(None) is True

    def test_set_default_columnar(self):
        try:
            set_default_columnar(False)
            assert resolve_columnar(None) is False
        finally:
            set_default_columnar(True)
        assert resolve_columnar(None) is True


class TestSpillInterop:
    """The satellite: spilled shards round-trip the columnar codec."""

    def _block(self) -> ColumnarBlock:
        return ColumnarBlock.from_records(
            [
                {"name": "sierra nevada pale ale", "brand": "sierra nevada"},
                {"name": "café 東京 lager", "brand": ""},
                {"name": None, "brand": "sierra nevada"},
            ],
            fields=("name", "brand"),
        )

    def test_spilled_block_round_trips_unchanged(self, tmp_path):
        store = SpillStore(tmp_path, encode=spill_encode, decode=spill_decode)
        block = self._block()
        store.put("7", [block, {"plain": "record"}])
        restored = store.get("7")
        assert isinstance(restored[0], ColumnarBlock)
        assert restored[0].arrays_equal(block)
        assert restored[1] == {"plain": "record"}

    def test_crash_mid_spill_then_resume_restores_arrays(self, tmp_path):
        block = self._block()
        fault = TriggerPoint("spill:write", hits=2)
        store = SpillStore(
            tmp_path, encode=spill_encode, decode=spill_decode, write_fault=fault
        )
        store.put("0", [block])
        with pytest.raises(SpillWriteError):
            store.put("1", [block])  # crash mid-spill on the second write
        # Resume: a fresh store over the same directory re-spills the lost
        # shard; both shards then decode to bit-identical arrays.
        resumed = SpillStore(tmp_path, encode=spill_encode, decode=spill_decode)
        resumed.put("1", [block])
        for key in ("0", "1"):
            restored = resumed.get(key)
            assert restored[0].arrays_equal(block)
            for name, array in restored[0].column("name").arrays().items():
                assert np.array_equal(array, block.column("name").arrays()[name])
