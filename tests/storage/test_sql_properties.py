"""Property-based tests: the SQL engine vs a naive Python reference."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.database import Database
from repro.storage.table import Column, ColumnType, Schema, Table

ROWS = st.lists(
    st.tuples(
        st.integers(-50, 50),
        st.one_of(st.none(), st.floats(-100, 100, allow_nan=False)),
        st.sampled_from(["red", "green", "blue", "Red Wine", ""]),
    ),
    max_size=25,
)


def make_db(rows) -> Database:
    schema = Schema(
        (
            Column("k", ColumnType.INT),
            Column("v", ColumnType.FLOAT),
            Column("c", ColumnType.TEXT),
        )
    )
    table = Table("t", schema)
    for row in rows:
        table.insert(row)
    db = Database()
    db.register(table)
    return db


@settings(max_examples=60, deadline=None)
@given(ROWS, st.integers(-50, 50))
def test_where_filter_matches_reference(rows, threshold):
    db = make_db(rows)
    result = db.query(f"SELECT k FROM t WHERE k > {threshold}")
    expected = [r[0] for r in db.table("t").rows if r[0] is not None and r[0] > threshold]
    assert result.column("k") == expected


@settings(max_examples=60, deadline=None)
@given(ROWS)
def test_count_and_sum_match_reference(rows):
    db = make_db(rows)
    result = db.query("SELECT COUNT(*) AS n, COUNT(v) AS nv, SUM(k) AS s FROM t")
    record = result.record(0)
    raw = db.table("t").rows
    assert record["n"] == len(raw)
    assert record["nv"] == sum(1 for r in raw if r[1] is not None)
    expected_sum = sum(r[0] for r in raw) if raw else None
    assert record["s"] == expected_sum


@settings(max_examples=60, deadline=None)
@given(ROWS)
def test_order_by_sorts_non_nulls(rows):
    db = make_db(rows)
    result = db.query("SELECT v FROM t WHERE v IS NOT NULL ORDER BY v")
    values = result.column("v")
    assert values == sorted(values)


@settings(max_examples=60, deadline=None)
@given(ROWS, st.integers(0, 10))
def test_limit_caps_cardinality(rows, limit):
    db = make_db(rows)
    result = db.query(f"SELECT * FROM t LIMIT {limit}")
    assert len(result) == min(limit, len(rows))


@settings(max_examples=60, deadline=None)
@given(ROWS)
def test_distinct_removes_duplicates(rows):
    db = make_db(rows)
    result = db.query("SELECT DISTINCT c FROM t")
    expected = []
    for row in db.table("t").rows:
        if row[2] not in expected:
            expected.append(row[2])
    assert result.column("c") == expected


@settings(max_examples=60, deadline=None)
@given(ROWS)
def test_group_by_counts_match_reference(rows):
    db = make_db(rows)
    result = db.query("SELECT c, COUNT(*) AS n FROM t GROUP BY c")
    from collections import Counter

    expected = Counter(row[2] for row in db.table("t").rows)
    got = {r["c"]: r["n"] for r in result.records()}
    assert got == dict(expected)


@settings(max_examples=40, deadline=None)
@given(ROWS)
def test_delete_then_count_is_zero(rows):
    db = make_db(rows)
    deleted = db.execute("DELETE FROM t")
    assert deleted == len(rows)
    assert db.query("SELECT COUNT(*) AS n FROM t").column("n") == [0]
