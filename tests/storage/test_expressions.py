"""Tests for the typed expression evaluator."""

from __future__ import annotations

import pytest

from repro.storage.expressions import (
    BinaryOp,
    ColumnRef,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
    columns_referenced,
    evaluate,
)

ENV = {"a": 10, "b": 3, "name": "Stone IPA", "missing": None}


def col(name: str) -> ColumnRef:
    return ColumnRef(name)


class TestArithmetic:
    def test_add(self):
        assert evaluate(BinaryOp("+", col("a"), col("b")), ENV) == 13

    def test_divide(self):
        assert evaluate(BinaryOp("/", col("a"), Literal(4)), ENV) == 2.5

    def test_divide_by_zero_is_null(self):
        assert evaluate(BinaryOp("/", col("a"), Literal(0)), ENV) is None

    def test_modulo(self):
        assert evaluate(BinaryOp("%", col("a"), col("b")), ENV) == 1

    def test_string_concat_with_plus(self):
        assert evaluate(BinaryOp("+", Literal("x"), Literal("y")), ENV) == "xy"

    def test_null_propagates(self):
        assert evaluate(BinaryOp("+", col("missing"), Literal(1)), ENV) is None

    def test_unary_minus(self):
        assert evaluate(UnaryOp("-", col("b")), ENV) == -3


class TestComparisons:
    def test_equals(self):
        assert evaluate(BinaryOp("=", col("a"), Literal(10)), ENV) is True

    def test_not_equals(self):
        assert evaluate(BinaryOp("<>", col("a"), Literal(10)), ENV) is False

    def test_less_than(self):
        assert evaluate(BinaryOp("<", col("b"), col("a")), ENV) is True

    def test_null_comparison_is_null(self):
        assert evaluate(BinaryOp("=", col("missing"), Literal(1)), ENV) is None

    def test_numeric_string_coercion(self):
        assert evaluate(BinaryOp("=", Literal("10"), Literal(10)), ENV) is True


class TestLogic:
    def test_and_short_circuit_with_null(self):
        # NULL AND FALSE is FALSE in three-valued logic.
        expr = BinaryOp("AND", BinaryOp("=", col("missing"), Literal(1)), Literal(False))
        assert evaluate(expr, ENV) is False

    def test_and_with_null_and_true_is_null(self):
        expr = BinaryOp("AND", BinaryOp("=", col("missing"), Literal(1)), Literal(True))
        assert evaluate(expr, ENV) is None

    def test_or_true_dominates_null(self):
        expr = BinaryOp("OR", BinaryOp("=", col("missing"), Literal(1)), Literal(True))
        assert evaluate(expr, ENV) is True

    def test_not(self):
        assert evaluate(UnaryOp("NOT", Literal(True)), ENV) is False

    def test_not_null_is_null(self):
        assert evaluate(UnaryOp("NOT", BinaryOp("=", col("missing"), Literal(1))), ENV) is None


class TestPredicates:
    def test_in_list(self):
        assert evaluate(InList(col("a"), (Literal(5), Literal(10))), ENV) is True

    def test_not_in_list(self):
        assert evaluate(InList(col("a"), (Literal(5),), negated=True), ENV) is True

    def test_in_with_null_operand(self):
        assert evaluate(InList(col("missing"), (Literal(1),)), ENV) is None

    def test_is_null(self):
        assert evaluate(IsNull(col("missing")), ENV) is True
        assert evaluate(IsNull(col("a")), ENV) is False

    def test_is_not_null(self):
        assert evaluate(IsNull(col("a"), negated=True), ENV) is True

    def test_like_percent(self):
        assert evaluate(Like(col("name"), "Stone%"), ENV) is True

    def test_like_underscore(self):
        assert evaluate(Like(Literal("cat"), "c_t"), ENV) is True

    def test_like_case_insensitive(self):
        assert evaluate(Like(col("name"), "stone%"), ENV) is True

    def test_not_like(self):
        assert evaluate(Like(col("name"), "Lager%", negated=True), ENV) is True


class TestFunctions:
    def test_lower_upper(self):
        assert evaluate(FunctionCall("LOWER", (col("name"),)), ENV) == "stone ipa"
        assert evaluate(FunctionCall("UPPER", (Literal("ab"),)), ENV) == "AB"

    def test_length(self):
        assert evaluate(FunctionCall("LENGTH", (Literal("abc"),)), ENV) == 3

    def test_coalesce(self):
        expr = FunctionCall("COALESCE", (col("missing"), Literal("fallback")))
        assert evaluate(expr, ENV) == "fallback"

    def test_abs(self):
        assert evaluate(FunctionCall("ABS", (Literal(-4),)), ENV) == 4

    def test_unknown_function_raises(self):
        with pytest.raises(ValueError):
            evaluate(FunctionCall("NOPE", (Literal(1),)), ENV)


class TestMisc:
    def test_unknown_column_raises(self):
        with pytest.raises(KeyError):
            evaluate(col("nope"), ENV)

    def test_columns_referenced(self):
        expr = BinaryOp("AND", BinaryOp(">", col("a"), Literal(1)), Like(col("name"), "%"))
        assert columns_referenced(expr) == {"a", "name"}

    def test_sql_rendering_roundtrips_structure(self):
        expr = BinaryOp("AND", BinaryOp(">", col("a"), Literal(1)), IsNull(col("b")))
        rendered = expr.sql()
        assert "a > 1" in rendered and "IS NULL" in rendered

    def test_string_literal_escaping(self):
        assert Literal("it's").sql() == "'it''s'"
