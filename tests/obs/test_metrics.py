"""Unit tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs import (
    DEFAULT_SIZE_BUCKETS,
    Histogram,
    MetricsRegistry,
)
from repro.obs.metrics import _NULL_METRIC


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(2.5)
        assert registry.value("c") == 3.5

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="cannot decrease"):
            registry.counter("c").inc(-1)


class TestGauge:
    def test_set_overwrites(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(5)
        registry.gauge("g").set(2)
        assert registry.value("g") == 2


class TestHistogram:
    def test_bucket_placement(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", bounds=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 10.0, 11.0):
            histogram.observe(value)
        # counts[i] holds observations <= bounds[i]; last slot is overflow.
        assert histogram.counts == [2, 2, 1]
        assert histogram.total == 5
        assert histogram.sum == pytest.approx(27.5)

    def test_counts_sum_to_total(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", bounds=DEFAULT_SIZE_BUCKETS)
        for value in range(200):
            histogram.observe(float(value))
        assert sum(histogram.counts) == histogram.total == 200

    def test_non_increasing_bounds_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", (1.0, 1.0), lock=MetricsRegistry()._lock)

    def test_redeclaring_with_other_bounds_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", bounds=(1.0, 2.0))
        with pytest.raises(ValueError, match="already declared"):
            registry.histogram("h", bounds=(1.0, 3.0))


class TestRegistry:
    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="is a counter"):
            registry.gauge("x")

    def test_disabled_registry_hands_out_null_metrics(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("c") is _NULL_METRIC
        assert registry.gauge("g") is _NULL_METRIC
        assert registry.histogram("h") is _NULL_METRIC
        registry.counter("c").inc()
        assert registry.as_dict() == {}

    def test_as_dict_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc()
        registry.counter("alpha").inc()
        assert list(registry.as_dict()) == ["alpha", "zeta"]

    def test_merge_counters_add_gauges_max_histograms_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        a.gauge("g").set(1)
        b.gauge("g").set(9)
        a.histogram("h", bounds=(1.0,)).observe(0.5)
        b.histogram("h", bounds=(1.0,)).observe(2.0)
        a.merge(b)
        assert a.value("c") == 5
        assert a.value("g") == 9
        merged = a.as_dict()["h"]
        assert merged["counts"] == [1, 1]
        assert merged["total"] == 2

    def test_merge_rejects_conflicting_histogram_bounds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", bounds=(1.0,))
        b.histogram("h", bounds=(2.0,)).observe(1.0)
        with pytest.raises(ValueError, match="already declared"):
            a.merge(b)

    def test_to_text_mentions_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("calls").inc(7)
        registry.histogram("lat", bounds=(1.0,)).observe(0.5)
        text = registry.to_text()
        assert "calls: counter value=7" in text
        assert "lat: histogram total=1" in text
