"""Unit tests for the run profiler (repro.obs.profile)."""

import pytest

from repro.llm.service import CallRecord
from repro.obs import ProfileRow, RunProfile, profile_records
from repro.resilience.policy import (
    OUTCOME_CACHED,
    OUTCOME_FALLBACK,
    OUTCOME_GAVE_UP,
    OUTCOME_SERVED,
)


def record(**overrides) -> CallRecord:
    payload = dict(
        prompt="p",
        response_text="r",
        prompt_tokens=10,
        completion_tokens=5,
        cost=0.01,
        cached=False,
        skill="s",
        purpose="match",
        latency_seconds=1.5,
        retries=0,
        outcome=OUTCOME_SERVED,
        provenance="provider",
    )
    payload.update(overrides)
    return CallRecord(**payload)


class TestProfileRecords:
    def test_provider_and_cache_split(self):
        rows = [
            record(),
            record(cached=True, cost=0.0, outcome=OUTCOME_CACHED,
                   provenance="cache-exact"),
            record(cached=True, cost=0.0, outcome=OUTCOME_CACHED,
                   provenance="cache-near"),
            record(cached=True, cost=0.0, outcome=OUTCOME_CACHED,
                   provenance="distilled"),
        ]
        row = profile_records("m", rows, quarantined=2)
        assert row.calls == 4
        assert row.provider_calls == 1
        assert (row.cache_exact, row.cache_near, row.distilled) == (1, 1, 1)
        assert row.cached_calls == 3
        assert row.quarantined == 2
        assert row.cost == pytest.approx(0.01)

    def test_provider_and_distilled_time_split(self):
        rows = [
            record(latency_seconds=2.0),
            record(cached=True, cost=0.0, outcome=OUTCOME_CACHED,
                   provenance="cache-exact", latency_seconds=0.0),
            record(cached=True, cost=0.0, outcome=OUTCOME_CACHED,
                   provenance="distilled", latency_seconds=0.25),
        ]
        row = profile_records("m", rows)
        assert row.provider_seconds == pytest.approx(2.0)
        assert row.distilled_seconds == pytest.approx(0.25)
        # The overall latency column still counts every record.
        assert row.latency_seconds == pytest.approx(2.25)

    def test_failures_fallbacks_retries(self):
        rows = [
            record(retries=2),
            record(outcome=OUTCOME_FALLBACK),
            record(outcome=OUTCOME_GAVE_UP, cost=0.0, retries=3),
        ]
        row = profile_records("m", rows)
        assert row.retries == 5
        assert row.fallbacks == 1
        assert row.failures == 1
        # fallback answers still count as provider calls; failures do not
        assert row.provider_calls == 2

    def test_empty_slice(self):
        row = profile_records("m", [])
        assert row == ProfileRow(module="m")


class TestRunProfile:
    def make(self) -> RunProfile:
        return RunProfile(
            rows=[
                profile_records("a", [record(), record()]),
                profile_records(
                    "b",
                    [record(cached=True, cost=0.0, outcome=OUTCOME_CACHED,
                            provenance="cache-exact", latency_seconds=0.0)],
                ),
            ]
        )

    def test_row_lookup(self):
        profile = self.make()
        assert profile.row("a").calls == 2
        assert profile.row("nope") is None

    def test_totals_sum_columns(self):
        totals = self.make().totals()
        assert totals.module == "TOTAL"
        assert totals.calls == 3
        assert totals.provider_calls == 2
        assert totals.cache_exact == 1
        assert totals.cost == pytest.approx(0.02)

    def test_to_table_contains_rows_and_totals(self):
        table = self.make().to_table()
        assert "a" in table and "b" in table and "TOTAL" in table
        header = table.splitlines()[0]
        assert "provider" in header and "quarantined" in header

    def test_to_dict_rounds_cost_fields(self):
        payload = self.make().to_dict()
        assert payload[0]["module"] == "a"
        assert payload[0]["cost"] == round(0.02, 10)

    def test_reconciles_with_matching_snapshot(self):
        from repro.core.optimizer.cost import CostSnapshot

        profile = self.make()
        totals = profile.totals()
        snapshot = CostSnapshot(
            served_calls=totals.provider_calls,
            cached_calls=totals.cached_calls,
            cost=totals.cost,
            latency_seconds=totals.latency_seconds,
            retries=totals.retries,
            fallback_calls=totals.fallbacks,
            failed_calls=totals.failures,
            near_hits=totals.cache_near,
            distilled_calls=totals.distilled,
            provider_seconds=totals.provider_seconds,
            distilled_seconds=totals.distilled_seconds,
        )
        assert profile.reconciles_with(snapshot)
        off_by_one = CostSnapshot(
            served_calls=totals.provider_calls + 1,
            cached_calls=totals.cached_calls,
            cost=totals.cost,
            latency_seconds=totals.latency_seconds,
        )
        assert not profile.reconciles_with(off_by_one)
