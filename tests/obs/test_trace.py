"""Unit tests for the structured tracer (repro.obs.trace)."""

import pytest

from repro.obs import (
    NULL_SPAN,
    Span,
    Tracer,
    provenance_counts,
    span_tree_problems,
    walk_spans,
)
from repro.resilience.clock import VirtualClock


def build_tree() -> Span:
    root = Span("run", "run", start=0.0, end=10.0)
    phase = Span("op", "phase", start=0.0, end=10.0)
    module = Span("mod", "module", start=0.0, end=10.0)
    call = Span(
        "llm[x]", "llm_call", start=1.0, end=3.0, attributes={"provenance": "provider"}
    )
    module.children.append(call)
    phase.children.append(module)
    root.children.append(phase)
    return root


class TestSpan:
    def test_duration(self):
        assert Span("s", "module", start=2.0, end=5.5).duration == 3.5

    def test_set_chains_and_records(self):
        span = Span("s", "module")
        assert span.set("k", 1) is span
        assert span.attributes == {"k": 1}

    def test_to_dict_sorts_attributes_and_rounds_floats(self):
        span = Span("s", "llm_call", start=0.1234567891234, end=1.0)
        span.set("cost", 0.12345678901234567)
        span.set("a", 1)
        payload = span.to_dict()
        assert list(payload["attributes"]) == ["a", "cost"]
        assert payload["start"] == round(0.1234567891234, 9)
        assert payload["attributes"]["cost"] == round(0.12345678901234567, 10)


class TestWalkAndValidate:
    def test_walk_yields_parent_links_depth_first(self):
        root = build_tree()
        pairs = [(s.name, p.name if p else None) for s, p in walk_spans(root)]
        assert pairs == [
            ("run", None),
            ("op", "run"),
            ("mod", "op"),
            ("llm[x]", "mod"),
        ]

    def test_valid_tree_has_no_problems(self):
        assert span_tree_problems(build_tree()) == []

    def test_unknown_kind_reported(self):
        root = build_tree()
        root.children[0].kind = "banana"
        assert any("unknown kind" in p for p in span_tree_problems(root))

    def test_inverted_interval_reported(self):
        root = build_tree()
        root.children[0].children[0].children[0].end = 0.5
        assert any("precedes start" in p for p in span_tree_problems(root))

    def test_escaping_child_reported(self):
        root = build_tree()
        root.children[0].children[0].children[0].end = 99.0
        assert any("escapes parent" in p for p in span_tree_problems(root))

    def test_provenance_counts(self):
        root = build_tree()
        root.children[0].children[0].children.append(
            Span("llm[y]", "llm_call", start=3.0, end=4.0,
                 attributes={"provenance": "cache-exact"})
        )
        assert provenance_counts(root) == {"cache-exact": 1, "provider": 1}


class TestTracer:
    def test_disabled_tracer_is_null(self):
        tracer = Tracer(enabled=False)
        with tracer.span("run", "run") as span:
            assert span is NULL_SPAN
            assert span.set("k", 1) is NULL_SPAN
        assert tracer.add_span("x", "llm_call") is NULL_SPAN
        assert tracer.roots == []

    def test_span_nesting_and_clock(self):
        clock = VirtualClock()
        tracer = Tracer()
        with tracer.span("run", "run", clock=clock):
            clock.advance(1.0)
            with tracer.span("op", "phase", clock=clock) as phase:
                clock.advance(2.0)
                assert tracer.current() is phase
            clock.advance(0.5)
        (root,) = tracer.roots
        assert (root.start, root.end) == (0.0, 3.5)
        (phase,) = root.children
        assert (phase.start, phase.end) == (1.0, 3.0)
        assert span_tree_problems(root) == []

    def test_add_span_lands_under_open_span(self):
        tracer = Tracer()
        with tracer.span("run", "run"):
            tracer.add_span("leaf", "llm_call", start=0.0, end=0.0, provenance="x")
        (root,) = tracer.roots
        assert [c.name for c in root.children] == ["leaf"]

    def test_clear_drops_roots(self):
        tracer = Tracer()
        with tracer.span("run", "run"):
            pass
        tracer.clear()
        assert tracer.roots == []

    def test_merge_is_order_independent(self):
        def make(names):
            tracer = Tracer()
            for index, name in enumerate(names):
                tracer.add_span(name, "run", start=float(index))
            return tracer

        left_first = make(["a", "b"])
        left_first.merge(make(["c"]))
        right_first = make(["c"])
        right_first.merge(make(["a", "b"]))
        assert left_first.to_records() == right_first.to_records()

    def test_to_records_path_ids(self):
        tracer = Tracer()
        with tracer.span("run", "run"):
            tracer.add_span("a", "phase")
            tracer.add_span("b", "phase")
        records = tracer.to_records()
        assert [(r["span_id"], r["parent_id"]) for r in records] == [
            ("0", None),
            ("0.0", "0"),
            ("0.1", "0"),
        ]

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("run", "run"):
            with tracer.span("op", "phase"):
                tracer.add_span("leaf", "llm_call", cost=0.5, provenance="provider")
        path = tmp_path / "trace.jsonl"
        written = tracer.export_jsonl(path)
        assert written == 3
        rebuilt = Tracer()
        rebuilt.roots = Tracer.load_jsonl(path)
        assert rebuilt.to_records() == tracer.to_records()

    def test_from_records_rejects_orphans(self):
        with pytest.raises(ValueError, match="before its parent"):
            Tracer.from_records(
                [
                    {
                        "name": "x",
                        "kind": "phase",
                        "start": 0.0,
                        "end": 0.0,
                        "span_id": "0.1",
                        "parent_id": "0",
                    }
                ]
            )
