"""Property tests for the observability layer (ISSUE 4, satellite 2).

Three invariants, each pinned over generated inputs:

- span trees built through the Tracer API are always well-formed (single
  root per tree, no orphans, child intervals nested in parents) and
  survive a JSONL-shaped record round-trip;
- histogram bucket counts always sum to the observation count, for any
  bucket boundaries and any observations;
- merging per-worker collectors (metrics registries and tracers) is
  order-independent.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    MetricsRegistry,
    Span,
    Tracer,
    span_tree_problems,
    walk_spans,
)
from repro.resilience.clock import VirtualClock

# -- generators -----------------------------------------------------------------

span_kind = st.sampled_from(["phase", "module", "chunk", "llm_call"])
advance = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)

# A tree program: a list of (depth, kind, advance) actions replayed through
# the Tracer.  Depth is clamped to the current stack, so any list denotes a
# valid sequence of nested spans.
tree_programs = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3), span_kind, advance),
    min_size=1,
    max_size=25,
)


def build_tree(program) -> Tracer:
    """Replay a generated program as one run-rooted span tree."""
    tracer = Tracer()
    clock = VirtualClock()
    stack = []

    def close_to(depth: int) -> None:
        while len(stack) > depth:
            stack.pop().__exit__(None, None, None)

    root = tracer.span("run", "run", clock=clock)
    root.__enter__()
    try:
        for index, (depth, kind, step) in enumerate(program):
            close_to(min(depth, len(stack)))
            clock.advance(step)
            manager = tracer.span(f"s{index}", kind, clock=clock)
            manager.__enter__()
            stack.append(manager)
        close_to(0)
    finally:
        root.__exit__(None, None, None)
    return tracer


class TestSpanTreeWellFormed:
    @settings(max_examples=60, deadline=None)
    @given(tree_programs)
    def test_tracer_trees_are_well_formed(self, program):
        tracer = build_tree(program)
        assert len(tracer.roots) == 1  # single root
        assert span_tree_problems(tracer.roots[0]) == []

    @settings(max_examples=60, deadline=None)
    @given(tree_programs)
    def test_no_orphans_and_every_span_reachable(self, program):
        tracer = build_tree(program)
        reachable = sum(1 for _ in walk_spans(tracer.roots))
        assert reachable == len(program) + 1  # every opened span, once

    @settings(max_examples=60, deadline=None)
    @given(tree_programs)
    def test_record_roundtrip_preserves_tree(self, program):
        tracer = build_tree(program)
        records = tracer.to_records()
        rebuilt = Tracer()
        rebuilt.roots = Tracer.from_records(records)
        assert rebuilt.to_records() == records


class TestHistogramBuckets:
    @settings(max_examples=100, deadline=None)
    @given(
        bounds=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=10,
            unique=True,
        ),
        values=st.lists(
            st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
            max_size=100,
        ),
    )
    def test_bucket_counts_sum_to_observation_count(self, bounds, values):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", bounds=sorted(bounds))
        for value in values:
            histogram.observe(value)
        assert sum(histogram.counts) == histogram.total == len(values)


# One per-worker collector's worth of events.  Values are quarter-integers:
# exactly representable in binary, so float sums are exact and the merge
# commutativity below is bitwise (the engine itself never relies on float
# commutativity — per-worker results merge in deterministic chunk order).
def quarters(lo: int, hi: int):
    return st.integers(min_value=lo, max_value=hi).map(lambda n: n / 4.0)


metric_events = st.lists(
    st.one_of(
        st.tuples(st.just("counter"), st.sampled_from(["a", "b", "c"]), quarters(0, 400)),
        st.tuples(st.just("gauge"), st.sampled_from(["g1", "g2"]), quarters(-200, 200)),
        st.tuples(st.just("histogram"), st.sampled_from(["h"]), quarters(0, 400)),
    ),
    max_size=30,
)


def apply_events(registry: MetricsRegistry, events) -> None:
    for kind, name, value in events:
        if kind == "counter":
            registry.counter(name).inc(value)
        elif kind == "gauge":
            registry.gauge(name).set(value)
        else:
            registry.histogram(name, bounds=(1.0, 10.0, 100.0)).observe(value)


class TestMergeOrderIndependence:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(metric_events, min_size=2, max_size=4))
    def test_registry_merge_any_order(self, worker_events):
        workers = []
        for events in worker_events:
            registry = MetricsRegistry()
            apply_events(registry, events)
            workers.append(registry)

        forward, backward = MetricsRegistry(), MetricsRegistry()
        for registry in workers:
            forward.merge(registry)
        for registry in reversed(workers):
            backward.merge(registry)
        assert forward.as_dict() == backward.as_dict()

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.lists(
                st.tuples(advance, span_kind),
                min_size=1,
                max_size=5,
            ),
            min_size=2,
            max_size=4,
        )
    )
    def test_tracer_merge_any_order(self, worker_spans):
        def collector(spans) -> Tracer:
            tracer = Tracer()
            for index, (start, kind) in enumerate(spans):
                tracer.add_span(f"s{index}", kind, start=start, end=start + 1.0)
            return tracer

        def merged(order) -> list:
            target = Tracer()
            for spans in order:
                target.merge(collector(spans))
            return target.to_records()

        assert merged(worker_spans) == merged(list(reversed(worker_spans)))
