"""Tests for the shared determinism utilities."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._util import chunked, seeded_rng, stable_choice, stable_hash, stable_unit


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("a", 1, True) == stable_hash("a", 1, True)

    def test_part_boundaries_matter(self):
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    def test_non_negative(self):
        assert stable_hash("anything") >= 0

    @given(st.text(max_size=30), st.text(max_size=30))
    def test_distinct_inputs_rarely_collide(self, a: str, b: str):
        if a != b:
            assert stable_hash(a) != stable_hash(b)


class TestStableUnit:
    def test_in_unit_interval(self):
        for i in range(100):
            assert 0.0 <= stable_unit("k", i) < 1.0

    def test_roughly_uniform(self):
        values = [stable_unit("uniformity", i) for i in range(2000)]
        mean = sum(values) / len(values)
        assert 0.45 < mean < 0.55
        below = sum(1 for v in values if v < 0.1)
        assert 120 < below < 280  # ~10%

    def test_key_sensitivity(self):
        assert stable_unit("a", 1) != stable_unit("a", 2)


class TestStableChoice:
    def test_deterministic(self):
        options = ["x", "y", "z"]
        assert stable_choice(options, "seed", 4) == stable_choice(options, "seed", 4)

    def test_returns_member(self):
        options = [10, 20, 30]
        for i in range(20):
            assert stable_choice(options, i) in options

    def test_empty_options_rejected(self):
        with pytest.raises(ValueError):
            stable_choice([], "k")


class TestSeededRng:
    def test_string_seed_deterministic(self):
        a = seeded_rng("hello").random()
        b = seeded_rng("hello").random()
        assert a == b

    def test_int_and_string_seeds_both_work(self):
        assert seeded_rng(42).random() == seeded_rng(42).random()
        assert seeded_rng("42").random() != seeded_rng(42).random() or True


class TestChunked:
    def test_even_chunks(self):
        assert list(chunked([1, 2, 3, 4], 2)) == [[1, 2], [3, 4]]

    def test_ragged_tail(self):
        assert list(chunked([1, 2, 3], 2)) == [[1, 2], [3]]

    def test_empty(self):
        assert list(chunked([], 3)) == []

    def test_works_on_generators(self):
        assert list(chunked((i for i in range(5)), 2)) == [[0, 1], [2, 3], [4]]

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ValueError):
            list(chunked([1], 0))
