"""Property-based checkpoint laws (hypothesis).

The crash matrix enumerates boundaries; these properties quantify over the
whole prefix space instead:

- ``resume ∘ crash(prefix_k) ≡ full run`` for *every* prefix ``k`` — from
  ``k = 0`` (nothing but the header survived) to ``k = n`` (the run
  completed and the resume replays everything), including prefixes cut at
  arbitrary *byte* offsets, the way a real crash tears files.
- A torn mid-record tail is detected, truncated and counted — never an
  exception, never silent corruption.
- The journal and the value codec round-trip arbitrary JSON-shaped data.

Pipeline-driving properties reuse one small ER run (module-cached
baseline), so each hypothesis example costs two sub-second runs.
"""

from __future__ import annotations

import tempfile
from functools import lru_cache
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.runtime.checkpoint import (
    CheckpointJournal,
    RunCheckpoint,
    decode_value,
    encode_value,
)
from repro.core.runtime.system import LinguaManga
from repro.core.templates.library import get_template
from repro.datasets.entity_resolution import generate_er_dataset
from repro.llm.faults import CrashInjected, CrashPoint
from repro.tasks.entity_resolution import pairs_as_inputs, pick_examples


@lru_cache(maxsize=1)
def _dataset():
    return generate_er_dataset("beer", seed=7, n_entities=60)


def _run(checkpoint=None, workers=2):
    system = LinguaManga()
    pipeline = get_template("entity_resolution").instantiate(
        examples=pick_examples(_dataset().train, 4)
    )
    return system.run(
        pipeline,
        {"pairs": pairs_as_inputs(_dataset().test)},
        workers=workers,
        chunk_size=2,  # several chunks per operator: a rich prefix space
        checkpoint=checkpoint,
    )


@lru_cache(maxsize=1)
def _baseline() -> str:
    return _run().canonical_json()


@lru_cache(maxsize=1)
def _boundary_events() -> list[tuple[str, int]]:
    """Every (boundary, hit) pair one checkpointed run announces, in order."""
    probe = CrashPoint("__probe__")
    with tempfile.TemporaryDirectory() as scratch:
        _run(checkpoint=RunCheckpoint(Path(scratch) / "run.wal", crash=probe))
    return [
        (boundary, hit)
        for boundary, count in sorted(probe.seen.items())
        for hit in range(1, count + 1)
    ]


@lru_cache(maxsize=1)
def _completed_wal() -> bytes:
    """The journal bytes of one run that ran to completion."""
    with tempfile.TemporaryDirectory() as scratch:
        wal = Path(scratch) / "run.wal"
        _run(checkpoint=RunCheckpoint(wal))
        return wal.read_bytes()


class TestResumeIsIdentity:
    @settings(deadline=None, max_examples=25)
    @given(data=st.data())
    def test_resume_from_any_boundary_prefix_matches_full_run(self, data):
        events = _boundary_events()
        # index == len(events) is the k = n case: nothing was killed and
        # the resume replays a complete journal.
        index = data.draw(st.integers(0, len(events)), label="prefix")
        with tempfile.TemporaryDirectory() as scratch:
            wal = Path(scratch) / "run.wal"
            if index == len(events):
                _run(checkpoint=RunCheckpoint(wal))
            else:
                boundary, hit = events[index]
                crash = CrashPoint(boundary, hits=hit)
                with pytest.raises(CrashInjected):
                    _run(checkpoint=RunCheckpoint(wal, crash=crash))
            resumed = _run(checkpoint=RunCheckpoint(wal))
            assert resumed.canonical_json() == _baseline()

    @settings(deadline=None, max_examples=25)
    @given(data=st.data())
    def test_resume_from_any_byte_prefix_matches_full_run(self, data):
        # Stronger than boundary prefixes: a crash can tear the journal at
        # any byte, including mid-header (k = 0: resume starts from
        # scratch) and mid-record (the torn tail is truncated away).
        blob = _completed_wal()
        cut = data.draw(st.integers(0, len(blob)), label="cut")
        with tempfile.TemporaryDirectory() as scratch:
            wal = Path(scratch) / "run.wal"
            wal.write_bytes(blob[:cut])
            resumed = _run(checkpoint=RunCheckpoint(wal))
            assert resumed.canonical_json() == _baseline()


class TestTornTail:
    @settings(deadline=None, max_examples=25)
    @given(
        junk=st.binary(min_size=1, max_size=200)
        .map(lambda raw: raw.replace(b"\n", b""))
        .filter(bool)
    )
    def test_torn_mid_record_tail_is_discarded_not_fatal(self, junk):
        blob = _completed_wal()
        with tempfile.TemporaryDirectory() as scratch:
            wal = Path(scratch) / "run.wal"
            wal.write_bytes(blob + junk)  # no trailing newline: torn mid-write
            journal = CheckpointJournal(wal)
            journal.load()
            assert journal.torn_bytes == len(junk)
            assert wal.read_bytes() == blob  # physically truncated back
            resumed = _run(checkpoint=RunCheckpoint(wal))
            assert resumed.canonical_json() == _baseline()


_JSON_ROWS = st.lists(
    st.dictionaries(
        st.text(max_size=10),
        st.none() | st.booleans() | st.integers() | st.text(max_size=20),
        max_size=4,
    ),
    max_size=8,
)

_KEYS = st.text(max_size=8) | st.integers() | st.tuples(st.integers(), st.text(max_size=4))
_VALUES = st.recursive(
    st.none()
    | st.booleans()
    | st.integers()
    | st.floats(allow_nan=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.tuples(children)
    | st.tuples(children, children)
    | st.dictionaries(_KEYS, children, max_size=4),
    max_leaves=20,
)


class TestRoundTrips:
    @settings(deadline=None, max_examples=50)
    @given(rows=_JSON_ROWS)
    def test_journal_round_trips_arbitrary_records(self, rows):
        with tempfile.TemporaryDirectory() as scratch:
            journal = CheckpointJournal(Path(scratch) / "j.wal", fsync_every=3)
            for row in rows:
                journal.append(row)
            journal.close()
            reloaded = CheckpointJournal(journal.path)
            assert reloaded.load() == rows
            assert reloaded.torn_bytes == 0

    @settings(deadline=None, max_examples=100)
    @given(value=_VALUES)
    def test_value_codec_round_trips(self, value):
        assert decode_value(encode_value(value)) == value
