"""Unit tests for the write-ahead run journal (repro.core.runtime.checkpoint).

The crash matrix (test_crash_resume.py) proves the end-to-end contract;
this file pins the parts in isolation: the value codec, torn-tail
recovery, header validation, fingerprint stability and the cache rewind.
"""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro.core.runtime.checkpoint import (
    JOURNAL_FORMAT_VERSION,
    CheckpointError,
    CheckpointJournal,
    CheckpointMismatchError,
    ReplayedValue,
    RunCheckpoint,
    UnserializableValueError,
    decode_value,
    digest_inputs,
    encode_value,
    fingerprint_payload,
)
from repro.core.templates.library import get_template
from repro.datasets.entity_resolution import generate_er_dataset
from repro.llm.providers import LLMResponse, SimulatedProvider
from repro.llm.service import LLMService
from repro.tasks.entity_resolution import pairs_as_inputs, pick_examples


@pytest.fixture(scope="module")
def er_dataset():
    return generate_er_dataset("beer", seed=7, n_entities=30)


def _er_plan(system, dataset):
    pipeline = get_template("entity_resolution").instantiate(
        examples=pick_examples(dataset.train, 4)
    )
    return system.compile(pipeline), {"pairs": pairs_as_inputs(dataset.test)}


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            7,
            3.25,
            "text",
            [1, "two", None],
            ("a", 1),
            {"k": [1, 2]},
            {("left", "right"): True, 3: "x"},
            [{"nested": ({"deep": (1,)},)}],
            {"__ckpt__": "looks-like-a-tag"},
        ],
    )
    def test_round_trips_to_equal_value(self, value):
        encoded = encode_value(value)
        json.dumps(encoded)  # must be plain JSON
        assert decode_value(encoded) == value
        restored = decode_value(encoded)
        assert type(restored) is type(value)

    def test_tuple_and_list_stay_distinct(self):
        assert decode_value(encode_value((1, 2))) == (1, 2)
        assert decode_value(encode_value([1, 2])) == [1, 2]

    @pytest.mark.parametrize("value", [{1, 2}, object(), b"bytes", [object()]])
    def test_unserializable_raises(self, value):
        with pytest.raises(UnserializableValueError):
            encode_value(value)

    def test_replayed_value_repr_equality(self):
        stand_in = ReplayedValue("QuarantinedRecord(pair=...)")
        assert repr(stand_in) == "QuarantinedRecord(pair=...)"
        assert stand_in == ReplayedValue("QuarantinedRecord(pair=...)")
        assert stand_in != ReplayedValue("other")
        assert hash(stand_in) == hash(ReplayedValue("QuarantinedRecord(pair=...)"))


class TestCheckpointJournal:
    def test_append_load_round_trip(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "run.wal")
        rows = [{"type": "header", "n": 0}, {"type": "chunk", "n": 1}]
        for row in rows:
            journal.append(row)
        journal.close()
        assert CheckpointJournal(journal.path).load() == rows

    def test_unterminated_tail_is_truncated_not_raised(self, tmp_path):
        path = tmp_path / "run.wal"
        path.write_text('{"type":"header"}\n{"type":"chunk","half', encoding="utf-8")
        journal = CheckpointJournal(path)
        assert journal.load() == [{"type": "header"}]
        assert journal.torn_bytes == len('{"type":"chunk","half')
        # The torn bytes are physically gone: a second load is clean.
        assert CheckpointJournal(path).load() == [{"type": "header"}]
        assert CheckpointJournal(path).torn_bytes == 0

    def test_corrupt_line_discards_it_and_everything_after(self, tmp_path):
        path = tmp_path / "run.wal"
        path.write_text(
            '{"a":1}\nnot json at all\n{"b":2}\n',
            encoding="utf-8",
        )
        journal = CheckpointJournal(path)
        assert journal.load() == [{"a": 1}]
        assert journal.torn_bytes > 0

    def test_non_object_line_is_a_torn_tail(self, tmp_path):
        path = tmp_path / "run.wal"
        path.write_text('{"a":1}\n[1,2,3]\n', encoding="utf-8")
        assert CheckpointJournal(path).load() == [{"a": 1}]

    def test_missing_file_loads_empty(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "absent.wal")
        assert journal.load() == []
        assert journal.torn_bytes == 0

    def test_delete_is_idempotent(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "run.wal")
        journal.append({"x": 1})
        journal.delete()
        assert not journal.path.exists()
        journal.delete()  # no file: still fine

    def test_appends_are_readable_before_close(self, tmp_path):
        # flush-on-append means a concurrent reader (or a crash) sees
        # every acknowledged record even while the handle stays open.
        journal = CheckpointJournal(tmp_path / "run.wal", fsync_every=100)
        for n in range(5):
            journal.append({"n": n})
        assert len(CheckpointJournal(journal.path).load()) == 5
        journal.close()


class TestHeaderValidation:
    def _begin(self, path, fingerprint, resume=True, service=None):
        checkpoint = RunCheckpoint(path, resume=resume)
        checkpoint.begin(fingerprint, service or LLMService(SimulatedProvider()))
        return checkpoint

    def test_fresh_journal_writes_header(self, tmp_path):
        checkpoint = self._begin(tmp_path / "run.wal", "abc")
        checkpoint.close()
        header = CheckpointJournal(checkpoint.path).load()[0]
        assert header["type"] == "header"
        assert header["format"] == JOURNAL_FORMAT_VERSION
        assert header["fingerprint"] == "abc"
        assert not checkpoint.stats.resumed

    def test_matching_fingerprint_resumes(self, tmp_path):
        self._begin(tmp_path / "run.wal", "abc").close()
        checkpoint = self._begin(tmp_path / "run.wal", "abc")
        assert checkpoint.stats.resumed
        checkpoint.close()

    def test_fingerprint_mismatch_refuses(self, tmp_path):
        self._begin(tmp_path / "run.wal", "abc").close()
        with pytest.raises(CheckpointMismatchError, match="fingerprint"):
            self._begin(tmp_path / "run.wal", "different")

    def test_resume_false_discards_the_journal(self, tmp_path):
        self._begin(tmp_path / "run.wal", "abc").close()
        checkpoint = self._begin(tmp_path / "run.wal", "different", resume=False)
        assert not checkpoint.stats.resumed  # fresh header, no replay
        checkpoint.close()

    def test_wrong_format_version_refuses(self, tmp_path):
        path = tmp_path / "run.wal"
        path.write_text(
            json.dumps({"type": "header", "format": 999, "fingerprint": "abc"}) + "\n"
        )
        with pytest.raises(CheckpointError, match="format"):
            self._begin(path, "abc")

    def test_first_record_must_be_a_header(self, tmp_path):
        path = tmp_path / "run.wal"
        path.write_text(json.dumps({"type": "chunk"}) + "\n")
        with pytest.raises(CheckpointError, match="header"):
            self._begin(path, "abc")

    def test_clock_divergence_refuses(self, tmp_path):
        self._begin(tmp_path / "run.wal", "abc").close()
        service = LLMService(SimulatedProvider())
        service.clock.advance(1.0)
        with pytest.raises(CheckpointMismatchError, match="clock"):
            self._begin(tmp_path / "run.wal", "abc", service=service)

    def test_a_checkpoint_drives_exactly_one_execute(self, tmp_path):
        checkpoint = self._begin(tmp_path / "run.wal", "abc")
        with pytest.raises(CheckpointError, match="exactly one"):
            checkpoint.begin("abc", LLMService(SimulatedProvider()))
        checkpoint.close()


class TestOperatorCommit:
    def _service(self):
        return LLMService(SimulatedProvider())

    def test_name_mismatch_refuses_replay(self, tmp_path):
        service = self._service()
        checkpoint = RunCheckpoint(tmp_path / "run.wal")
        checkpoint.begin("abc", service)
        checkpoint.commit_operator(
            0,
            "load",
            records=[],
            clock_end=0.5,
            outputs=[1, 2],
            quarantine=[],
            stats_delta={},
            tree_degraded=0,
            chunk_summaries=None,
            service=service,
        )
        checkpoint.close()
        resume = RunCheckpoint(tmp_path / "run.wal")
        resume.begin("abc", self._service())
        with pytest.raises(CheckpointMismatchError, match="load"):
            resume.operator_replay(0, "save")
        resume.close()

    def test_unserializable_outputs_commit_as_non_replayable(self, tmp_path):
        service = self._service()
        checkpoint = RunCheckpoint(tmp_path / "run.wal")
        checkpoint.begin("abc", service)
        checkpoint.commit_operator(
            0,
            "load",
            records=[],
            clock_end=0.5,
            outputs={1, 2},  # sets do not round-trip through JSON
            quarantine=[],
            stats_delta={},
            tree_degraded=0,
            chunk_summaries=None,
            service=service,
        )
        checkpoint.close()
        resume = RunCheckpoint(tmp_path / "run.wal")
        resume.begin("abc", self._service())
        assert resume.operator_replay(0, "load") is None  # re-execute live
        resume.close()

    def test_chunk_geometry_mismatch_refuses(self, tmp_path):
        service = self._service()
        checkpoint = RunCheckpoint(tmp_path / "run.wal")
        checkpoint.begin("abc", service)
        context = checkpoint.operator_context(0, "match")
        scope = SimpleNamespace(records=[], elapsed=0.25)
        outcome = SimpleNamespace(outputs=[True, False], quarantine=[], degraded=0)
        context.record_chunk(1, [1, 2], scope, outcome)
        checkpoint.close()

        resume = RunCheckpoint(tmp_path / "run.wal")
        resume.begin("abc", self._service())
        context = resume.operator_context(0, "match")
        with pytest.raises(CheckpointMismatchError, match="chunk"):
            context.replayable_chunks([2])  # journal has chunk index 1
        with pytest.raises(CheckpointMismatchError, match="record"):
            context.replayable_chunks([2, 3])  # chunk 1 covered 2 records
        replays = context.replayable_chunks([2, 2])
        assert replays[1].outputs == [True, False]
        assert replays[1].elapsed == 0.25
        resume.close()


class TestFingerprint:
    def test_payload_is_stable_under_key_order(self):
        assert fingerprint_payload({"a": 1, "b": 2}) == fingerprint_payload(
            {"b": 2, "a": 1}
        )
        assert fingerprint_payload({"a": 1}) != fingerprint_payload({"a": 2})

    def test_inputs_digest_is_order_insensitive(self):
        assert digest_inputs({"a": [1], "b": [2]}) == digest_inputs(
            {"b": [2], "a": [1]}
        )
        assert digest_inputs({"a": [1]}) != digest_inputs({"a": [2]})
        assert digest_inputs(None) == digest_inputs({})

    def test_plan_fingerprint_pins_inputs_and_chunking(self, system, er_dataset):
        plan, inputs = _er_plan(system, er_dataset)
        base = plan.fingerprint(inputs)
        assert base == plan.fingerprint(dict(inputs))  # deterministic
        assert base != plan.fingerprint({"pairs": inputs["pairs"][:-1]})
        assert base != plan.fingerprint(inputs, chunk_size=3)

    def test_plan_fingerprint_pins_the_pipeline(self, system, er_dataset):
        plan_a, inputs = _er_plan(system, er_dataset)
        pipeline_b = get_template("entity_resolution").instantiate(
            examples=pick_examples(er_dataset.train, 2)
        )
        plan_b = system.compile(pipeline_b)
        assert plan_a.fingerprint(inputs) != plan_b.fingerprint(inputs)

    def test_recompiled_plan_fingerprint_is_reproducible(self, system, er_dataset):
        plan_a, inputs = _er_plan(system, er_dataset)
        plan_b, _ = _er_plan(system, er_dataset)
        assert plan_a.fingerprint(inputs) == plan_b.fingerprint(inputs)


class TestCacheRewind:
    def _response(self, text):
        return LLMResponse(text=text, prompt_tokens=1, completion_tokens=1, model="sim")

    def test_restore_state_prunes_to_recorded_digests(self):
        from repro.llm.cache import CacheKey, PromptCache

        cache = PromptCache()
        early = CacheKey("sim", "v1", "prompt one", 64)
        cache.put(early, self._response("a"))
        cache.seal()
        exact, sealed = cache.state_digests()
        assert len(exact) == 1 and len(sealed) == 1

        # The crashed run appends more entries before dying...
        cache.put(CacheKey("sim", "v1", "prompt two", 64), self._response("b"))
        cache.put(CacheKey("sim", "v1", "prompt three", 64), self._response("c"))
        assert len(cache) == 3

        # ...and the resume rewinds to the recorded state.
        dropped = cache.restore_state(exact, sealed)
        assert dropped == 2
        assert len(cache) == 1
        assert cache.peek(early)
        assert cache.state_digests() == (exact, sealed)

    def test_state_digests_separate_exact_and_sealed_tiers(self):
        from repro.llm.cache import CacheKey, PromptCache

        cache = PromptCache()
        cache.put(CacheKey("sim", "v1", "sealed prompt", 64), self._response("a"))
        cache.seal()
        cache.put(CacheKey("sim", "v1", "live only", 64), self._response("b"))
        exact, sealed = cache.state_digests()
        assert len(exact) == 2
        assert len(sealed) == 1
        assert set(sealed) < set(exact)
