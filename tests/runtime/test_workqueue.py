"""Unit tests for the durable shard work-queue and its ledger."""

from __future__ import annotations

import pytest

from repro.core.runtime.checkpoint import (
    CheckpointError,
    CheckpointMismatchError,
    ReplayedValue,
    decode_value,
    encode_value,
)
from repro.core.runtime.workqueue import (
    PoisonInfo,
    ShardLedger,
    WorkQueue,
)
from repro.llm.faults import TriggerPoint
from repro.llm.service import LLMService
from repro.storage.spill import SpillStore


class _Scope:
    """Minimal stand-in for a CallScope in ledger writes."""

    def __init__(self, records=(), elapsed=0.0):
        self.records = list(records)
        self.elapsed = elapsed


class _Outcome:
    """Minimal stand-in for a ChunkOutcome in ledger writes."""

    def __init__(self, quarantine=(), degraded=0):
        self.quarantine = list(quarantine)
        self.degraded = degraded


def make_ledger(tmp_path, name="ledger.jsonl", resume=True, fingerprint="fp"):
    ledger = ShardLedger(tmp_path / name, resume=resume)
    ledger.begin(fingerprint, LLMService())
    return ledger


def make_queue(tmp_path, chunks, ledger=None, **kwargs):
    ledger = ledger or make_ledger(tmp_path)
    spill = SpillStore(
        tmp_path / "spill",
        budget_bytes=kwargs.pop("spill_budget_bytes", None),
        encode=encode_value,
        decode=decode_value,
        write_fault=kwargs.pop("spill_fault", None),
    )
    kwargs.setdefault("window", 8)
    return WorkQueue(iter(chunks), spill=spill, ledger=ledger, **kwargs), ledger


class TestShardLedger:
    def test_fresh_header_then_resume(self, tmp_path):
        ledger = make_ledger(tmp_path)
        ledger.close()
        again = ShardLedger(tmp_path / "ledger.jsonl")
        again.begin("fp", LLMService())
        assert again.stats.resumed
        again.close()

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        make_ledger(tmp_path).close()
        other = ShardLedger(tmp_path / "ledger.jsonl")
        with pytest.raises(CheckpointMismatchError):
            other.begin("different", LLMService())

    def test_resume_false_discards(self, tmp_path):
        make_ledger(tmp_path).close()
        fresh = ShardLedger(tmp_path / "ledger.jsonl", resume=False)
        fresh.begin("different", LLMService())  # no mismatch: file wiped
        assert not fresh.stats.resumed
        fresh.close()

    def test_begin_runs_once(self, tmp_path):
        ledger = make_ledger(tmp_path)
        with pytest.raises(CheckpointError):
            ledger.begin("fp", LLMService())

    def test_shard_round_trip(self, tmp_path):
        ledger = make_ledger(tmp_path)
        ledger.record_shard(
            0, 3, [("op", _Scope(elapsed=1.5), _Outcome())], [True, False, True]
        )
        ledger.close()
        again = ShardLedger(tmp_path / "ledger.jsonl")
        again.begin("fp", LLMService())
        assert again.has_shard(0)
        assert again.shard_n_records(0) == 3
        assert again.shard_replayable(0)
        replay = again.shard_replay(0)
        assert replay.outputs == [True, False, True]
        assert replay.ops[0].name == "op"
        assert replay.ops[0].elapsed == 1.5
        again.close()

    def test_unserializable_outputs_not_replayable(self, tmp_path):
        ledger = make_ledger(tmp_path)
        ledger.record_shard(0, 1, [("op", _Scope(), _Outcome())], [object()])
        ledger.close()
        again = ShardLedger(tmp_path / "ledger.jsonl")
        again.begin("fp", LLMService())
        assert again.has_shard(0)
        assert not again.shard_replayable(0)
        again.close()

    def test_fail_lines_carry_attempts(self, tmp_path):
        ledger = make_ledger(tmp_path)
        ledger.record_fail(2, 1, "op", "boom")
        ledger.record_fail(2, 2, "op", "boom")
        ledger.close()
        again = ShardLedger(tmp_path / "ledger.jsonl")
        again.begin("fp", LLMService())
        assert again.attempts(2) == 2
        assert again.last_fail(2) == ("op", "boom")
        again.close()

    def test_attempts_zero_once_shard_completes(self, tmp_path):
        ledger = make_ledger(tmp_path)
        ledger.record_fail(0, 1, "op", "boom")
        ledger.record_shard(0, 1, [("op", _Scope(), _Outcome())], [1])
        ledger.close()
        again = ShardLedger(tmp_path / "ledger.jsonl")
        again.begin("fp", LLMService())
        assert again.attempts(0) == 0
        again.close()

    def test_poison_round_trip(self, tmp_path):
        ledger = make_ledger(tmp_path)
        ledger.record_poison(
            PoisonInfo(
                index=1, n_records=2, attempts=3, op="op", error="bad",
                records=[{"k": 1}, {"k": 2}],
            )
        )
        ledger.close()
        again = ShardLedger(tmp_path / "ledger.jsonl")
        again.begin("fp", LLMService())
        info = again.poison(1)
        assert info is not None
        assert (info.n_records, info.attempts, info.op, info.error) == (
            2, 3, "op", "bad",
        )
        assert all(isinstance(r, ReplayedValue) for r in info.records)
        assert repr(info.records[0]) == repr({"k": 1})
        again.close()

    def test_torn_tail_truncated_and_counted(self, tmp_path):
        ledger = make_ledger(tmp_path)
        ledger.record_shard(0, 1, [("op", _Scope(), _Outcome())], [1])
        ledger.close()
        with open(tmp_path / "ledger.jsonl", "ab") as handle:
            handle.write(b'{"type": "shard", "index": 1, "n_re')
        again = ShardLedger(tmp_path / "ledger.jsonl")
        again.begin("fp", LLMService())
        assert again.stats.torn_bytes > 0
        assert again.has_shard(0)
        assert not again.has_shard(1)
        again.close()


class TestWorkQueueLifecycle:
    def test_claims_in_order_and_drains(self, tmp_path):
        queue, _ = make_queue(tmp_path, [[1, 2], [3, 4], [5]])
        seen = []
        while True:
            kind, lease = queue.next_task("w0")
            if kind == "done":
                break
            if kind == "retry":
                shard = queue.next_foldable()
                queue.mark_folded(shard.index)
                continue
            seen.append(lease.index)
            assert queue.complete(lease)
        assert seen == [0, 1, 2]
        assert queue.n_shards == 3

    def test_complete_is_token_fenced(self, tmp_path):
        queue, _ = make_queue(tmp_path, [[1]])
        kind, lease = queue.next_task("w0")
        assert kind == "lease"
        assert queue.release(lease)  # lease lost
        assert not queue.complete(lease)  # zombie completion rejected
        kind, fresh = queue.next_task("w0")
        assert fresh.token != lease.token
        assert queue.complete(fresh)

    def test_fold_order_enforced(self, tmp_path):
        queue, _ = make_queue(tmp_path, [[1], [2]])
        _, lease0 = queue.next_task("w0")
        _, lease1 = queue.next_task("w1")
        queue.complete(lease0)
        queue.complete(lease1)
        with pytest.raises(RuntimeError):
            queue.mark_folded(1)
        queue.mark_folded(0)
        queue.mark_folded(1)

    def test_source_growth_under_reused_ledger_rejected(self, tmp_path):
        ledger = make_ledger(tmp_path)
        ledger.record_fail(5, 1, "op", "boom")
        ledger.close()
        again = ShardLedger(tmp_path / "ledger.jsonl")
        again.begin("fp", LLMService())
        queue, _ = make_queue(tmp_path, [[1], [2]], ledger=again)
        _, lease = queue.next_task("w0")
        queue.complete(lease)
        queue.mark_folded(0)
        with pytest.raises(CheckpointMismatchError):
            while True:
                kind, lease = queue.next_task("w0")
                if kind == "lease":
                    queue.complete(lease)
                elif kind == "retry":
                    queue.mark_folded(queue.next_foldable().index)

    def test_shard_geometry_validated_on_resume(self, tmp_path):
        ledger = make_ledger(tmp_path)
        ledger.record_shard(0, 4, [("op", _Scope(), _Outcome())], [1])
        ledger.close()
        again = ShardLedger(tmp_path / "ledger.jsonl")
        again.begin("fp", LLMService())
        queue, _ = make_queue(tmp_path, [[1, 2]], ledger=again)
        with pytest.raises(CheckpointMismatchError):
            queue.next_task("w0")


class TestWorkQueueBackpressure:
    def test_window_caps_materialization(self, tmp_path):
        queue, _ = make_queue(
            tmp_path, [[i] for i in range(6)], window=2
        )
        _, lease0 = queue.next_task("w0")
        _, lease1 = queue.next_task("w1")
        assert queue._next_index == 2
        with queue._cond:
            assert not queue._materialize_locked()  # window full
        queue.complete(lease0)
        queue.mark_folded(0)
        with queue._cond:
            assert queue._materialize_locked()  # frontier advanced

    def test_spill_budget_blocks_non_frontier(self, tmp_path):
        big = [{"pad": "x" * 200}]
        queue, _ = make_queue(
            tmp_path, [list(big), list(big)], spill_budget_bytes=64
        )
        kind, lease0 = queue.next_task("w0")
        assert kind == "lease"  # frontier shard always materializes
        with queue._cond:
            assert not queue._materialize_locked()  # budget exhausted
        queue.complete(lease0)
        queue.mark_folded(0)  # executor's fold removes the spill file
        queue.spill.remove("0")
        with queue._cond:
            assert queue._materialize_locked()

    def test_spill_write_failure_retries_same_chunk(self, tmp_path):
        fault = TriggerPoint("spill:write", hits=1)
        queue, _ = make_queue(tmp_path, [[1, 2]], spill_fault=fault)
        kind, lease = queue.next_task("w0")
        assert kind == "lease"
        assert queue.spill.write_failures == 1
        # The chunk survived the failed write: same records, not dropped.
        assert queue.spill.get("0") == [1, 2]
        assert queue.complete(lease)


class TestWorkQueueFailure:
    def test_retry_backoff_then_poison(self, tmp_path):
        queue, _ = make_queue(tmp_path, [[1]], max_attempts=2)
        _, lease = queue.next_task("w0")
        verdict, attempts, delay = queue.fail(lease, "boom")
        assert (verdict, attempts) == ("retry", 1)
        assert delay > 0
        before = queue.clock.now
        kind, lease = queue.next_task("w0")  # advances the queue clock
        assert kind == "lease"
        assert lease.attempt == 2
        assert queue.clock.now >= before + delay
        verdict, attempts, _ = queue.fail(lease, "boom")
        assert (verdict, attempts) == ("poison", 2)
        assert queue.confirm_poison(lease)
        shard = queue.next_foldable()
        assert shard.status == "poisoned"
        queue.mark_folded(0)
        assert queue.next_task("w0") == ("done", None)
        assert queue.poisoned == 1
        assert queue.shard_failures == 2

    def test_backoff_is_jittered_per_shard(self, tmp_path):
        queue, _ = make_queue(tmp_path, [[1], [2]])
        _, lease0 = queue.next_task("w0")
        _, lease1 = queue.next_task("w1")
        _, _, delay0 = queue.fail(lease0, "boom")
        _, _, delay1 = queue.fail(lease1, "boom")
        assert delay0 != delay1  # keyed on the shard index
        # ... but deterministic: the same policy reproduces both.
        assert delay0 == queue.backoff.delay(0, key="0")
        assert delay1 == queue.backoff.delay(0, key="1")

    def test_release_requeues_without_attempt(self, tmp_path):
        queue, _ = make_queue(tmp_path, [[1]])
        _, lease = queue.next_task("w0")
        assert lease.attempt == 1
        assert queue.release(lease)
        _, again = queue.next_task("w0")
        assert again.attempt == 1  # lease losses never burn the budget
        assert queue.lease_expiries == 1

    def test_stale_fail_counts_for_nothing(self, tmp_path):
        queue, _ = make_queue(tmp_path, [[1]])
        _, lease = queue.next_task("w0")
        queue.release(lease)
        assert queue.fail(lease, "boom") == ("stale", 0, 0.0)
        _, again = queue.next_task("w0")
        assert again.attempt == 1

    def test_carried_budget_poisons_without_reexecution(self, tmp_path):
        ledger = make_ledger(tmp_path)
        ledger.record_fail(0, 1, "op", "boom")
        ledger.record_fail(0, 2, "op", "boom")
        ledger.close()
        again = ShardLedger(tmp_path / "ledger.jsonl")
        again.begin("fp", LLMService())
        queue, _ = make_queue(tmp_path, [[1]], ledger=again, max_attempts=2)
        kind, lease = queue.next_task("w0")
        assert kind == "poison"  # budget spent in a prior run
        assert queue.confirm_poison(lease)


class TestLeaseExpiry:
    def test_injected_expiry_rejects_holder_and_reclaims(self, tmp_path):
        fault = TriggerPoint("lease:granted", hits=1)
        queue, _ = make_queue(tmp_path, [[1]], lease_fault=fault)
        _, lease = queue.next_task("w0")
        assert not queue.heartbeat(lease)  # already expired at grant
        assert not queue.complete(lease)  # zombie result rejected
        kind, fresh = queue.next_task("w1")  # expiry sweep re-queues
        assert kind == "lease"
        assert fresh.token != lease.token
        assert fresh.attempt == 1  # expiry is a lease loss, not a failure
        assert queue.lease_expiries == 1
        assert queue.complete(fresh)

    def test_heartbeat_extends_valid_lease(self, tmp_path):
        queue, _ = make_queue(tmp_path, [[1]], lease_timeout=10.0)
        _, lease = queue.next_task("w0")
        with queue._cond:
            first_deadline = queue._shards[0].deadline
        queue.clock.advance(5.0)
        assert queue.heartbeat(lease)
        with queue._cond:
            assert queue._shards[0].deadline > first_deadline

    def test_abort_wakes_everyone(self, tmp_path):
        queue, _ = make_queue(tmp_path, [[1]])
        queue.abort()
        assert queue.next_task("w0") == ("done", None)
        assert queue.aborted
