"""Crash-injection matrix over the three demo applications.

The checkpoint contract (PR 5): kill a checkpointed run at *any* execution
boundary, re-run with the same journal path, and the merged
:class:`RunReport` is byte-identical to an uninterrupted run — cold or
warm cache, at workers 1, 2 and 8, with the replayed prefix costing zero
provider calls.

The matrix enumerates every boundary mechanically: a probe run arms a
:class:`CrashPoint` on a name that never fires and reads its ``seen``
counter, so new boundaries added to the runtime are covered the moment
they are announced.  CI narrows the sweep per matrix cell via
``CRASH_MATRIX_WORKERS`` / ``CRASH_MATRIX_PHASES``.
"""

from __future__ import annotations

import os
import shutil

import pytest

from repro.core.runtime.checkpoint import RunCheckpoint
from repro.core.runtime.system import LinguaManga
from repro.datasets.entity_resolution import generate_er_dataset
from repro.datasets.imputation import generate_buy_dataset
from repro.datasets.names import generate_name_dataset
from repro.llm.faults import CrashInjected, CrashPoint
from repro.llm.providers import SimulatedProvider
from repro.llm.service import LLMService
from repro.obs import Observability
from repro.tasks.entity_resolution import run_lingua_manga_er
from repro.tasks.imputation import run_llm_imputation
from repro.tasks.name_extraction import run_name_extraction
from tests.conftest import assert_reports_identical

#: Every boundary the runtime announces (see repro.core.runtime.checkpoint).
BOUNDARIES = (
    "chunk:entered",
    "chunk:executed",
    "chunk:journaled",
    "operator:committed",
)

_ENV_WORKERS = os.environ.get("CRASH_MATRIX_WORKERS")
MATRIX_WORKERS = (
    tuple(int(item) for item in _ENV_WORKERS.split(",")) if _ENV_WORKERS else (1, 2, 8)
)
_ENV_PHASES = os.environ.get("CRASH_MATRIX_PHASES")
MATRIX_PHASES = tuple(_ENV_PHASES.split(",")) if _ENV_PHASES else ("cold", "warm")

APPS = {
    "er": lambda system, data, workers, **kw: run_lingua_manga_er(
        system, data, workers=workers, **kw
    ),
    "names": lambda system, data, workers, **kw: run_name_extraction(
        system, data, workers=workers, **kw
    ),
    "imputation": lambda system, data, workers, **kw: run_llm_imputation(
        system, data, workers=workers, **kw
    ),
}


def _run_app(app, data, workers, cache_path=None, obs=None, **checkpoint_kwargs):
    system = LinguaManga(cache_path=cache_path, obs=obs)
    return APPS[app](system, data, workers, **checkpoint_kwargs)


@pytest.fixture(scope="module")
def datasets():
    return {
        "er": generate_er_dataset("beer", seed=7, n_entities=60),
        "names": generate_name_dataset(seed=3, n_documents=12).documents,
        "imputation": generate_buy_dataset(seed=11, n_train=8, n_test=12).test,
    }


@pytest.fixture(scope="module")
def warm_seeds(datasets, tmp_path_factory):
    """One cold run per app seeds a cache journal; tests copy it per kill."""
    seeds = {}
    for app in APPS:
        path = tmp_path_factory.mktemp(f"seed-{app}") / "cache.jsonl"
        _run_app(app, datasets[app], workers=1, cache_path=str(path))
        seeds[app] = path
    return seeds


@pytest.fixture(scope="module")
def baselines(datasets, warm_seeds, tmp_path_factory):
    """Uninterrupted, *uncheckpointed* reports: the byte-identity target."""
    target = {}
    for app in APPS:
        target[(app, "cold")] = _run_app(
            app, datasets[app], workers=1
        ).report.canonical_json()
        journal = tmp_path_factory.mktemp(f"base-{app}") / "cache.jsonl"
        shutil.copy(warm_seeds[app], journal)
        target[(app, "warm")] = _run_app(
            app, datasets[app], workers=1, cache_path=str(journal)
        ).report.canonical_json()
    return target


@pytest.fixture(scope="module")
def boundary_counts(datasets, tmp_path_factory):
    """How often each boundary fires per app (probe run, nothing killed)."""
    counts = {}
    for app in APPS:
        probe = CrashPoint("__probe__")
        wal = tmp_path_factory.mktemp(f"probe-{app}") / "run.wal"
        _run_app(
            app,
            datasets[app],
            workers=2,
            checkpoint=RunCheckpoint(wal, crash=probe),
        )
        assert not probe.fired
        counts[app] = dict(probe.seen)
    return counts


@pytest.mark.parametrize("phase", MATRIX_PHASES)
@pytest.mark.parametrize("workers", MATRIX_WORKERS)
@pytest.mark.parametrize("boundary", BOUNDARIES)
@pytest.mark.parametrize("app", sorted(APPS))
class TestCrashMatrix:
    def test_kill_at_every_boundary_then_resume(
        self,
        app,
        boundary,
        workers,
        phase,
        datasets,
        baselines,
        warm_seeds,
        boundary_counts,
        tmp_path,
    ):
        data = datasets[app]
        total = boundary_counts[app].get(boundary, 0)
        assert total > 0, f"probe run never reached {boundary!r} for {app}"
        for hit in range(1, total + 1):
            cache_path = None
            if phase == "warm":
                cache_path = str(tmp_path / f"{boundary.replace(':', '-')}-{hit}.jsonl")
                shutil.copy(warm_seeds[app], cache_path)
            wal = tmp_path / f"{boundary.replace(':', '-')}-{hit}.wal"
            crash = CrashPoint(boundary, hits=hit)
            with pytest.raises(CrashInjected):
                _run_app(
                    app,
                    data,
                    workers,
                    cache_path=cache_path,
                    checkpoint=RunCheckpoint(wal, crash=crash),
                )
            assert crash.fired
            resumed = _run_app(
                app,
                data,
                workers,
                cache_path=cache_path,
                checkpoint=RunCheckpoint(wal),
            )
            assert_reports_identical(baselines[(app, phase)], resumed.report)


class TestResumeDetails:
    """Targeted single-scenario checks riding on the ER app."""

    def test_resume_at_a_different_worker_count(self, datasets, baselines, tmp_path):
        wal = tmp_path / "run.wal"
        crash = CrashPoint("chunk:journaled", hits=1)
        with pytest.raises(CrashInjected):
            _run_app(
                "er", datasets["er"], 8, checkpoint=RunCheckpoint(wal, crash=crash)
            )
        resumed = _run_app("er", datasets["er"], 2, checkpoint=RunCheckpoint(wal))
        assert_reports_identical(baselines[("er", "cold")], resumed.report)

    def test_resumed_trace_is_byte_identical(self, datasets, tmp_path):
        baseline_obs = Observability()
        _run_app("er", datasets["er"], 2, obs=baseline_obs)
        wal = tmp_path / "run.wal"
        crash = CrashPoint("operator:committed", hits=1)
        with pytest.raises(CrashInjected):
            _run_app(
                "er",
                datasets["er"],
                2,
                obs=Observability(),
                checkpoint=RunCheckpoint(wal, crash=crash),
            )
        resumed_obs = Observability()
        _run_app(
            "er", datasets["er"], 2, obs=resumed_obs, checkpoint=RunCheckpoint(wal)
        )
        assert resumed_obs.tracer.to_records() == baseline_obs.tracer.to_records()

    def test_replayed_prefix_costs_zero_provider_calls(self, datasets, tmp_path):
        full_provider = SimulatedProvider()
        full = run_name_extraction(
            LinguaManga(service=LLMService(full_provider)),
            datasets["names"],
            workers=2,
        )
        wal = tmp_path / "run.wal"
        crash = CrashPoint("operator:committed", hits=5)
        with pytest.raises(CrashInjected):
            _run_app(
                "names",
                datasets["names"],
                2,
                checkpoint=RunCheckpoint(wal, crash=crash),
            )
        resume = RunCheckpoint(wal)
        resumed_provider = SimulatedProvider()
        resumed = run_name_extraction(
            LinguaManga(service=LLMService(resumed_provider)),
            datasets["names"],
            workers=2,
            checkpoint=resume,
        )
        assert resume.stats.resumed
        assert resume.stats.replayed_operators >= 5
        assert resume.stats.replayed_records > 0
        # The resumed *process* pays the provider only for the suffix...
        assert 0 < resumed_provider.calls_served < full_provider.calls_served
        # ...yet the merged report declares the full run's cost, byte for byte.
        assert resumed.llm_calls == full.llm_calls
        assert resumed.report.canonical_json() == full.report.canonical_json()

    def test_resuming_a_completed_journal_replays_everything(
        self, datasets, baselines, tmp_path
    ):
        wal = tmp_path / "run.wal"
        first = _run_app("er", datasets["er"], 2, checkpoint=RunCheckpoint(wal))
        resume = RunCheckpoint(wal)
        provider = SimulatedProvider()
        again = run_lingua_manga_er(
            LinguaManga(service=LLMService(provider)),
            datasets["er"],
            workers=2,
            checkpoint=resume,
        )
        assert_reports_identical(
            baselines[("er", "cold")], first.report, again.report
        )
        assert resume.stats.replayed_operators > 0
        assert provider.calls_served == 0  # k == n: nothing left to execute

    def test_crash_before_first_chunk_resumes_cleanly(
        self, datasets, baselines, tmp_path
    ):
        # workers=1 keeps execution serial, so killing at the first
        # chunk:entered guarantees no chunk was executed or journalled —
        # the resume replays only whatever upstream operators committed.
        wal = tmp_path / "run.wal"
        crash = CrashPoint("chunk:entered", hits=1)
        with pytest.raises(CrashInjected):
            _run_app(
                "er", datasets["er"], 1, checkpoint=RunCheckpoint(wal, crash=crash)
            )
        resume = RunCheckpoint(wal)
        resumed = _run_app("er", datasets["er"], 1, checkpoint=resume)
        assert resume.stats.resumed  # header was durable before the kill
        assert resume.stats.replayed_chunks == 0
        assert_reports_identical(baselines[("er", "cold")], resumed.report)
