"""Hypothesis property tests for the shard ledger and work queue.

Three laws the streaming tentpole rests on, checked over generated
schedules instead of hand-picked ones:

1. **Lease idempotence** — losing a lease (expiry or release) and
   re-claiming, any number of times, never burns the attempt budget and
   never changes what the queue ultimately serves.
2. **Replay composition** — journalling a prefix, reopening the ledger and
   executing the suffix yields the same fold sequence as one uninterrupted
   run: ``replay(prefix) . resume == full``.
3. **Poison finality** — once a poison verdict is journalled and confirmed,
   that shard is never served for execution again, in this run or any
   resumed one.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.runtime.workqueue import ShardLedger, WorkQueue
from repro.llm.faults import TriggerPoint
from repro.llm.service import LLMService
from repro.storage import SpillStore


class _Scope:
    """Stand-in for a CallScope in ledger shard lines."""

    def __init__(self, records=(), elapsed=0.0):
        self.records = list(records)
        self.elapsed = elapsed


class _Outcome:
    def __init__(self, quarantine=(), degraded=0):
        self.quarantine = list(quarantine)
        self.degraded = degraded


def fresh_ledger(tmp_path, name):
    ledger = ShardLedger(tmp_path / name)
    ledger.begin("fp", LLMService())
    return ledger


def fresh_queue(tmp_path, chunks, name="q", **kwargs):
    ledger = fresh_ledger(tmp_path, f"{name}.jsonl")
    spill = SpillStore(tmp_path / f"{name}.spill")
    queue = WorkQueue(iter(chunks), window=64, spill=spill, ledger=ledger, **kwargs)
    return queue, ledger


def drain(queue, ledger, fail_indexes=frozenset(), worker="w"):
    """Run the queue to completion; returns the folded (index, kind) list."""
    folded = []
    while True:
        kind, lease = queue.next_task(worker)
        if kind == "done":
            return folded
        if kind == "retry":
            shard = queue.next_foldable()
            while shard is not None:
                folded.append((shard.index, shard.status))
                queue.mark_folded(shard.index)
                shard = queue.next_foldable()
            continue
        if kind == "poison":  # carried budget from a prior run
            queue.confirm_poison(lease)
            continue
        if lease.index in fail_indexes:
            verdict, attempts, _ = queue.fail(lease, "boom")
            if verdict == "poison":
                ledger.record_fail(lease.index, attempts, "op", "boom")
                queue.confirm_poison(lease)
            elif verdict == "retry":
                ledger.record_fail(lease.index, attempts, "op", "boom")
        else:
            ledger.record_shard(
                lease.index,
                1,
                [("op", _Scope([]), _Outcome())],
                [lease.index],
            )
            queue.complete(lease)


@settings(max_examples=40, deadline=None)
@given(
    n_shards=st.integers(min_value=1, max_value=8),
    losses=st.lists(
        st.tuples(st.integers(min_value=0, max_value=7), st.booleans()),
        max_size=12,
    ),
)
def test_lease_loss_and_reclaim_is_idempotent(tmp_path_factory, n_shards, losses):
    """Any schedule of releases/injected expiries never burns attempts."""
    tmp_path = tmp_path_factory.mktemp("lease")
    queue, ledger = fresh_queue(tmp_path, [[i] for i in range(n_shards)])
    try:
        loss_plan = [(i % n_shards, by_release) for i, by_release in losses]
        completed = []
        while True:
            kind, lease = queue.next_task("w")
            if kind == "done":
                break
            if kind == "retry":
                shard = queue.next_foldable()
                while shard is not None:
                    queue.mark_folded(shard.index)
                    shard = queue.next_foldable()
                continue
            assert kind == "lease"
            if loss_plan and loss_plan[0][0] == lease.index:
                _, by_release = loss_plan.pop(0)
                if by_release:
                    assert queue.release(lease)
                else:
                    # Simulate expiry: the holder's lease dies underneath it.
                    with queue._cond:
                        queue._shards[lease.index].deadline = queue.clock.now
                    assert not queue.heartbeat(lease)
                    assert not queue.complete(lease)
                    queue.release(lease)  # holder hands it back
                # Whatever happened, the shard is served again, fresh.
                continue
            assert lease.attempt == 1  # lease losses never burn the budget
            ledger.record_shard(
                lease.index, 1, [("op", _Scope([]), _Outcome())], [lease.index]
            )
            queue.complete(lease)
            completed.append(lease.index)
        assert sorted(completed) == list(range(n_shards))
        assert queue.shard_failures == 0
        assert queue.poisoned == 0
    finally:
        ledger.close()


@settings(max_examples=30, deadline=None)
@given(
    n_shards=st.integers(min_value=1, max_value=10),
    prefix_frac=st.floats(min_value=0.0, max_value=1.0),
    fail_shard=st.integers(min_value=0, max_value=9) | st.none(),
)
def test_replay_of_prefix_composes_with_resume(
    tmp_path_factory, n_shards, prefix_frac, fail_shard
):
    """replay(prefix) . resume == full, including a poisoned shard."""
    tmp_path = tmp_path_factory.mktemp("replay")
    fails = (
        frozenset({fail_shard})
        if fail_shard is not None and fail_shard < n_shards
        else frozenset()
    )
    chunks = [[i] for i in range(n_shards)]

    # One uninterrupted run.
    queue, ledger = fresh_queue(tmp_path, chunks, name="full", max_attempts=2)
    full = drain(queue, ledger, fails)
    ledger.close()

    # A prefix run journals only the first k shards, then "crashes".
    k = int(round(prefix_frac * n_shards))
    prefix_path = tmp_path / "prefix.jsonl"
    ledger = ShardLedger(prefix_path)
    ledger.begin("fp", LLMService())
    for index in range(k):
        if index in fails:
            # the prefix run burned one attempt before dying
            ledger.record_fail(index, 1, "op", "boom")
        else:
            ledger.record_shard(
                index, 1, [("op", _Scope([]), _Outcome())], [index]
            )
    ledger.close()

    # Resume: journalled shards replay, the suffix executes.
    ledger = ShardLedger(prefix_path)
    ledger.begin("fp", LLMService())
    spill = SpillStore(tmp_path / "resume.spill")
    queue = WorkQueue(
        iter(chunks), window=64, spill=spill, ledger=ledger, max_attempts=2
    )
    resumed = drain(queue, ledger, fails)
    ledger.close()

    assert [(i, s) for i, s in resumed] == [(i, s) for i, s in full]
    assert [i for i, _ in resumed] == list(range(n_shards))


@settings(max_examples=30, deadline=None)
@given(
    n_shards=st.integers(min_value=1, max_value=6),
    poison_shard=st.integers(min_value=0, max_value=5),
    max_attempts=st.integers(min_value=1, max_value=3),
)
def test_poisoned_shards_never_reexecute_after_commit(
    tmp_path_factory, n_shards, poison_shard, max_attempts
):
    tmp_path = tmp_path_factory.mktemp("poison")
    poison_shard %= n_shards
    chunks = [[i] for i in range(n_shards)]
    queue, ledger = fresh_queue(
        tmp_path, chunks, name="run", max_attempts=max_attempts
    )
    serves = {poison_shard: 0}
    while True:
        kind, lease = queue.next_task("w")
        if kind == "done":
            break
        if kind == "retry":
            shard = queue.next_foldable()
            while shard is not None:
                queue.mark_folded(shard.index)
                shard = queue.next_foldable()
            continue
        assert kind == "lease"
        if lease.index == poison_shard:
            serves[poison_shard] += 1
            verdict, attempts, _ = queue.fail(lease, "boom")
            ledger.record_fail(lease.index, attempts, "op", "boom")
            if verdict == "poison":
                queue.confirm_poison(lease)
            continue
        ledger.record_shard(
            lease.index, 1, [("op", _Scope([]), _Outcome())], [lease.index]
        )
        queue.complete(lease)
    # The budget bounds execution attempts exactly.
    assert serves[poison_shard] == max_attempts
    assert queue.poisoned == 1
    ledger.close()

    # Any number of resumes afterwards: the poison verdict is final — the
    # shard comes back as a carried "poison" task, never as "execute".
    for round_ in range(2):
        ledger = ShardLedger(tmp_path / "run.jsonl")
        ledger.begin("fp", LLMService())
        spill = SpillStore(tmp_path / f"again{round_}.spill")
        queue = WorkQueue(
            iter(chunks),
            window=64,
            spill=spill,
            ledger=ledger,
            max_attempts=max_attempts,
        )
        while True:
            kind, lease = queue.next_task("w")
            if kind == "done":
                break
            if kind == "retry":
                shard = queue.next_foldable()
                while shard is not None:
                    queue.mark_folded(shard.index)
                    shard = queue.next_foldable()
                continue
            assert kind != "lease", "poisoned shard re-executed after commit"
            assert kind == "poison" and lease.index == poison_shard
            queue.confirm_poison(lease)
        ledger.close()


@settings(max_examples=25, deadline=None)
@given(hits=st.integers(min_value=1, max_value=6))
def test_injected_expiry_reclaim_serves_every_shard_once(tmp_path_factory, hits):
    """An injected born-expired lease is re-served without attempt burn."""
    tmp_path = tmp_path_factory.mktemp("expiry")
    fault = TriggerPoint("lease:granted", hits=hits)
    queue, ledger = fresh_queue(
        tmp_path, [[i] for i in range(4)], name="run", lease_fault=fault
    )
    completed = []
    while True:
        kind, lease = queue.next_task("w")
        if kind == "done":
            break
        if kind == "retry":
            shard = queue.next_foldable()
            while shard is not None:
                queue.mark_folded(shard.index)
                shard = queue.next_foldable()
            continue
        if not queue.heartbeat(lease):
            queue.release(lease)
            continue
        assert lease.attempt == 1
        ledger.record_shard(
            lease.index, 1, [("op", _Scope([]), _Outcome())], [lease.index]
        )
        queue.complete(lease)
        completed.append(lease.index)
    assert sorted(completed) == [0, 1, 2, 3]
    assert queue.shard_failures == 0
    ledger.close()
