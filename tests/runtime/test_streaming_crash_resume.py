"""Chaos matrix for the streaming work-queue executor.

The tentpole invariant (PR 6): a streaming run killed at *any* shard
boundary — by whole-process death, by the death of a single worker, by a
lease expiring under a live holder, or by a failing spill write — and then
resumed (or simply left to carry on, for the survivable faults) produces a
:class:`RunReport` byte-identical to an uninterrupted run, at workers 1,
2 and 8, cold or warm cache.

Boundaries are enumerated mechanically with a probe run (a
:class:`CrashPoint` armed on a name that never fires, read back through
``seen``), mirroring ``test_crash_resume.py``; CI narrows the sweep per
matrix cell via ``STREAM_MATRIX_WORKERS`` / ``STREAM_MATRIX_PHASES``.
"""

from __future__ import annotations

import os
import shutil

import pytest

from repro.core.runtime.system import LinguaManga
from repro.core.templates.library import get_template
from repro.llm.providers import SimulatedProvider
from repro.llm.service import LLMService
from repro.datasets import StreamingERCorpus
from repro.llm.faults import (
    CrashInjected,
    CrashPoint,
    TriggerPoint,
    WorkerKillPoint,
)
from tests.conftest import assert_reports_identical

#: Every boundary the streaming executor announces (see workqueue._announce).
BOUNDARIES = ("shard:claimed", "shard:executed", "shard:journaled")

_ENV_WORKERS = os.environ.get("STREAM_MATRIX_WORKERS")
MATRIX_WORKERS = (
    tuple(int(item) for item in _ENV_WORKERS.split(",")) if _ENV_WORKERS else (1, 2, 8)
)
_ENV_PHASES = os.environ.get("STREAM_MATRIX_PHASES")
MATRIX_PHASES = tuple(_ENV_PHASES.split(",")) if _ENV_PHASES else ("cold", "warm")

CORPUS = StreamingERCorpus(24, seed=7)
CHUNK = 8  # -> 3 shards


def run_er(workers, cache_path=None, service=None, **stream_kwargs):
    system = LinguaManga(service=service, cache_path=cache_path)
    pipeline = get_template("entity_resolution").instantiate(
        examples=CORPUS.examples()
    )
    report = system.run_stream(
        pipeline,
        {"pairs": CORPUS.inputs()},
        workers=workers,
        chunk_size=CHUNK,
        source_id=CORPUS.fingerprint,
        **stream_kwargs,
    )
    return report, system


@pytest.fixture(scope="module")
def warm_seed(tmp_path_factory):
    """One cold run seeds a cache journal; tests copy it per kill."""
    path = tmp_path_factory.mktemp("seed") / "cache.jsonl"
    run_er(workers=1, cache_path=str(path))
    return path


@pytest.fixture(scope="module")
def baselines(warm_seed, tmp_path_factory):
    """Uninterrupted, *unledgered* reports: the byte-identity target."""
    target = {"cold": run_er(workers=1)[0].canonical_json()}
    journal = tmp_path_factory.mktemp("base") / "cache.jsonl"
    shutil.copy(warm_seed, journal)
    target["warm"] = run_er(workers=1, cache_path=str(journal))[0].canonical_json()
    return target


@pytest.fixture(scope="module")
def boundary_counts(tmp_path_factory):
    """How often each boundary fires in a clean run (probe, nothing killed)."""
    probe = CrashPoint("__probe__")
    wal = tmp_path_factory.mktemp("probe") / "run.wal"
    run_er(workers=2, ledger_path=wal, crash=probe)
    assert not probe.fired
    counts = dict(probe.seen)
    assert set(counts) == set(BOUNDARIES)
    return counts


def _cache_for(phase, warm_seed, tmp_path, tag):
    if phase == "cold":
        return None
    path = tmp_path / f"{tag}.cache.jsonl"
    shutil.copy(warm_seed, path)
    return str(path)


@pytest.mark.parametrize("phase", MATRIX_PHASES)
@pytest.mark.parametrize("workers", MATRIX_WORKERS)
@pytest.mark.parametrize("boundary", BOUNDARIES)
class TestStreamingCrashMatrix:
    def test_crash_at_every_shard_boundary_then_resume(
        self, boundary, workers, phase, baselines, warm_seed, boundary_counts, tmp_path
    ):
        total = boundary_counts[boundary]
        assert total > 0
        for hit in range(1, total + 1):
            tag = f"{boundary.replace(':', '-')}-{hit}"
            cache_path = _cache_for(phase, warm_seed, tmp_path, tag)
            wal = tmp_path / f"{tag}.wal"
            crash = CrashPoint(boundary, hits=hit)
            with pytest.raises(CrashInjected):
                run_er(workers, cache_path=cache_path, ledger_path=wal, crash=crash)
            assert crash.fired
            resumed, _ = run_er(workers, cache_path=cache_path, ledger_path=wal)
            assert_reports_identical(baselines[phase], resumed)

    def test_worker_kill_at_every_shard_boundary_is_survivable(
        self, boundary, workers, phase, baselines, warm_seed, boundary_counts, tmp_path
    ):
        # No resume here: a killed worker's lease is released, its half-done
        # shard rolled back, and the run finishes on its own.
        total = boundary_counts[boundary]
        for hit in range(1, total + 1):
            tag = f"kill-{boundary.replace(':', '-')}-{hit}"
            cache_path = _cache_for(phase, warm_seed, tmp_path, tag)
            kill = WorkerKillPoint(boundary, hits=hit)
            report, _ = run_er(workers, cache_path=cache_path, kill=kill)
            assert kill.fired
            assert_reports_identical(baselines[phase], report)
            assert report.recovery["lease_expiries"] >= 1


@pytest.mark.parametrize("workers", MATRIX_WORKERS)
class TestSurvivableFaults:
    def test_lease_expiry_under_a_live_holder(self, workers, baselines, tmp_path):
        # The k-th granted lease is born expired: the holder finishes the
        # shard, its completion is rejected as stale, the expiry sweep hands
        # the shard to another worker — and the report never notices.
        for hit in (1, 2, 3):
            fault = TriggerPoint("lease:granted", hits=hit)
            report, _ = run_er(workers, lease_fault=fault)
            assert fault.fired
            assert_reports_identical(baselines["cold"], report)
            assert report.recovery["lease_expiries"] >= 1

    def test_spill_write_failure_is_retried(self, workers, baselines, tmp_path):
        fault = TriggerPoint("spill:write", hits=2)
        report, _ = run_er(workers, spill_fault=fault)
        assert fault.fired
        assert_reports_identical(baselines["cold"], report)
        assert report.recovery["spill_write_failures"] == 1


class TestResumeDetails:
    def test_resume_at_a_different_worker_count(self, baselines, tmp_path):
        wal = tmp_path / "run.wal"
        crash = CrashPoint("shard:journaled", hits=1)
        with pytest.raises(CrashInjected):
            run_er(8, ledger_path=wal, crash=crash)
        resumed, _ = run_er(2, ledger_path=wal)
        assert_reports_identical(baselines["cold"], resumed)

    def test_resumed_suffix_pays_only_for_unjournaled_shards(
        self, baselines, tmp_path
    ):
        # The streaming fold keeps per-operator accumulators instead of the
        # service call ledger (retaining records would be O(dataset)), so
        # the replayed-prefix-costs-nothing claim is probed at the provider.
        full_provider = SimulatedProvider()
        run_er(1, service=LLMService(full_provider))
        wal = tmp_path / "run.wal"
        crash = CrashPoint("shard:journaled", hits=2)
        with pytest.raises(CrashInjected):
            run_er(1, ledger_path=wal, crash=crash)
        resumed_provider = SimulatedProvider()
        resumed, _ = run_er(
            1, ledger_path=wal, service=LLMService(resumed_provider)
        )
        assert_reports_identical(baselines["cold"], resumed)
        assert resumed.recovery["resumed"]
        assert resumed.recovery["replayed_shards"] == 2
        assert 0 < resumed_provider.calls_served < full_provider.calls_served

    def test_crash_before_any_shard_resumes_cleanly(self, baselines, tmp_path):
        wal = tmp_path / "run.wal"
        crash = CrashPoint("shard:claimed", hits=1)
        with pytest.raises(CrashInjected):
            run_er(1, ledger_path=wal, crash=crash)
        resumed, _ = run_er(1, ledger_path=wal)
        assert resumed.recovery["replayed_shards"] == 0
        assert_reports_identical(baselines["cold"], resumed)

    def test_crash_then_kill_on_resume_still_converges(self, baselines, tmp_path):
        # Compound failure: process death mid-run, then a worker killed
        # during the resumed run's live suffix.
        wal = tmp_path / "run.wal"
        with pytest.raises(CrashInjected):
            run_er(2, ledger_path=wal, crash=CrashPoint("shard:executed", hits=1))
        kill = WorkerKillPoint("shard:executed", hits=1)
        resumed, _ = run_er(2, ledger_path=wal, kill=kill)
        assert kill.fired
        assert_reports_identical(baselines["cold"], resumed)
