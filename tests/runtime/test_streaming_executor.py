"""Tests for the pipelined streaming executor (workqueue tentpole).

The contract under test: a linear pipeline with a chunk-capable core runs
as a memory-bounded stream and produces a :class:`RunReport` byte-identical
to the batch scheduler's — at any worker count, with or without a durable
ledger, and on a pure-replay resume.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.dsl.operators import LogicalOperator
from repro.core.dsl.pipeline import Pipeline
from repro.core.compiler.context import CompilerContext
from repro.core.compiler.plan import BoundOperator, PhysicalPlan
from repro.core.modules.base import ChunkOutcome, Module
from repro.core.modules.custom import CustomModule
from repro.core.runtime.system import LinguaManga
from repro.core.runtime.workqueue import (
    ShardLedger,
    StreamingExecutor,
    StreamingPlanError,
)
from repro.core.templates.library import get_template
from repro.datasets import StreamingERCorpus
from repro.llm.providers import SimulatedProvider
from repro.llm.service import LLMService
from repro.obs import Observability
from tests.conftest import assert_reports_identical

CORPUS = StreamingERCorpus(48, seed=7)


def er_pipeline():
    return get_template("entity_resolution").instantiate(examples=CORPUS.examples())


def run_streaming(
    workers=1, ledger_path=None, sink=None, n_pairs=48, service=None, **kwargs
):
    corpus = StreamingERCorpus(n_pairs, seed=7)
    system = LinguaManga(service=service)
    report = system.run_stream(
        er_pipeline(),
        {"pairs": corpus.inputs()},
        workers=workers,
        chunk_size=8,
        ledger_path=ledger_path,
        source_id=corpus.fingerprint,
        sink=sink,
        **kwargs,
    )
    return report, system


class TestByteIdentity:
    def test_matches_batch_scheduler(self):
        streaming, _ = run_streaming(workers=2)
        system = LinguaManga()
        batch = system.run(
            er_pipeline(), {"pairs": list(CORPUS.inputs())}, workers=1, chunk_size=8
        )
        assert_reports_identical(streaming, batch)

    def test_identical_at_any_worker_count(self):
        reports = [run_streaming(workers=w)[0] for w in (1, 2, 8)]
        assert_reports_identical(*reports)

    def test_generator_input_never_materialized(self):
        # The input is a one-shot generator: if anything list()-ed it, the
        # stream would come up empty after the first pull.
        report, _ = run_streaming(workers=2)
        assert len(next(iter(report.outputs.values()))) == 48

    def test_replay_resume_is_free_and_identical(self, tmp_path):
        first, _ = run_streaming(workers=2, ledger_path=tmp_path / "run.wal")
        provider = SimulatedProvider()
        second, _ = run_streaming(
            workers=8,
            ledger_path=tmp_path / "run.wal",
            service=LLMService(provider),
        )
        assert_reports_identical(first, second)
        assert provider.calls_served == 0  # pure replay
        assert second.recovery["resumed"]
        assert second.recovery["replayed_shards"] == 6

    def test_recovery_counters_shape(self):
        report, _ = run_streaming(workers=2)
        recovery = report.recovery
        assert recovery["mode"] == "streaming"
        assert recovery["shards"] == 6
        assert recovery["journaled_shards"] == 6
        assert recovery["spill_writes"] == 6
        assert not recovery["resumed"]

    def test_recovery_excluded_from_canonical(self):
        report, _ = run_streaming()
        assert "recovery" not in report.canonical_dict()


class TestSinkMode:
    def test_sink_streams_outputs_in_shard_order(self):
        collected = []
        lock = threading.Lock()

        def sink(outputs):
            with lock:
                collected.append(list(outputs))

        sink_report, _ = run_streaming(workers=4, sink=sink)
        list_report, _ = run_streaming(workers=1)
        flat = [v for batch in collected for v in batch]
        assert flat == next(iter(list_report.outputs.values()))
        summary = next(iter(sink_report.outputs.values()))
        assert summary["records"] == 48

    def test_sink_digest_deterministic(self):
        a, _ = run_streaming(workers=1, sink=lambda outputs: None)
        b, _ = run_streaming(workers=8, sink=lambda outputs: None)
        assert_reports_identical(a, b)


class TestObservability:
    def test_shard_spans_and_queue_metrics(self):
        corpus = StreamingERCorpus(24, seed=7)
        obs = Observability()
        system = LinguaManga(obs=obs)
        system.run_stream(
            er_pipeline(), {"pairs": corpus.inputs()}, workers=2, chunk_size=8,
            source_id=corpus.fingerprint,
        )
        run_root = obs.tracer.roots[0]
        shard_spans = [s for s in run_root.children if s.kind == "shard"]
        assert [s.name for s in shard_spans] == [f"shard[{i}]" for i in range(3)]
        assert sum(s.attributes["records"] for s in shard_spans) == 24
        names = set(obs.metrics.as_dict())
        assert "workqueue.depth" in names
        assert "spill.writes" in names


# -- hand-built plans for failure-path tests ------------------------------------


class Flaky(Module):
    """Chunk-capable toy module that fails on chunks containing a marker."""

    chunk_capable = True

    def __init__(self, name="flaky"):
        super().__init__(name)

    def _run(self, value):
        return [v * 2 for v in value]

    def apply_chunk(self, chunk):
        if any(v == "POISON" for v in chunk):
            raise RuntimeError("poison pill")
        return ChunkOutcome(outputs=[v * 2 for v in chunk])


def toy_plan(middle=None):
    pipeline = Pipeline(name="toy")
    pipeline.add(LogicalOperator(name="src", kind="load", params={}, inputs=[]))
    pipeline.add(
        LogicalOperator(name="work", kind="transform", params={}, inputs=["src"])
    )
    pipeline.add(
        LogicalOperator(name="out", kind="save", params={}, inputs=["work"])
    )
    context = CompilerContext()
    bound = [
        BoundOperator(
            operator=pipeline.operators[0],
            module=CustomModule("src", lambda inputs: inputs["records"]),
        ),
        BoundOperator(operator=pipeline.operators[1], module=middle or Flaky("work")),
        BoundOperator(
            operator=pipeline.operators[2], module=CustomModule("out", lambda v: v)
        ),
    ]
    return PhysicalPlan(pipeline=pipeline, bound=bound, context=context)


def run_toy(records, tmp_path, name="run.wal", workers=1, max_attempts=2, **kwargs):
    plan = toy_plan()
    ledger = ShardLedger(tmp_path / name)
    executor = StreamingExecutor(
        plan, ledger=ledger, workers=workers, chunk_size=2,
        max_attempts=max_attempts, source_id="toy", **kwargs,
    )
    try:
        return executor.execute({"records": iter(records)})
    finally:
        ledger.close()


class TestPoisonQuarantine:
    def test_poison_shard_quarantined_not_fatal(self, tmp_path):
        records = [1, 2, "POISON", 4, 5, 6]
        report = run_toy(records, tmp_path)
        assert report.partial
        assert next(iter(report.outputs.values())) == [2, 4, 10, 12]
        assert len(report.quarantine) == 2  # the poison shard's records
        assert all("poisoned after 2 attempt(s)" in q.error for q in report.quarantine)
        assert all(q.module_name == "work" for q in report.quarantine)
        assert report.recovery["quarantined_shards"] == 1
        assert report.recovery["shard_failures"] == 2

    def test_poison_reported_in_resilience_and_stats(self, tmp_path):
        report = run_toy([1, 2, "POISON", 4], tmp_path)
        assert report.resilience["work"].quarantined == 2
        assert report.resilience["work"].degraded == 0
        assert "failures=2" in report.module_stats["work"]

    def test_poison_replay_identical_without_reexecution(self, tmp_path):
        records = [1, 2, "POISON", 4, 5, 6]
        first = run_toy(records, tmp_path)
        second = run_toy(records, tmp_path)
        assert_reports_identical(first, second)
        assert second.recovery["resumed"]
        assert second.recovery["shard_failures"] == 0  # never re-executed

    def test_healthy_shards_unaffected_at_higher_workers(self, tmp_path):
        records = [1, 2, "POISON", 4, 5, 6, 7, 8]
        a = run_toy(records, tmp_path, name="a.wal", workers=1)
        b = run_toy(records, tmp_path, name="b.wal", workers=4)
        assert_reports_identical(a, b)


class TestPlanValidation:
    def test_rejects_non_linear_plans(self, tmp_path):
        pipeline = Pipeline(name="diamond")
        pipeline.add(LogicalOperator(name="a", kind="load", params={}, inputs=[]))
        pipeline.add(
            LogicalOperator(name="b", kind="transform", params={}, inputs=["a"])
        )
        pipeline.add(
            LogicalOperator(
                name="c", kind="custom", params={}, inputs=["a", "b"]
            )
        )
        context = CompilerContext()
        bound = [
            BoundOperator(
                operator=pipeline.operators[0],
                module=CustomModule("a", lambda v: v),
            ),
            BoundOperator(operator=pipeline.operators[1], module=Flaky("b")),
            BoundOperator(
                operator=pipeline.operators[2],
                module=CustomModule("c", lambda v: v),
            ),
        ]
        plan = PhysicalPlan(pipeline=pipeline, bound=bound, context=context)
        ledger = ShardLedger(tmp_path / "run.wal")
        executor = StreamingExecutor(plan, ledger=ledger)
        with pytest.raises(StreamingPlanError):
            executor.execute({})

    def test_rejects_plans_without_chunkable_core(self, tmp_path):
        pipeline = Pipeline(name="flat")
        pipeline.add(LogicalOperator(name="a", kind="load", params={}, inputs=[]))
        context = CompilerContext()
        bound = [
            BoundOperator(
                operator=pipeline.operators[0],
                module=CustomModule("a", lambda v: v),
            )
        ]
        plan = PhysicalPlan(pipeline=pipeline, bound=bound, context=context)
        executor = StreamingExecutor(plan, ledger=ShardLedger(tmp_path / "x.wal"))
        with pytest.raises(StreamingPlanError):
            executor.execute({})

    def test_sink_mode_requires_save_suffix(self, tmp_path):
        pipeline = Pipeline(name="toy2")
        pipeline.add(LogicalOperator(name="src", kind="load", params={}, inputs=[]))
        pipeline.add(
            LogicalOperator(name="work", kind="transform", params={}, inputs=["src"])
        )
        pipeline.add(
            LogicalOperator(
                name="post", kind="custom", params={}, inputs=["work"]
            )
        )
        context = CompilerContext()
        bound = [
            BoundOperator(
                operator=pipeline.operators[0],
                module=CustomModule("src", lambda inputs: inputs["records"]),
            ),
            BoundOperator(operator=pipeline.operators[1], module=Flaky("work")),
            BoundOperator(
                operator=pipeline.operators[2],
                module=CustomModule("post", lambda v: v),
            ),
        ]
        plan = PhysicalPlan(pipeline=pipeline, bound=bound, context=context)
        executor = StreamingExecutor(
            plan, ledger=ShardLedger(tmp_path / "y.wal"), sink=lambda outputs: None
        )
        with pytest.raises(StreamingPlanError):
            executor.execute({"records": [1]})


class TestMemoryBounding:
    def test_window_bounds_in_flight_shards(self, tmp_path):
        high_water = {"value": 0}

        class Watcher(Flaky):
            def apply_chunk(self, chunk):
                outcome = super().apply_chunk(chunk)
                return outcome

        plan = toy_plan(middle=Watcher("work"))
        ledger = ShardLedger(tmp_path / "run.wal")
        executor = StreamingExecutor(
            plan, ledger=ledger, workers=2, chunk_size=2, window=3, source_id="toy"
        )
        original = executor.__class__._fold_ready

        def tracking_fold(self):
            if self.queue is not None:
                with self.queue._cond:
                    high_water["value"] = max(
                        high_water["value"], len(self.queue._shards)
                    )
            original(self)

        executor._fold_ready = tracking_fold.__get__(executor)
        try:
            report = executor.execute({"records": iter(range(40))})
        finally:
            ledger.close()
        assert next(iter(report.outputs.values())) == [v * 2 for v in range(40)]
        # Never more than the window's worth of shards resident at once.
        assert 0 < high_water["value"] <= 3
