"""Unit tests for the concurrent batched execution engine."""

from __future__ import annotations

import threading

import pytest

from repro.core.modules.base import ChunkOutcome, Module
from repro.core.modules.mapping import MapModule
from repro.core.runtime.scheduler import (
    DEFAULT_CHUNK_SIZE,
    Scheduler,
    canonicalize_ledger,
    partition,
    tree_parallel_safe,
)
from repro.llm.providers import SimulatedProvider
from repro.llm.service import CallRecord, LLMService


class Doubler(Module):
    """Chunk-capable toy module; records which threads ran chunks."""

    chunk_capable = True

    def __init__(self, name: str = "doubler"):
        super().__init__(name)
        self.threads: set[str] = set()

    def _run(self, value):
        return [v * 2 for v in value]

    def apply_chunk(self, chunk):
        self.threads.add(threading.current_thread().name)
        with self.collecting_quarantine() as bucket:
            outputs = []
            for v in chunk:
                if v < 0:
                    self.quarantine_record(v, "negative input")
                else:
                    outputs.append(v * 2)
        return ChunkOutcome(outputs=outputs, quarantine=bucket)


class Opaque(Module):
    """Not chunk-capable: the scheduler must fall back to plain run()."""

    def _run(self, value):
        return value


class TestPartition:
    def test_even_split(self):
        assert partition([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]

    def test_ragged_tail(self):
        assert partition([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]

    def test_single_chunk_when_larger_than_input(self):
        assert partition([1, 2], 10) == [[1, 2]]

    def test_empty(self):
        assert partition([], 4) == []

    def test_rejects_nonpositive_chunk_size(self):
        with pytest.raises(ValueError):
            partition([1], 0)

    def test_boundaries_do_not_depend_on_workers(self):
        # The invariant the determinism contract rests on: chunking is a
        # pure function of (values, chunk_size).
        values = list(range(23))
        assert partition(values, 4) == partition(list(values), 4)


class TestTreeParallelSafe:
    def test_plain_module_is_safe(self):
        assert tree_parallel_safe(Doubler())

    def test_unsafe_module(self):
        module = Doubler()
        module.parallel_safe = False
        assert not tree_parallel_safe(module)

    def test_unsafe_child_poisons_wrapper(self):
        inner = Doubler("inner")
        inner.parallel_safe = False
        wrapper = MapModule("map", inner)
        assert not tree_parallel_safe(wrapper)

    def test_safe_tree(self):
        assert tree_parallel_safe(MapModule("map", Doubler("inner")))


def _record(prompt: str, cached: bool) -> CallRecord:
    return CallRecord(
        prompt=prompt,
        response_text="x",
        prompt_tokens=1,
        completion_tokens=1,
        cost=0.0 if cached else 1.0,
        cached=cached,
        skill="",
        purpose="",
        latency_seconds=0.0,
    )


class TestCanonicalizeLedger:
    def test_served_record_moves_before_cache_hits(self):
        records = [
            _record("p", cached=True),
            _record("q", cached=False),
            _record("p", cached=False),
        ]
        canonicalize_ledger(records, 0)
        assert [(r.prompt, r.cached) for r in records] == [
            ("p", False),
            ("q", False),
            ("p", True),
        ]

    def test_respects_mark(self):
        records = [
            _record("p", cached=True),
            _record("p", cached=False),
        ]
        canonicalize_ledger(records, 1)
        # Only the tail (one record) is in scope: nothing to reorder.
        assert [r.cached for r in records] == [True, False]

    def test_already_canonical_is_untouched(self):
        records = [_record("p", cached=False), _record("p", cached=True)]
        before = list(records)
        canonicalize_ledger(records, 0)
        assert records == before


class TestScheduler:
    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            Scheduler(workers=0)

    def test_should_chunk_requires_list(self):
        scheduler = Scheduler(workers=2)
        assert not scheduler.should_chunk(Doubler(), "scalar")
        assert not scheduler.should_chunk(Doubler(), [1])
        assert scheduler.should_chunk(Doubler(), [1, 2])

    def test_should_chunk_requires_capability(self):
        scheduler = Scheduler(workers=2)
        assert not scheduler.should_chunk(Opaque("opaque"), [1, 2])

    def test_should_chunk_respects_parallel_safety(self):
        scheduler = Scheduler(workers=2)
        module = Doubler()
        module.parallel_safe = False
        assert not scheduler.should_chunk(module, [1, 2])

    def test_chunk_size_preference_order(self):
        module = Doubler()
        assert Scheduler(chunk_size=3)._chunk_size_for(module) == 3
        module.preferred_chunk_size = 5
        assert Scheduler()._chunk_size_for(module) == 5
        module.preferred_chunk_size = None
        assert Scheduler()._chunk_size_for(module) == DEFAULT_CHUNK_SIZE

    def test_run_operator_merges_in_chunk_order(self):
        service = LLMService(SimulatedProvider())
        scheduler = Scheduler(workers=4, chunk_size=2)
        out = scheduler.run_operator(Doubler(), list(range(10)), service)
        assert out == [v * 2 for v in range(10)]

    def test_run_operator_uses_multiple_threads(self):
        # Two chunks rendezvous at a barrier: neither can finish until both
        # are running, which *proves* two pool threads without sleeping.
        barrier = threading.Barrier(2, timeout=10.0)

        class RendezvousDoubler(Doubler):
            def apply_chunk(self, chunk):
                barrier.wait()
                return super().apply_chunk(chunk)

        service = LLMService(SimulatedProvider())
        scheduler = Scheduler(workers=2, chunk_size=1)
        module = RendezvousDoubler()
        scheduler.run_operator(module, [1, 2], service)
        assert len(module.threads) == 2

    def test_workers_one_stays_inline(self):
        service = LLMService(SimulatedProvider())
        scheduler = Scheduler(workers=1, chunk_size=2)
        module = Doubler()
        scheduler.run_operator(module, list(range(6)), service)
        assert module.threads == {threading.main_thread().name}

    def test_quarantine_merged_in_chunk_order(self):
        service = LLMService(SimulatedProvider())
        scheduler = Scheduler(workers=4, chunk_size=1)
        module = Doubler()
        out = scheduler.run_operator(module, [-3, 1, -2, 2], service)
        assert out == [2, 4]
        assert [q.record for q in module.quarantine] == [-3, -2]
        assert module.stats.quarantined == 2

    def test_one_invocation_per_operator(self):
        service = LLMService(SimulatedProvider())
        scheduler = Scheduler(workers=4, chunk_size=1)
        module = Doubler()
        scheduler.run_operator(module, list(range(8)), service)
        assert module.stats.invocations == 1

    def test_fallback_to_plain_run(self):
        service = LLMService(SimulatedProvider())
        scheduler = Scheduler(workers=4)
        module = Opaque("opaque")
        assert scheduler.run_operator(module, [1, 2], service) == [1, 2]
        assert module.stats.invocations == 1

    def test_failure_counts_and_reraises(self):
        class Exploder(Doubler):
            def apply_chunk(self, chunk):
                raise RuntimeError("boom")

        service = LLMService(SimulatedProvider())
        scheduler = Scheduler(workers=2, chunk_size=1)
        module = Exploder()
        with pytest.raises(RuntimeError):
            scheduler.run_operator(module, [1, 2], service)
        assert module.stats.failures == 1
