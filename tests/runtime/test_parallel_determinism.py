"""Determinism of the parallel scheduler: the contract the engine pins.

Same seed + same fault spec must yield byte-identical canonical run
reports at any worker count.  These tests execute the real ER pipeline —
template instantiation, MapModule chunking, request coalescing, batch
prefetching — at ``workers`` 1, 2 and 8, with and without a content-keyed
:class:`ChaosProvider`, and compare :meth:`RunReport.canonical_json`
byte for byte.
"""

from __future__ import annotations

import pytest

from repro.core.runtime.system import LinguaManga
from repro.core.templates.library import get_template
from repro.datasets.entity_resolution import generate_er_dataset
from repro.datasets.imputation import generate_buy_dataset
from repro.datasets.names import generate_name_dataset
from repro.llm.faults import ChaosProvider, FaultKind, FaultSpec
from repro.llm.providers import SimulatedProvider
from repro.llm.service import LLMService
from repro.tasks.blocking import block_records
from repro.tasks.entity_resolution import (
    pairs_as_inputs,
    pick_examples,
    run_lingua_manga_er,
)
from repro.tasks.imputation import run_llm_imputation
from repro.tasks.name_extraction import run_name_extraction
from tests.conftest import assert_reports_identical

WORKER_COUNTS = (1, 2, 8)


@pytest.fixture(scope="module")
def dataset():
    return generate_er_dataset("beer", seed=7, n_entities=60)


def _run_clean(dataset, workers: int, chunk_size: int | None = None) -> str:
    system = LinguaManga()
    pipeline = get_template("entity_resolution").instantiate(
        examples=pick_examples(dataset.train, 4)
    )
    report = system.run(
        pipeline,
        {"pairs": pairs_as_inputs(dataset.test)},
        workers=workers,
        chunk_size=chunk_size,
    )
    return report.canonical_json()


def _run_chaos(dataset, workers: int, rate: float) -> "tuple[str, object]":
    provider = ChaosProvider(
        SimulatedProvider(),
        faults=[
            FaultSpec(kind=FaultKind.TRANSIENT, rate=rate),
            FaultSpec(kind=FaultKind.MALFORMED, rate=0.15),
        ],
        seed=13,
        key_mode="content",
    )
    system = LinguaManga(service=LLMService(provider))
    pipeline = get_template("entity_resolution").instantiate(
        examples=pick_examples(dataset.train, 4),
        error_policy="skip_record",
    )
    report = system.run(
        pipeline, {"pairs": pairs_as_inputs(dataset.test)}, workers=workers
    )
    return report.canonical_json(), report


class TestCleanDeterminism:
    def test_byte_identical_across_worker_counts(self, dataset):
        reports = [_run_clean(dataset, workers) for workers in WORKER_COUNTS]
        assert_reports_identical(*reports)

    def test_byte_identical_on_repeat(self, dataset):
        assert_reports_identical(_run_clean(dataset, 8), _run_clean(dataset, 8))

    def test_chunk_size_is_part_of_the_run_shape(self, dataset):
        # Different chunk sizes are allowed to differ (they change batch
        # prime groups); the same chunk size must not.
        assert_reports_identical(
            _run_clean(dataset, 2, chunk_size=3), _run_clean(dataset, 8, chunk_size=3)
        )

    def test_parallel_matches_sequential_results(self, dataset):
        """Outputs/quarantine/cost match the legacy path; only ledger
        cache-hit counts differ (the batched path primes the cache)."""
        import json

        sequential = json.loads(_run_clean(dataset, None))
        parallel = json.loads(_run_clean(dataset, 8))
        for key in ("pipeline", "outputs", "partial", "quarantine"):
            assert sequential[key] == parallel[key]
        assert sequential["cost"]["cost"] == parallel["cost"]["cost"]
        assert (
            sequential["cost"]["served_calls"] == parallel["cost"]["served_calls"]
        )


class TestChaosDeterminism:
    @pytest.mark.parametrize("rate", [0.35, 0.7])
    def test_byte_identical_under_faults(self, dataset, rate):
        reports = [_run_chaos(dataset, workers, rate)[0] for workers in WORKER_COUNTS]
        assert_reports_identical(*reports)

    def test_heavy_chaos_actually_quarantines(self, dataset):
        _, report = _run_chaos(dataset, 8, rate=0.7)
        assert report.partial
        assert len(report.quarantine) > 0

    def test_quarantine_order_is_stable(self, dataset):
        runs = [_run_chaos(dataset, workers, rate=0.7)[1] for workers in WORKER_COUNTS]
        keys = [
            [(q.module_name, repr(q.record), q.error) for q in run.quarantine]
            for run in runs
        ]
        assert keys[0] == keys[1] == keys[2]


class TestColumnarDeterminism:
    """Columnar vs scalar execution is invisible in the reports.

    All three demo apps, both columnar modes, every worker count: the
    canonical run reports must be byte-identical (the columnar hot paths
    are engineered to accumulate floats in the scalar order, so this is an
    exact contract, not a tolerance).
    """

    @pytest.fixture(scope="class")
    def name_documents(self):
        return generate_name_dataset(seed=3, n_documents=40).documents

    @pytest.fixture(scope="class")
    def buy_dataset(self):
        return generate_buy_dataset(seed=11, n_train=40, n_test=60)

    def _matrix(self, run):
        reports = [
            run(workers=workers, columnar=columnar).report.canonical_json()
            for columnar in (False, True)
            for workers in WORKER_COUNTS
        ]
        assert_reports_identical(*reports)

    def test_er_byte_identical(self, dataset):
        self._matrix(
            lambda workers, columnar: run_lingua_manga_er(
                LinguaManga(), dataset, workers=workers, columnar=columnar
            )
        )

    def test_name_extraction_byte_identical(self, name_documents):
        self._matrix(
            lambda workers, columnar: run_name_extraction(
                LinguaManga(), name_documents, workers=workers, columnar=columnar
            )
        )

    def test_imputation_byte_identical(self, buy_dataset):
        self._matrix(
            lambda workers, columnar: run_llm_imputation(
                LinguaManga(), buy_dataset.test, workers=workers, columnar=columnar
            )
        )

    def test_blocking_candidate_sets_identical(self, dataset):
        left = [dict(p.left) for p in dataset.test[:40]]
        right = [dict(p.right) for p in dataset.test[:40]]
        scalar = block_records(left, right, "name", columnar=False)
        columnar = block_records(left, right, "name", columnar=True)
        assert scalar.pairs == columnar.pairs
        assert scalar.candidates_considered == columnar.candidates_considered
        assert scalar.reduction_ratio == columnar.reduction_ratio
