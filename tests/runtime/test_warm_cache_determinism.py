"""Determinism of warm runs over the persistent prompt cache.

PR 2's contract — same seed ⇒ byte-identical canonical run reports at any
worker count — must survive the cache subsystem: a *warm* run (every
answer served from the journal) has to be byte-identical at workers 1, 2
and 8, and may differ from the cold run only in the declared cost and
provenance fields, never in outputs.
"""

from __future__ import annotations

import json

import pytest

from repro.core.runtime.system import LinguaManga
from repro.core.templates.library import get_template
from repro.datasets.entity_resolution import generate_er_dataset
from repro.tasks.entity_resolution import pairs_as_inputs, pick_examples
from tests.conftest import assert_reports_identical

WORKER_COUNTS = (1, 2, 8)


@pytest.fixture(scope="module")
def dataset():
    return generate_er_dataset("beer", seed=7, n_entities=60)


def _run(dataset, journal, workers: int | None) -> str:
    system = LinguaManga(cache_path=str(journal))
    pipeline = get_template("entity_resolution").instantiate(
        examples=pick_examples(dataset.train, 4)
    )
    report = system.run(
        pipeline, {"pairs": pairs_as_inputs(dataset.test)}, workers=workers
    )
    return report.canonical_json()


@pytest.fixture(scope="module")
def runs(dataset, tmp_path_factory) -> dict:
    journal = tmp_path_factory.mktemp("warm") / "cache.jsonl"
    cold = _run(dataset, journal, workers=1)
    warm = {workers: _run(dataset, journal, workers) for workers in WORKER_COUNTS}
    return {"cold": cold, "warm": warm}


class TestWarmCacheDeterminism:
    def test_warm_runs_byte_identical_across_worker_counts(self, runs):
        assert_reports_identical(*(runs["warm"][workers] for workers in WORKER_COUNTS))

    def test_warm_differs_from_cold_only_in_cost_fields(self, runs):
        # The profile is a declared cost field too: it carries the
        # provider/cache split, which legitimately flips on a warm run.
        assert_reports_identical(
            runs["cold"], runs["warm"][1], ignore=("cost", "profile")
        )
        warm_cost = json.loads(runs["warm"][1])["cost"]
        cold_cost = json.loads(runs["cold"])["cost"]
        warm_profile = json.loads(runs["warm"][1])["profile"]
        assert warm_cost["served_calls"] == 0
        assert warm_cost["cost"] == 0.0
        assert warm_cost["cached_calls"] > cold_cost["served_calls"] * 0.5
        assert sum(row["provider_calls"] for row in warm_profile) == 0
        assert sum(row["cost"] for row in warm_profile) == 0.0

    def test_warm_repeat_is_byte_identical(self, dataset, tmp_path):
        journal = tmp_path / "cache.jsonl"
        _run(dataset, journal, workers=2)  # cold seeding run
        assert_reports_identical(
            _run(dataset, journal, workers=2), _run(dataset, journal, workers=8)
        )
