"""Tests for the optimizer: validator, simulator, connector, cost model."""

from __future__ import annotations

import pytest

from repro.core.modules.custom import CustomModule
from repro.core.modules.llmgc import LLMGCModule
from repro.core.optimizer.connector import ConnectorPolicyError, TabularConnector
from repro.core.optimizer.cost import CostComparison, CostSnapshot, CostTracker
from repro.core.optimizer.simulator import SimulatedModule
from repro.core.optimizer.validator import ModuleValidator, TestCase
from repro.storage.database import Database
from repro.storage.table import Table


class TestValidator:
    def tokenize_cases(self) -> list[TestCase]:
        return [
            TestCase("John met Mary.", ["John", "met", "Mary", "."], name="punct"),
            TestCase("He said hi", ["He", "said", "hi"], name="plain"),
        ]

    def test_repair_loop_fixes_tokenizer(self, service):
        module = LLMGCModule("tok", service, "tokenize a sentence into words")
        validator = ModuleValidator(service, self.tokenize_cases())
        report = validator.validate_and_repair(module)
        assert report.passed is True
        assert report.rounds >= 1  # revision 0 fails the punctuation case
        assert module.revision >= 1

    def test_passing_module_needs_no_rounds(self, service):
        module = CustomModule("split", lambda text: text.split())
        validator = ModuleValidator(service, [TestCase("a b", ["a", "b"])])
        report = validator.validate_and_repair(module)
        assert report.passed is True and report.rounds == 0

    def test_failing_custom_module_cannot_be_repaired(self, service):
        module = CustomModule("bad", lambda text: [])
        validator = ModuleValidator(service, [TestCase("a", ["a"])])
        report = validator.validate_and_repair(module)
        assert report.passed is False
        assert report.rounds == 0
        assert len(report.failures) == 1

    def test_exception_in_module_is_a_failure_not_a_crash(self, service):
        module = CustomModule("boom", lambda text: 1 / 0)
        validator = ModuleValidator(service, [TestCase("a", ["a"])])
        report = validator.validate_and_repair(module)
        assert report.passed is False
        assert "division by zero" in report.failures[0].error

    def test_custom_comparator(self, service):
        case = TestCase("abc", 3, comparator=lambda actual, expected: len(actual) == expected)
        validator = ModuleValidator(service, [case])
        module = CustomModule("id", lambda text: text)
        assert validator.validate_and_repair(module).passed is True

    def test_unfixable_task_exhausts_timeouts(self, service):
        # The dedupe candidate can never satisfy an impossible expectation.
        module = LLMGCModule("d", service, "remove duplicate records")
        validator = ModuleValidator(
            service, [TestCase([{"a": 1}], "impossible")], max_rounds=2, max_regenerations=1
        )
        report = validator.validate_and_repair(module)
        assert report.passed is False
        assert report.rounds == 4  # 2 rounds, regeneration, 2 more rounds
        assert report.regenerations == 1

    def test_history_tracks_failure_counts(self, service):
        module = LLMGCModule("tok", service, "tokenize text into words")
        validator = ModuleValidator(service, self.tokenize_cases())
        report = validator.validate_and_repair(module)
        assert report.history[0][1] > 0  # initial failures
        assert report.history[-1][1] == 0  # fixed

    def test_no_cases_rejected(self, service):
        with pytest.raises(ValueError):
            ModuleValidator(service, [])

    def test_report_rendering(self, service):
        module = CustomModule("bad", lambda text: [])
        report = ModuleValidator(service, [TestCase("a", ["a"])]).validate_and_repair(module)
        assert "FAILED" in report.to_text()


class TestSimulator:
    def make_teacher(self):
        calls = {"n": 0}

        def classify(value: str) -> str:
            calls["n"] += 1
            return "long" if len(value) > 10 else "short"

        return CustomModule("teacher", classify), calls

    def inputs(self, n: int) -> list[str]:
        words = ["ab", "a very long sentence indeed", "xy", "tiny",
                 "another extremely long input string", "ok"]
        return [words[i % len(words)] + f" {i % 7}" for i in range(n)]

    def test_warmup_uses_teacher_only(self):
        teacher, calls = self.make_teacher()
        simulated = SimulatedModule("sim", teacher, min_samples=50)
        for value in self.inputs(30):
            simulated.run(value)
        assert calls["n"] == 30
        assert simulated.sim_stats.student_calls == 0

    def test_takeover_reduces_teacher_calls(self):
        teacher, calls = self.make_teacher()
        simulated = SimulatedModule(
            "sim", teacher, min_samples=40, confidence_threshold=0.6, refit_every=20
        )
        for value in self.inputs(300):
            simulated.run(value)
        assert simulated.takeover_ready
        assert simulated.sim_stats.student_calls > 0
        assert calls["n"] < 300

    def test_student_agrees_with_teacher(self):
        teacher, _ = self.make_teacher()
        simulated = SimulatedModule(
            "sim", teacher, min_samples=40, confidence_threshold=0.6
        )
        for value in self.inputs(200):
            simulated.run(value)
        reference, _ = self.make_teacher()
        test_inputs = self.inputs(60)
        agreement = sum(
            1 for v in test_inputs if simulated.run(v) == reference.run(v)
        ) / len(test_inputs)
        assert agreement > 0.9

    def test_savings_reported(self):
        teacher, _ = self.make_teacher()
        simulated = SimulatedModule("sim", teacher, min_samples=30, confidence_threshold=0.55)
        for value in self.inputs(200):
            simulated.run(value)
        assert 0.0 < simulated.sim_stats.savings() < 1.0
        assert "savings" in simulated.sim_stats.to_text()

    def test_single_label_never_takes_over(self):
        teacher = CustomModule("const", lambda v: "same")
        simulated = SimulatedModule("sim", teacher, min_samples=10)
        for value in self.inputs(50):
            simulated.run(value)
        assert not simulated.takeover_ready  # needs two classes to fit


class TestConnector:
    @pytest.fixture()
    def db(self) -> Database:
        database = Database()
        database.register(
            Table.from_records(
                "products",
                [
                    {"id": i, "name": f"item {i}", "price": float(10 * i)}
                    for i in range(1, 11)
                ],
            )
        )
        return database

    def test_ask_count_question(self, service, db):
        connector = TabularConnector(db, service)
        answer = connector.ask("How many products have price over 50?")
        assert answer.result.records()[0]["n"] == 5
        assert "SELECT" in answer.sql

    def test_exposure_capped_by_max_rows(self, service, db):
        connector = TabularConnector(db, service, max_result_rows=3)
        answer = connector.ask("Show the name of all products")
        assert len(answer.result) <= 3
        assert connector.report.rows_uploaded <= 3

    def test_policy_blocks_delete(self, service, db):
        connector = TabularConnector(db, service)
        with pytest.raises(ConnectorPolicyError):
            connector.run_user_sql("DELETE FROM products")
        assert connector.report.rejected_statements == 1

    def test_policy_blocks_disallowed_table(self, service, db):
        connector = TabularConnector(db, service, allowed_tables=["other"])
        with pytest.raises(ConnectorPolicyError):
            connector.run_user_sql("SELECT * FROM products")

    def test_user_sql_select_allowed(self, service, db):
        connector = TabularConnector(db, service)
        result = connector.run_user_sql("SELECT COUNT(*) AS n FROM products")
        assert result.records() == [{"n": 10}]

    def test_schema_upload_counted(self, service, db):
        connector = TabularConnector(db, service)
        connector.ask("How many products are there?")
        assert connector.report.schema_uploads == 1

    def test_extract_sql_from_fenced_response(self):
        sql = TabularConnector._extract_sql("```sql\nSELECT 1 FROM t;\n```")
        assert sql == "SELECT 1 FROM t"

    def test_extract_sql_from_prose(self):
        sql = TabularConnector._extract_sql("Sure! SELECT a FROM t WHERE x = 1")
        assert sql.startswith("SELECT a")


class TestCostTracking:
    def test_tracker_measures_delta(self, service):
        service.complete("summarize warm-up call")
        with CostTracker(service) as tracker:
            service.complete("summarize tracked call")
        assert tracker.snapshot.served_calls == 1
        assert tracker.snapshot.cost > 0

    def test_tracker_counts_cache_hits_separately(self, service):
        service.complete("summarize x")
        with CostTracker(service) as tracker:
            service.complete("summarize x")
        assert tracker.snapshot.served_calls == 0
        assert tracker.snapshot.cached_calls == 1

    def test_comparison_ratio(self):
        comparison = CostComparison(
            "baseline",
            CostSnapshot(60, 0, 0.06, 1.0),
            "optimized",
            CostSnapshot(10, 0, 0.01, 0.2),
        )
        assert comparison.call_ratio() == pytest.approx(1 / 6)
        assert "1/6" in comparison.to_text()

    def test_comparison_zero_baseline(self):
        comparison = CostComparison(
            "b", CostSnapshot(0, 0, 0.0, 0.0), "o", CostSnapshot(0, 0, 0.0, 0.0)
        )
        assert comparison.call_ratio() == 0.0
