"""Direct unit tests for EXPLAIN rendering (repro.core.compiler.explain).

The load-bearing assertion: the module sequence a traced run actually
executes is exactly the sequence ``explain_plan`` promises — EXPLAIN is a
contract with the runtime, not decoration.
"""

from __future__ import annotations

from repro.core.compiler.explain import (
    explain_pipeline,
    explain_plan,
    render_architecture,
)
from repro.core.dsl.builder import PipelineBuilder
from repro.core.runtime.system import LinguaManga
from repro.obs import Observability, walk_spans


def make_pipeline():
    return (
        PipelineBuilder("explainable")
        .load(source="values")
        .clean_text(impl="custom")
        .dedupe(impl="custom")
        .save(key="out")
        .build()
    )


class TestExplainPipeline:
    def test_every_operator_boxed_in_topological_order(self):
        pipeline = make_pipeline()
        text = explain_pipeline(pipeline)
        assert text.startswith("Pipeline: explainable")
        positions = [
            text.index(f" {op.name} [{op.kind}] ")
            for op in pipeline.topological_order()
        ]
        assert positions == sorted(positions)

    def test_impl_hints_rendered(self):
        text = explain_pipeline(make_pipeline())
        assert "impl=custom" in text

    def test_arrows_join_consecutive_boxes(self):
        text = explain_pipeline(make_pipeline())
        operators = make_pipeline().operators
        assert text.count("      v") == len(operators) - 1


class TestExplainPlan:
    def test_explain_plan_is_the_plan_rendering(self):
        system = LinguaManga()
        plan = system.compile(make_pipeline())
        text = explain_plan(plan)
        assert text == plan.to_text()
        assert text.startswith("physical plan for 'explainable':")

    def test_binding_lines_follow_topological_order(self):
        system = LinguaManga()
        plan = system.compile(make_pipeline())
        lines = explain_plan(plan).splitlines()[1:]
        operator_names = [b.operator.name for b in plan.bound]
        assert [line.split(":")[0].strip() for line in lines] == operator_names

    def test_explain_matches_traced_module_sequence(self):
        # Compile, EXPLAIN, then actually run under the tracer: the phase
        # spans (one per operator) must appear in exactly the order the
        # EXPLAIN output promised, and each must contain its bound module.
        obs = Observability()
        system = LinguaManga(obs=obs)
        plan = system.compile(make_pipeline())
        explained = [b.operator.name for b in plan.bound]
        explained_modules = [b.module.name for b in plan.bound]

        plan.execute({"values": ["A", "a", "B "]})

        traced = [
            span.name
            for span, _ in walk_spans(obs.tracer.roots)
            if span.kind == "phase"
        ]
        assert traced == explained
        traced_modules = [
            span.name
            for span, _ in walk_spans(obs.tracer.roots)
            if span.kind == "module"
        ]
        assert traced_modules == explained_modules


class TestRenderArchitecture:
    def test_mentions_the_paper_components(self):
        text = render_architecture()
        for component in ("LINGUA MANGA", "Compiler", "Optimizer", "LLM service"):
            assert component in text

    def test_box_is_rectangular(self):
        lines = render_architecture().splitlines()
        assert len({len(line) for line in lines}) == 1
