"""Tests for the physical module system."""

from __future__ import annotations

import pytest

from repro.core.modules.base import ModuleExecutionError
from repro.core.modules.custom import CustomModule
from repro.core.modules.decorated import RouterModule, SequentialModule
from repro.core.modules.llm_module import (
    LLMModule,
    parse_leading_word,
    parse_number,
    parse_yes_no,
)
from repro.core.modules.llmgc import CodeSandboxError, LLMGCModule, compile_generated_code
from repro.core.modules.mapping import EnrichModule, MapModule
from repro.core.modules.validation import (
    ChoiceValidator,
    NonEmptyValidator,
    NumericRangeValidator,
    PredicateValidator,
    RegexValidator,
    TypeValidator,
)
from repro.llm.errors import MalformedResponseError


class TestCustomModule:
    def test_runs_function(self):
        module = CustomModule("double", lambda x: x * 2)
        assert module.run(21) == 42

    def test_stats_count_invocations(self):
        module = CustomModule("id", lambda x: x)
        for i in range(3):
            module.run(i)
        assert module.stats.invocations == 3
        assert module.stats.failures == 0

    def test_failures_wrapped_and_counted(self):
        module = CustomModule("boom", lambda x: 1 / 0)
        with pytest.raises(ModuleExecutionError):
            module.run(1)
        assert module.stats.failures == 1

    def test_run_batch(self):
        module = CustomModule("inc", lambda x: x + 1)
        assert module.run_batch([1, 2, 3]) == [2, 3, 4]


class TestComposition:
    def test_sequential_chains(self):
        seq = SequentialModule(
            "s",
            [CustomModule("a", lambda x: x + 1), CustomModule("b", lambda x: x * 10)],
        )
        assert seq.run(1) == 20

    def test_sequential_needs_stages(self):
        with pytest.raises(ValueError):
            SequentialModule("s", [])

    def test_router_escalates(self):
        primary = CustomModule("rules", lambda x: None if x == "hard" else "cheap")
        fallback = CustomModule("llm", lambda x: "expensive")
        router = RouterModule("r", primary, fallback, lambda v, result: result is None)
        assert router.run("easy") == "cheap"
        assert router.run("hard") == "expensive"
        assert router.escalations == 1

    def test_map_module(self):
        mapper = MapModule("m", CustomModule("inc", lambda x: x + 1))
        assert mapper.run([1, 2]) == [2, 3]

    def test_map_rejects_non_list(self):
        mapper = MapModule("m", CustomModule("inc", lambda x: x + 1))
        with pytest.raises(ModuleExecutionError):
            mapper.run(5)

    def test_enrich_adds_key(self):
        stage = EnrichModule("e", lambda text: text.upper(), "text", "loud")
        assert stage.run({"text": "hi"}) == {"text": "hi", "loud": "HI"}

    def test_enrich_whole_doc(self):
        stage = EnrichModule(
            "e", lambda doc: len(doc["text"]), "text", "n", whole_doc=True
        )
        assert stage.run({"text": "abc"})["n"] == 3

    def test_enrich_does_not_mutate_input(self):
        stage = EnrichModule("e", lambda t: t, "text", "copy")
        doc = {"text": "x"}
        stage.run(doc)
        assert "copy" not in doc


class TestParsers:
    def test_parse_yes_no(self):
        assert parse_yes_no("Yes. Definitely.") is True
        assert parse_yes_no("no way") is False

    def test_parse_yes_no_rejects_other(self):
        with pytest.raises(MalformedResponseError):
            parse_yes_no("maybe?")

    def test_parse_leading_word(self):
        assert parse_leading_word("Sony. The product ...") == "Sony"

    def test_parse_leading_word_rejects_empty(self):
        with pytest.raises(MalformedResponseError):
            parse_leading_word("   ")

    def test_parse_number(self):
        assert parse_number("around 42.5 units") == 42.5

    def test_parse_number_rejects_no_number(self):
        with pytest.raises(MalformedResponseError):
            parse_number("none")


class TestValidators:
    def test_numeric_range(self):
        v = NumericRangeValidator(0, 10)
        assert v.check(5)[0] is True
        assert v.check(11)[0] is False
        assert v.check("5")[0] is False

    def test_numeric_range_rejects_bool(self):
        assert NumericRangeValidator(0, 1).check(True)[0] is False

    def test_choice_case_insensitive(self):
        v = ChoiceValidator(["Yes", "No"])
        assert v.check("yes")[0] is True
        assert v.check("maybe")[0] is False

    def test_regex(self):
        v = RegexValidator(r"[a-z]{2}")
        assert v.check("de")[0] is True
        assert v.check("deu")[0] is False
        assert v.check(5)[0] is False

    def test_type(self):
        v = TypeValidator(str, int)
        assert v.check("x")[0] is True
        assert v.check(1.5)[0] is False

    def test_predicate_catches_exceptions(self):
        v = PredicateValidator(lambda x: x["k"] > 0, "k positive")
        ok, message = v.check({})
        assert ok is False and "raised" in message

    def test_non_empty(self):
        v = NonEmptyValidator()
        assert v.check([1])[0] is True
        assert v.check([])[0] is False
        assert v.check(None)[0] is False
        assert v.check(0)[0] is True  # scalars pass


class TestLLMModule:
    def test_entity_matching_module(self, service):
        module = LLMModule(
            "match",
            service,
            task_description=(
                "Entity resolution: determine if the following two records "
                "refer to the same entity. Answer Yes or No."
            ),
            parser=parse_yes_no,
            render=lambda pair: (
                f'Record A: {{"name": "{pair[0]}"}}\nRecord B: {{"name": "{pair[1]}"}}'
            ),
            examples=[("Record A: x Record B: x", "Yes")],
        )
        assert module.run(("Stone IPA", "Stone IPA")) is True

    def test_prompt_contains_examples_and_instructions(self, service):
        module = LLMModule(
            "m",
            service,
            task_description="Do the thing.",
            instructions="Be careful.",
            examples=[("in", "out")],
        )
        prompt = module.build_prompt("payload")
        assert "Task: Do the thing." in prompt
        assert "Be careful." in prompt
        assert "Example 1:" in prompt
        assert prompt.rstrip().endswith("payload")

    def test_strict_reprompt_appended(self, service):
        module = LLMModule("m", service, task_description="t")
        assert "strictly" in module.build_prompt("x", strictness=1)
        assert "IMPORTANT" in module.build_prompt("x", strictness=2)

    def test_validation_failure_retries_then_raises(self, service):
        module = LLMModule(
            "m",
            service,
            task_description="Summarize the text.",
            parser=lambda text: text,
            validators=[ChoiceValidator(["impossible-answer"])],
            max_attempts=2,
        )
        with pytest.raises(ModuleExecutionError):
            module.run("Some text to summarize here.")
        assert module.validation_retries == 2


class TestLLMGC:
    def test_sandbox_compiles_and_runs(self):
        fn = compile_generated_code("def run(value, tools):\n    return value + 1\n")
        assert fn(1, {}) == 2

    def test_sandbox_blocks_disallowed_import(self):
        with pytest.raises(CodeSandboxError):
            compile_generated_code("import os\ndef run(value, tools):\n    return 1\n")

    def test_sandbox_allows_whitelisted_import(self):
        fn = compile_generated_code(
            "import re\ndef run(value, tools):\n    return bool(re.match('a', value))\n"
        )
        assert fn("abc", {}) is True

    def test_sandbox_requires_run(self):
        with pytest.raises(CodeSandboxError):
            compile_generated_code("x = 1\n")

    def test_sandbox_rejects_broken_code(self):
        with pytest.raises(CodeSandboxError):
            compile_generated_code("def run(value, tools)\n    return 1\n")

    def test_generate_and_run(self, service):
        module = LLMGCModule(
            "tok", service, task_description="tokenize a sentence into words"
        )
        module.generate()
        assert module.revision == 0
        assert module.run("a b") == ["a", "b"]

    def test_lazy_generation_on_first_run(self, service):
        module = LLMGCModule("tok", service, "tokenize text")
        assert module.source is None
        module.run("hello world")
        assert module.source is not None

    def test_repair_advances_revision(self, service):
        module = LLMGCModule("tok", service, "tokenize text")
        module.generate()
        module.repair("handle punctuation")
        assert module.revision == 1
        assert module.run("Hi there.") == ["Hi", "there", "."]

    def test_regenerate_from_scratch_resets(self, service):
        module = LLMGCModule("tok", service, "tokenize text")
        module.generate()
        module.repair("fix")
        module.regenerate_from_scratch()
        assert module.revision == 0

    def test_runtime_error_in_generated_code_is_wrapped(self, service):
        module = LLMGCModule("dedupe", service, "remove duplicate records")
        module.generate()
        with pytest.raises(ModuleExecutionError):
            module.run(42)  # not iterable of records
