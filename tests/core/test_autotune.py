"""End-to-end tests for profile-driven autotuning.

The contract: ``autotune=True`` NEVER changes outputs.  Cold runs with an
empty store behave exactly like untuned runs; warm runs apply only knobs
proven byte-identical (and prove warmth against the live cache before
touching the warm-only ones); every decision — applied or advisory — is
audited in ``report.tuning``; and the second run of the same app over the
same cache+store is measurably cheaper than the first.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.optimizer.autotune import (
    PlanTuner,
    ProfileStore,
    resolve_profile_path,
)
from repro.core.runtime.system import LinguaManga
from repro.core.templates.library import get_template
from repro.datasets import StreamingERCorpus
from repro.datasets.entity_resolution import generate_er_dataset
from repro.tasks.entity_resolution import run_lingua_manga_er


# CI's autotune-determinism matrix narrows the pinned worker counts per
# cell (each cell still compares against the workers=1 baseline); local
# runs cover the full set.
PINNED_WORKER_MATRIX = tuple(
    int(count)
    for count in os.environ.get("AUTOTUNE_MATRIX_WORKERS", "1 2 8").split()
)


@pytest.fixture(scope="module")
def er_dataset():
    return generate_er_dataset("beer", seed=7, n_entities=60)


def _paths(tmp_path, name):
    return tmp_path / f"{name}-cache.jsonl", tmp_path / f"{name}-prof.jsonl"


def _run(er_dataset, cache, profile, autotune=True, **kwargs):
    system = LinguaManga(cache_path=str(cache))
    return run_lingua_manga_er(
        system,
        er_dataset,
        autotune=autotune,
        profile_path=str(profile),
        **kwargs,
    )


class TestByteIdentity:
    def test_cold_run_matches_untuned(self, tmp_path, er_dataset):
        cache_a, prof = _paths(tmp_path, "a")
        cache_b, _ = _paths(tmp_path, "b")
        untuned = _run(er_dataset, cache_a, prof, autotune=False)
        tuned = _run(er_dataset, cache_b, prof)
        assert (
            untuned.report.canonical_json() == tuned.report.canonical_json()
        )
        assert untuned.report.tuning is None
        assert tuned.report.tuning is not None
        # An empty store proposes nothing: no history, no decisions.
        assert tuned.report.tuning["decisions"] == []
        assert tuned.report.tuning["verified_warm"] is False

    def test_warm_run_matches_untuned_warm_run(self, tmp_path, er_dataset):
        cache_a, prof = _paths(tmp_path, "a")
        cache_b, prof_b = _paths(tmp_path, "b")
        _run(er_dataset, cache_a, prof)  # cold, seeds cache + store
        _run(er_dataset, cache_b, prof_b, autotune=False)  # cold control
        untuned = _run(er_dataset, cache_b, prof_b, autotune=False)
        tuned = _run(er_dataset, cache_a, prof)
        assert (
            untuned.report.canonical_json() == tuned.report.canonical_json()
        )
        tuning = tuned.report.tuning
        assert tuning["verified_warm"] is True
        applied = {
            (d["op"], d["knob"]) for d in tuning["decisions"] if d["applied"]
        }
        assert ("*", "workers") in applied

    def test_tuning_excluded_from_canonical_report(self, tmp_path, er_dataset):
        cache, prof = _paths(tmp_path, "a")
        result = _run(er_dataset, cache, prof)
        assert result.report.tuning is not None
        assert "tuning" not in json.loads(result.report.canonical_json())
        # ... but rendered in the human-facing text.
        _run(er_dataset, cache, prof)


class TestConvergence:
    def test_second_run_is_cheaper(self, tmp_path, er_dataset):
        cache, prof = _paths(tmp_path, "a")
        first = _run(er_dataset, cache, prof)
        second = _run(er_dataset, cache, prof)
        assert first.cost > 0
        assert second.cost == 0.0
        assert second.llm_calls == 0
        # Identical task metrics either way.
        assert second.f1 == first.f1
        assert second.predictions == first.predictions

    def test_predictions_recorded_and_reconciled(self, tmp_path, er_dataset):
        cache, prof = _paths(tmp_path, "a")
        _run(er_dataset, cache, prof)
        second = _run(er_dataset, cache, prof)
        tuning = second.report.tuning
        # Verified warm: zero provider cost predicted, zero realized.
        assert tuning["predicted"]["cost"] == 0.0
        assert tuning["actual"]["cost"] == 0.0
        assert tuning["delta"]["cost"] == 0.0
        assert tuning["actual"]["provider_calls"] == 0

    def test_store_accumulates_observations(self, tmp_path, er_dataset):
        cache, prof = _paths(tmp_path, "a")
        _run(er_dataset, cache, prof)
        _run(er_dataset, cache, prof)
        store = ProfileStore(prof)
        state = store.state_dict()
        assert len(state["runs"]) == 1
        (plan_key,) = state["runs"]
        assert len(store.runs(plan_key)) == 2
        assert store.observations(plan_key)  # per-operator rows present
        store.close()


class TestDecisionDeterminism:
    def test_pinned_workers_identical_decisions(self, tmp_path, er_dataset):
        cache, prof = _paths(tmp_path, "a")
        _run(er_dataset, cache, prof)  # seed
        outcomes = []
        for workers in sorted({1, *PINNED_WORKER_MATRIX}):
            result = _run(er_dataset, cache, prof, workers=workers)
            tuning = result.report.tuning
            assert tuning["pinned"]["workers"] == workers
            outcomes.append(
                (
                    result.report.canonical_json(),
                    json.dumps(tuning["decisions"], sort_keys=True),
                )
            )
        reports = {report for report, _ in outcomes}
        decisions = {decision for _, decision in outcomes}
        assert len(reports) == 1
        assert len(decisions) == 1

    def test_pinned_knobs_never_overridden(self, tmp_path, er_dataset):
        cache, prof = _paths(tmp_path, "a")
        _run(er_dataset, cache, prof)
        result = _run(
            er_dataset, cache, prof, workers=2, columnar=False
        )
        tuning = result.report.tuning
        assert tuning["pinned"] == {"workers": 2, "columnar": False}
        knobs = {d["knob"] for d in tuning["decisions"]}
        assert "workers" not in knobs
        assert "columnar" not in knobs


class TestCheckpointInteraction:
    def test_checkpointed_autotune_stays_resumable(self, tmp_path, er_dataset):
        cache, prof = _paths(tmp_path, "a")
        _run(er_dataset, cache, prof)  # warm the store + cache
        ckpt = tmp_path / "run.ckpt.jsonl"
        result = _run(er_dataset, cache, prof, checkpoint_path=str(ckpt))
        tuning = result.report.tuning
        # Chunk-size/prefetch tuning must NOT apply: tuned boundaries are
        # not what the journal would record.
        for decision in tuning["decisions"]:
            if decision["knob"] in ("chunk_size", "prefetch"):
                assert not decision["applied"]
        control = _run(er_dataset, cache, prof, autotune=False, workers=1)
        assert (
            result.report.canonical_json() == control.report.canonical_json()
        )


class TestStreaming:
    def _stream(self, tmp_path, autotune, name="s", workers=None):
        corpus = StreamingERCorpus(32, seed=7)
        pipeline = get_template("entity_resolution").instantiate(
            examples=StreamingERCorpus(32, seed=7).examples()
        )
        system = LinguaManga(cache_path=str(tmp_path / f"{name}-cache.jsonl"))
        return system.run_stream(
            pipeline,
            {"pairs": corpus.inputs()},
            workers=workers,
            chunk_size=8,
            source_id=corpus.fingerprint,
            autotune=autotune,
            profile_path=str(tmp_path / f"{name}-prof.jsonl"),
        )

    def test_streaming_cold_matches_untuned(self, tmp_path):
        untuned = self._stream(tmp_path, autotune=False, name="a", workers=1)
        tuned = self._stream(tmp_path, autotune=True, name="b")
        assert untuned.canonical_json() == tuned.canonical_json()

    def test_streaming_warm_tunes_workers_only(self, tmp_path):
        self._stream(tmp_path, autotune=True, name="a")
        self._stream(tmp_path, autotune=False, name="b", workers=1)
        untuned = self._stream(tmp_path, autotune=False, name="b", workers=1)
        tuned = self._stream(tmp_path, autotune=True, name="a")
        assert untuned.canonical_json() == tuned.canonical_json()
        applied = {
            d["knob"] for d in tuned.tuning["decisions"] if d["applied"]
        }
        assert applied <= {"workers"}

    def test_stream_never_verifies_warm_even_from_legacy_store(self, tmp_path):
        """A warm-looking store must not unlock chunk/prefetch for streams.

        The streaming plan key is built from ``fingerprint(None)`` — it
        excludes the input data — so stored digests from a previous run
        prove nothing about the incoming iterable.  Even a store whose
        last stream run claims ``warm_eligible`` with every digest live
        in the exact tier (e.g. written before the engine gate existed)
        must tune workers only.
        """
        from repro.core.optimizer.autotune import (
            Observation,
            RunObservation,
            op_config_digest,
        )

        corpus = StreamingERCorpus(16, seed=7)
        pairs = list(corpus.inputs())
        pipeline = get_template("entity_resolution").instantiate(
            examples=StreamingERCorpus(16, seed=7).examples()
        )
        system = LinguaManga(cache_path=str(tmp_path / "cache.jsonl"))
        plan = system.compile(pipeline)
        plan.execute({"pairs": pairs})  # warm the live exact tier
        live = system.service.cache.exact_digests()
        assert live

        store = ProfileStore(None)
        tuner = PlanTuner(store, plan, system.service, engine="stream")
        plan_key = tuner.plan_key(None)
        for binding in plan.bound:
            store.append(
                Observation(
                    plan=plan_key,
                    op=binding.operator.name,
                    op_config=op_config_digest(binding.module.config_identity()),
                    engine="stream",
                    records_in=len(pairs),
                    row={"calls": len(pairs), "provider_calls": len(pairs),
                         "cost": 0.1, "provider_seconds": 1.0},
                    wall_seconds=0.05,
                    knobs={},
                )
            )
        store.append(
            RunObservation(
                plan=plan_key,
                engine="stream",
                seq=1,
                records_in=len(pairs),
                totals={},
                wall_seconds=0.1,
                knobs={},
                coalesced=0,
                latency_hist=[],
                key_digests=sorted(live),
                warm_eligible=True,  # forged: pre-gate stores could claim this
            )
        )
        tuning = tuner.tune(None)
        assert tuning.verified_warm is False
        knobs = {decision.knob for decision in tuning.decisions}
        assert "chunk_size" not in knobs
        assert "prefetch" not in knobs
        assert tuning.module_knobs == []

    def test_stream_runs_recorded_warm_ineligible(self, tmp_path):
        """Stream run lines persist ``warm_eligible=False`` by design."""
        self._stream(tmp_path, autotune=True, name="a")
        store = ProfileStore(tmp_path / "a-prof.jsonl")
        (plan_key,) = store.state_dict()["runs"]
        last = store.last_run(plan_key)
        assert last.warm_eligible is False
        assert last.key_digests == []
        store.close()

    def test_distilled_seconds_surfaced_separately(self, tmp_path):
        report = self._stream(tmp_path, autotune=False, name="a", workers=1)
        payload = json.loads(report.canonical_json())
        assert "provider_seconds" in payload["cost"]
        assert "distilled_seconds" in payload["cost"]
        assert payload["cost"]["distilled_seconds"] == 0.0


class TestRunSeq:
    def test_seq_outlives_compaction_window(self, tmp_path):
        """Run seq keeps counting past the keep-N retention window.

        The store retains at most ``keep`` runs per plan, so deriving seq
        from the bucket length would saturate at keep+1; it must continue
        from the last retained run's seq instead.
        """
        from repro.core.optimizer.autotune import observe_run

        corpus = StreamingERCorpus(8, seed=7)
        pairs = list(corpus.inputs())
        pipeline = get_template("entity_resolution").instantiate(
            examples=StreamingERCorpus(8, seed=7).examples()
        )
        system = LinguaManga(cache_path=str(tmp_path / "cache.jsonl"))
        store = ProfileStore(tmp_path / "prof.jsonl", keep=2)
        plan_key = None
        for _ in range(4):
            plan = system.compile(pipeline)
            tuner = PlanTuner(store, plan, system.service, engine="batch")
            tuning = tuner.tune({"pairs": pairs})
            with tuning.applied(), observe_run() as walltime:
                report = plan.execute({"pairs": pairs})
            tuner.record(report, walltime["wall_seconds"])
            plan_key = tuning.plan_key
        assert [run.seq for run in store.runs(plan_key)] == [3, 4]
        store.close()


class TestStoreResolution:
    def test_derives_path_beside_cache_journal(self, tmp_path):
        system = LinguaManga(cache_path=str(tmp_path / "cache.jsonl"))
        path = resolve_profile_path(None, system.service)
        assert path == tmp_path / "cache.autotune.jsonl"

    def test_explicit_path_wins(self, tmp_path):
        system = LinguaManga(cache_path=str(tmp_path / "cache.jsonl"))
        explicit = tmp_path / "elsewhere.jsonl"
        assert resolve_profile_path(explicit, system.service) == explicit

    def test_memory_only_without_cache_journal(self):
        system = LinguaManga()
        assert resolve_profile_path(None, system.service) is None
        # Memory-only store still powers a full tune/record cycle.
        store = ProfileStore(None)
        assert store.compact() == 0


class TestTraceAndText:
    def test_tuning_span_emitted_when_observed(self, tmp_path, er_dataset):
        from repro.obs import Observability

        cache, prof = _paths(tmp_path, "a")
        _run(er_dataset, cache, prof)
        obs = Observability()
        system = LinguaManga(cache_path=str(cache), obs=obs)
        run_lingua_manga_er(
            system, er_dataset, autotune=True, profile_path=str(prof)
        )
        spans = [
            record
            for record in obs.tracer.to_records()
            if record.get("kind") == "tuning"
        ]
        assert len(spans) == 1
        assert spans[0]["attributes"]["decisions"] > 0

    def test_to_text_renders_decisions(self, tmp_path, er_dataset):
        cache, prof = _paths(tmp_path, "a")
        _run(er_dataset, cache, prof)
        second = _run(er_dataset, cache, prof)
        text = second.report.to_text()
        assert "tuning:" in text
        assert "workers" in text
