"""Direct unit tests for cross-checked prompting (repro.core.optimizer.crosscheck)."""

from __future__ import annotations

import pytest

from repro.core.modules.base import Module
from repro.core.modules.llm_module import LLMModule
from repro.core.optimizer.crosscheck import (
    CrossCheckStats,
    CrossCheckedModule,
    make_llm_variants,
)
from repro.llm.providers import SimulatedProvider
from repro.llm.service import LLMService


class Fixed(Module):
    """A module that always answers the same thing."""

    module_type = "custom"

    def __init__(self, name: str, answer):
        super().__init__(name)
        self.answer = answer

    def _run(self, value):
        return self.answer


def checked(*answers, fallback=...):
    variants = [Fixed(f"v{i}", answer) for i, answer in enumerate(answers)]
    if fallback is ...:
        return CrossCheckedModule("x", variants)
    return CrossCheckedModule("x", variants, fallback=fallback)


class TestCrossCheckedModule:
    def test_needs_at_least_two_variants(self):
        with pytest.raises(ValueError, match="at least two"):
            CrossCheckedModule("x", [Fixed("only", 1)])

    def test_unanimous_answer_passes_through(self):
        module = checked("yes", "yes", "yes")
        assert module.run("q") == "yes"
        assert module.check_stats.unanimous == 1
        assert module.check_stats.flag_rate() == 0.0

    def test_majority_outvotes_dissenter(self):
        # The first variant hallucinates; the majority corrects it.
        module = checked("no", "yes", "yes")
        assert module.run("q") == "yes"
        assert module.check_stats.majority == 1
        assert module.check_stats.unanimous == 0

    def test_full_disagreement_uses_fallback(self):
        module = checked("a", "b", "c", fallback="unsure")
        assert module.run("q") == "unsure"
        assert module.check_stats.disagreements == 1

    def test_full_disagreement_without_fallback_trusts_primary(self):
        module = checked("a", "b", "c")
        assert module.run("q") == "a"
        assert module.check_stats.disagreements == 1

    def test_none_is_a_legal_fallback(self):
        # ``None`` must be distinguishable from "no fallback configured".
        module = checked("a", "b", "c", fallback=None)
        assert module.run("q") is None

    def test_even_split_trusts_primary(self):
        module = checked("a", "a", "b", "b")
        assert module.run("q") == "a"
        assert module.check_stats.disagreements == 1

    def test_stats_accumulate_over_inputs(self):
        module = checked("yes", "yes", "yes")
        for _ in range(3):
            module.run("q")
        assert module.check_stats.total == 3

    def test_describe_mentions_variant_count_and_stats(self):
        module = checked("yes", "yes", "yes")
        module.run("q")
        text = module.describe()
        assert "cross-check x3" in text
        assert "unanimous=1" in text


class TestCrossCheckStats:
    def test_flag_rate_counts_any_dissent(self):
        stats = CrossCheckStats(unanimous=2, majority=1, disagreements=1)
        assert stats.total == 4
        assert stats.flag_rate() == pytest.approx(0.5)

    def test_empty_stats_flag_rate_is_zero(self):
        assert CrossCheckStats().flag_rate() == 0.0

    def test_to_text_is_one_line(self):
        text = CrossCheckStats(unanimous=1).to_text()
        assert "\n" not in text
        assert "flag_rate=0%" in text


class TestMakeLLMVariants:
    def make_module(self) -> LLMModule:
        service = LLMService(SimulatedProvider())
        return LLMModule(
            name="judge",
            service=service,
            task_description="Decide whether the two records match.",
            examples=[("a ||| a", "yes")],
        )

    def test_original_module_is_first_variant(self):
        module = self.make_module()
        variants = make_llm_variants(module, ["Paraphrase one.", "Paraphrase two."])
        assert variants[0] is module
        assert len(variants) == 3

    def test_clones_get_paraphrased_descriptions_and_fresh_names(self):
        module = self.make_module()
        variants = make_llm_variants(module, ["Paraphrase one."])
        clone = variants[1]
        assert clone.name == "judge_v1"
        assert clone.task_description == "Paraphrase one."
        assert clone.task_description != module.task_description

    def test_clones_share_service_and_parser_but_not_example_lists(self):
        module = self.make_module()
        clone = make_llm_variants(module, ["p"])[1]
        assert clone.service is module.service
        assert clone.parser is module.parser
        assert clone.examples == module.examples
        assert clone.examples is not module.examples
