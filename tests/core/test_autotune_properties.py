"""Property-based laws for the autotune profile store and cost models.

The unit and e2e suites exercise the tuner on the real demo pipelines;
these properties quantify over arbitrary store contents instead:

- append → reload and append → compact → reload both reproduce exactly
  the retained state (round-trip identity);
- a torn or corrupt tail is truncated and counted, never raised, and the
  intact prefix survives (crash recovery);
- merging two stores is commutative: ``a.merge(b)`` and ``b.merge(a)``
  retain identical state no matter which run wrote which store first;
- fitted cost models are monotonic: predicting for more records never
  yields a lower cost, fewer provider calls or less time.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optimizer.autotune import (
    Observation,
    OperatorCostModel,
    ProfileStore,
    RunObservation,
    fit_cost_model,
    latency_histogram,
)

# -- strategies ---------------------------------------------------------------

_floats = st.floats(
    min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False
)
_counts = st.integers(min_value=0, max_value=500)


@st.composite
def profile_rows(draw):
    calls = draw(_counts)
    provider = draw(st.integers(min_value=0, max_value=calls)) if calls else 0
    cached = calls - provider
    exact = draw(st.integers(min_value=0, max_value=cached)) if cached else 0
    near = (
        draw(st.integers(min_value=0, max_value=cached - exact))
        if cached - exact
        else 0
    )
    distilled = cached - exact - near
    return {
        "module": draw(st.sampled_from(["match", "extract", "impute"])),
        "calls": calls,
        "provider_calls": provider,
        "cache_exact": exact,
        "cache_near": near,
        "distilled": distilled,
        "cost": draw(_floats),
        "latency_seconds": draw(_floats),
        "provider_seconds": draw(_floats),
        "distilled_seconds": draw(_floats),
        "retries": 0,
        "fallbacks": 0,
        "failures": 0,
        "quarantined": 0,
    }


@st.composite
def observations(draw):
    return Observation(
        plan=draw(st.sampled_from(["plan-a", "plan-b"])),
        op=draw(st.sampled_from(["match", "extract", "impute"])),
        op_config=draw(st.sampled_from(["cfg1", "cfg2"])),
        engine=draw(st.sampled_from(["batch", "stream"])),
        records_in=draw(st.integers(min_value=1, max_value=10_000)),
        row=draw(profile_rows()),
        wall_seconds=draw(_floats),
        knobs={"workers": draw(st.sampled_from([None, 1, 2, 8]))},
    )


@st.composite
def run_observations(draw):
    return RunObservation(
        plan=draw(st.sampled_from(["plan-a", "plan-b"])),
        engine=draw(st.sampled_from(["batch", "stream"])),
        seq=draw(st.integers(min_value=1, max_value=64)),
        records_in=draw(st.integers(min_value=0, max_value=10_000)),
        totals=draw(profile_rows()),
        wall_seconds=draw(_floats),
        knobs={"workers": draw(st.sampled_from([None, 1, 8]))},
        coalesced=draw(_counts),
        latency_hist=latency_histogram(
            draw(st.lists(_floats, max_size=16))
        ),
        key_digests=draw(
            st.lists(st.text("0123456789abcdef", min_size=4, max_size=16), max_size=8)
        ),
        warm_eligible=draw(st.booleans()),
    )


_any_observation = st.one_of(observations(), run_observations())


def _roundtrip(store_path, entries, keep):
    store = ProfileStore(store_path, keep=keep)
    for entry in entries:
        store.append(entry)
    state = store.state_dict()
    store.close()
    return state


# -- store round-trips --------------------------------------------------------


class TestStoreRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(entries=st.lists(_any_observation, max_size=24),
           keep=st.integers(min_value=1, max_value=8))
    def test_append_reload_roundtrip(self, entries, keep):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "prof.jsonl"
            state = _roundtrip(path, entries, keep)
            reloaded = ProfileStore(path, keep=keep)
            assert reloaded.torn_bytes == 0
            assert reloaded.state_dict() == state
            reloaded.close()

    @settings(max_examples=25, deadline=None)
    @given(entries=st.lists(_any_observation, max_size=24),
           keep=st.integers(min_value=1, max_value=4))
    def test_compact_preserves_state(self, entries, keep):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "prof.jsonl"
            store = ProfileStore(path, keep=keep)
            for entry in entries:
                store.append(entry)
            state = store.state_dict()
            written = store.compact()
            assert store.state_dict() == state
            store.close()
            reloaded = ProfileStore(path, keep=keep)
            assert reloaded.lines_loaded == written
            assert reloaded.state_dict() == state
            reloaded.close()

    @settings(max_examples=25, deadline=None)
    @given(entries=st.lists(_any_observation, max_size=12),
           cut=st.integers(min_value=1, max_value=40),
           garbage=st.binary(min_size=0, max_size=64))
    def test_torn_tail_truncated_never_raised(self, entries, cut, garbage):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "prof.jsonl"
            store = ProfileStore(path)
            for entry in entries:
                store.append(entry)
            intact = store.state_dict()
            store.close()
            # Smear an unterminated record fragment after the intact
            # prefix, the way a crash mid-write does.
            torn = (b'{"kind": "op", "plan": "x', garbage.replace(b"\n", b""))
            path.open("ab").write(torn[0][:cut] + torn[1])
            recovered = ProfileStore(path)
            assert recovered.torn_bytes > 0
            assert recovered.state_dict() == intact
            recovered.close()

    @settings(max_examples=40, deadline=None)
    @given(left=st.lists(_any_observation, max_size=16),
           right=st.lists(_any_observation, max_size=16))
    def test_merge_commutative(self, left, right):
        a = ProfileStore()
        b = ProfileStore()
        for entry in left:
            a.append(entry)
        for entry in right:
            b.append(entry)
        assert a.merge(b).state_dict() == b.merge(a).state_dict()

    @settings(max_examples=40, deadline=None)
    @given(entries=st.lists(_any_observation, max_size=16))
    def test_merge_idempotent_on_duplicates(self, entries):
        # Merging a store with itself carries no new information: it equals
        # merging with an empty store (both canonicalize to obs_id order).
        a = ProfileStore()
        for entry in entries:
            a.append(entry)
        assert a.merge(a).state_dict() == a.merge(ProfileStore()).state_dict()


# -- cost-model monotonicity --------------------------------------------------


class TestCostModelMonotonicity:
    @settings(max_examples=60, deadline=None)
    @given(obs=st.lists(observations(), max_size=12),
           smaller=st.integers(min_value=0, max_value=5_000),
           delta=st.integers(min_value=0, max_value=5_000),
           hit_rate=st.one_of(st.none(), st.floats(min_value=0.0, max_value=1.0)))
    def test_more_records_never_cheaper(self, obs, smaller, delta, hit_rate):
        model = fit_cost_model("op", obs)
        low = model.predict(smaller, hit_rate=hit_rate)
        high = model.predict(smaller + delta, hit_rate=hit_rate)
        for key in ("provider_calls", "cost", "provider_seconds", "wall_seconds"):
            assert high[key] >= low[key]

    @settings(max_examples=60, deadline=None)
    @given(obs=st.lists(observations(), max_size=12))
    def test_fitted_coefficients_nonnegative(self, obs):
        model = fit_cost_model("op", obs)
        assert model.calls_per_record >= 0.0
        assert model.per_call_cost >= 0.0
        assert model.per_call_seconds >= 0.0
        assert model.per_record_wall >= 0.0
        assert model.base_wall >= 0.0
        assert 0.0 <= model.hit_rate <= 1.0

    @settings(max_examples=30, deadline=None)
    @given(obs=st.lists(observations(), min_size=1, max_size=12),
           records=st.integers(min_value=0, max_value=10_000))
    def test_warm_extrapolation_is_free(self, obs, records):
        # hit_rate=1.0 is the verified-warm extrapolation: no paid calls.
        model = fit_cost_model("op", obs)
        warm = model.predict(records, hit_rate=1.0)
        assert warm["provider_calls"] == 0.0
        assert warm["cost"] == 0.0
        assert warm["provider_seconds"] == 0.0

    def test_per_call_seconds_over_provider_path_records(self):
        # provider_seconds includes failed attempts' latency, so the
        # per-call rate divides by paid + failed, not paid alone — a
        # retried run must not bias the latency estimate upward.
        rows = [
            Observation(
                plan="p", op="op", op_config="c", engine="batch",
                records_in=10,
                row={"calls": 10, "provider_calls": 4, "failures": 2,
                     "cache_exact": 4, "cache_near": 0, "distilled": 0,
                     "cost": 0.4, "provider_seconds": 3.0,
                     "distilled_seconds": 0.0},
                wall_seconds=0.1,
                knobs={},
            )
        ]
        model = fit_cost_model("op", rows)
        assert model.per_call_seconds == 3.0 / 6
        assert model.per_call_cost == 0.4 / 4

    def test_deterministic_given_store_contents(self):
        rows = [
            Observation(
                plan="p", op="op", op_config="c", engine="batch",
                records_in=10 * (i + 1),
                row={"calls": 10, "provider_calls": 4, "cache_exact": 6,
                     "cache_near": 0, "distilled": 0, "cost": 0.4,
                     "provider_seconds": 2.0, "distilled_seconds": 0.0},
                wall_seconds=0.1 * (i + 1),
                knobs={},
            )
            for i in range(4)
        ]
        assert fit_cost_model("op", rows) == fit_cost_model("op", list(rows))
        assert isinstance(fit_cost_model("op", []), OperatorCostModel)
