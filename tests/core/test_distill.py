"""The cost-minimizing distillation router (tier 3 of call avoidance)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.modules.base import Module
from repro.core.optimizer.distill import DistillationRouter
from repro.llm.cache import PROVENANCE_DISTILLED
from repro.llm.faults import ChaosProvider, FaultKind, FaultSpec
from repro.llm.providers import LLMRequest, SimulatedProvider
from repro.llm.service import LLMService


class SignTeacher(Module):
    """Deterministic teacher: ``value > 0``; can drift or go down."""

    module_type = "custom"

    def __init__(self, flip_after: int | None = None):
        super().__init__("sign_teacher")
        self.calls = 0
        self.flip_after = flip_after
        self.down = False

    def _run(self, value):
        if self.down:
            raise RuntimeError("teacher unavailable")
        self.calls += 1
        label = value > 0
        if self.flip_after is not None and self.calls > self.flip_after:
            label = not label  # concept drift: verdicts invert
        return bool(label)


class FlakyTeacher(Module):
    """Teacher that really consults a (chaos-injected) provider."""

    module_type = "llm"

    def __init__(self, chaos: ChaosProvider):
        super().__init__("flaky_teacher")
        self.chaos = chaos

    def _run(self, value):
        # The provider round trip can raise injected faults; the label
        # itself is deterministic so the student has something learnable.
        self.chaos.complete(LLMRequest(prompt=f"sign of {value}", max_tokens=8))
        return value > 0


def vectorize(value) -> np.ndarray:
    return np.array([float(value), 1.0])


def stream(n: int) -> list[float]:
    """Separable, alternating-sign inputs with varied magnitude."""
    return [(1.0 + index % 5) * (1 if index % 2 == 0 else -1) for index in range(n)]


def make_router(teacher, service=None, **overrides) -> DistillationRouter:
    service = service or LLMService(SimulatedProvider())
    config = dict(
        featurize=str,
        vectorize=vectorize,
        min_samples=20,
        accuracy_bar=0.9,
        confidence_threshold=0.6,
        refit_every=10,
        audit_every=5,
        min_audits=3,
        demote_below=0.7,
    )
    config.update(overrides)
    return DistillationRouter("router", teacher, service, **config)


class TestPromotion:
    def test_warmup_goes_entirely_to_the_teacher(self):
        teacher = SignTeacher()
        router = make_router(teacher)
        for value in stream(19):
            router.run(value)
        assert teacher.calls == 19
        assert not router.promoted
        assert router.distill_stats.student_calls == 0

    def test_promotes_once_holdout_accuracy_clears_bar(self):
        router = make_router(SignTeacher())
        for value in stream(40):
            router.run(value)
        assert router.promoted
        assert router.holdout_accuracy >= 0.9
        assert router.distill_stats.promotions == 1

    def test_promoted_student_answers_and_is_ledgered(self):
        service = LLMService(SimulatedProvider())
        teacher = SignTeacher()
        router = make_router(teacher, service=service)
        values = stream(120)
        outputs = [router.run(value) for value in values]
        assert outputs == [value > 0 for value in values]  # quality held
        stats = router.distill_stats
        assert stats.student_calls > 0
        assert teacher.calls < len(values)  # the provider bill dropped
        # Every locally answered record is on the service ledger with
        # ``distilled`` provenance, zero cost, cached outcome.
        distilled = [r for r in service.records if r.provenance == PROVENANCE_DISTILLED]
        assert len(distilled) == stats.student_calls
        assert all(r.cost == 0.0 and r.cached for r in distilled)
        assert service.usage().distilled_calls == stats.student_calls

    def test_audits_sample_the_confident_stream(self):
        router = make_router(SignTeacher())
        for value in stream(120):
            router.run(value)
        assert router.distill_stats.audits > 0
        assert router.distill_stats.audit_disagreements == 0
        assert router.promoted  # perfect agreement never demotes

    def test_rejects_unknown_student(self):
        with pytest.raises(ValueError):
            make_router(SignTeacher(), student="svm")

    def test_rejects_bad_accuracy_bar(self):
        with pytest.raises(ValueError):
            make_router(SignTeacher(), accuracy_bar=0.0)


class TestDemotion:
    def test_drifted_teacher_demotes_the_student(self):
        # Teacher verdicts invert after call 60: audits start disagreeing
        # and rolling agreement falls below demote_below.
        teacher = SignTeacher(flip_after=60)
        router = make_router(teacher)
        for value in stream(400):
            router.run(value)
        assert router.distill_stats.audit_disagreements > 0
        assert router.distill_stats.demotions >= 1

    def test_demotion_resets_promotion_state(self):
        router = make_router(SignTeacher())
        for value in stream(40):
            router.run(value)
        assert router.promoted
        router._demote()
        assert not router.promoted
        assert router.holdout_accuracy == 0.0
        assert router.distill_stats.demotions == 1


class TestTeacherOutage:
    def test_outage_before_any_model_propagates(self):
        teacher = SignTeacher()
        teacher.down = True
        router = make_router(teacher)
        with pytest.raises(Exception):
            router.run(1.0)

    def test_trained_student_degrades_instead_of_failing(self):
        service = LLMService(SimulatedProvider())
        teacher = SignTeacher()
        router = make_router(teacher, service=service)
        for value in stream(40):
            router.run(value)
        assert router.promoted
        teacher.down = True
        router.confidence_threshold = 2.0  # force the deferral path
        answer = router.run(4.0)
        assert answer is True  # the student's learned verdict
        assert router.distill_stats.degraded_answers == 1
        degraded = [r for r in service.records if r.skill == "distilled-degraded"]
        assert len(degraded) == 1
        assert degraded[0].provenance == PROVENANCE_DISTILLED


class TestUnderChaosFaults:
    def test_promotes_and_keeps_routing_despite_injected_faults(self):
        chaos = ChaosProvider(
            SimulatedProvider(),
            [FaultSpec(kind=FaultKind.TRANSIENT, rate=0.25)],
            seed=9,
        )
        service = LLMService(SimulatedProvider())
        router = make_router(FlakyTeacher(chaos), service=service)
        handled = faults_seen = 0
        for value in stream(200):
            try:
                assert router.run(value) == (value > 0)
                handled += 1
            except Exception:
                faults_seen += 1  # pre-model teacher faults surface
        assert chaos.injected[FaultKind.TRANSIENT] > 0
        assert router.promoted
        assert router.distill_stats.student_calls > 0
        assert handled > faults_seen
        # Post-promotion provider faults become degraded student answers,
        # not run failures.
        assert router.distill_stats.degraded_answers > 0

    def test_describe_reports_routing_state(self):
        router = make_router(SignTeacher())
        assert "shadow-training" in router.describe()
        for value in stream(40):
            router.run(value)
        assert "promoted" in router.describe()
