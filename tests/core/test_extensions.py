"""Tests for the extension features: cross-checking and the logical rewriter."""

from __future__ import annotations

import pytest

from repro.core.compiler.rewriter import rewrite_pipeline
from repro.core.dsl.builder import PipelineBuilder
from repro.core.dsl.operators import LogicalOperator, OperatorKind
from repro.core.dsl.pipeline import Pipeline
from repro.core.modules.custom import CustomModule
from repro.core.modules.llm_module import LLMModule, parse_leading_word
from repro.core.optimizer.crosscheck import CrossCheckedModule, make_llm_variants


class TestCrossCheckedModule:
    def test_unanimous_answer_passes_through(self):
        variants = [CustomModule(f"v{i}", lambda x: x * 2) for i in range(3)]
        module = CrossCheckedModule("cc", variants)
        assert module.run(4) == 8
        assert module.check_stats.unanimous == 1

    def test_majority_outvotes_hallucination(self):
        good = CustomModule("g1", lambda x: "Sony")
        good2 = CustomModule("g2", lambda x: "Sony")
        hallucinating = CustomModule("h", lambda x: "Samsung")
        module = CrossCheckedModule("cc", [hallucinating, good, good2])
        assert module.run("product") == "Sony"
        assert module.check_stats.majority == 1

    def test_full_disagreement_uses_fallback(self):
        variants = [
            CustomModule("a", lambda x: "one"),
            CustomModule("b", lambda x: "two"),
            CustomModule("c", lambda x: "three"),
        ]
        module = CrossCheckedModule("cc", variants, fallback="Unknown")
        assert module.run("x") == "Unknown"
        assert module.check_stats.disagreements == 1

    def test_disagreement_without_fallback_trusts_primary(self):
        variants = [CustomModule("a", lambda x: "one"), CustomModule("b", lambda x: "two")]
        module = CrossCheckedModule("cc", variants)
        assert module.run("x") == "one"

    def test_needs_two_variants(self):
        with pytest.raises(ValueError):
            CrossCheckedModule("cc", [CustomModule("only", lambda x: x)])

    def test_flag_rate(self):
        variants = [CustomModule("a", lambda x: x), CustomModule("b", lambda x: x)]
        module = CrossCheckedModule("cc", variants)
        module.run(1)
        assert module.check_stats.flag_rate() == 0.0

    def test_llm_variants_share_configuration(self, service):
        base = LLMModule(
            "impute",
            service,
            task_description="Which company is the manufacturer of this product?",
            parser=parse_leading_word,
            payload_label="Product",
        )
        variants = make_llm_variants(base, ["Who makes this product? Name the manufacturer."])
        assert len(variants) == 2
        assert variants[0] is base
        assert variants[1].payload_label == "Product"
        assert variants[1].task_description != base.task_description

    def test_cross_checked_imputation_end_to_end(self, service):
        base = LLMModule(
            "impute",
            service,
            task_description=(
                "Which company is the manufacturer of this product? Answer "
                "with the company name only."
            ),
            parser=parse_leading_word,
            payload_label="Product",
        )
        variants = make_llm_variants(
            base,
            [
                "Name the company that manufactures the following product. "
                "Answer with the company name only.",
                "Identify the manufacturer of this product. Answer with the "
                "company name only.",
            ],
        )
        module = CrossCheckedModule("impute_cc", variants)
        answer = module.run({"name": "PlayStation 2 Memory Card"})
        assert answer == "Sony"


class TestRewriter:
    def make_chain(self, *kinds_params) -> Pipeline:
        builder = PipelineBuilder("p")
        builder.load(source="values")
        for kind, params in kinds_params:
            builder.add(kind, **params)
        builder.save(key="out")
        return builder.build()

    def test_fuses_duplicate_dedupes(self):
        pipeline = self.make_chain(
            (OperatorKind.DEDUPE, {"impl": "custom"}),
            (OperatorKind.DEDUPE, {"impl": "custom"}),
        )
        rewritten, report = rewrite_pipeline(pipeline)
        assert len(rewritten.operators) == len(pipeline.operators) - 1
        assert any("fused" in rule for rule in report.applied)

    def test_fuses_duplicate_clean_text(self):
        pipeline = self.make_chain(
            (OperatorKind.CLEAN_TEXT, {"impl": "custom"}),
            (OperatorKind.CLEAN_TEXT, {"impl": "custom"}),
        )
        rewritten, _ = rewrite_pipeline(pipeline)
        kinds = [op.kind for op in rewritten.topological_order()]
        assert kinds.count(OperatorKind.CLEAN_TEXT) == 1

    def test_different_params_not_fused(self):
        pipeline = self.make_chain(
            (OperatorKind.CLEAN_TEXT, {"impl": "custom"}),
            (OperatorKind.CLEAN_TEXT, {"impl": "llmgc"}),
        )
        rewritten, report = rewrite_pipeline(pipeline)
        assert report.applied == []
        assert len(rewritten.operators) == len(pipeline.operators)

    def test_pushes_filter_below_dedupe(self):
        predicate = lambda r: True  # noqa: E731
        pipeline = self.make_chain(
            (OperatorKind.DEDUPE, {"impl": "custom"}),
            (OperatorKind.FILTER, {"predicate": predicate}),
        )
        rewritten, report = rewrite_pipeline(pipeline)
        kinds = [op.kind for op in rewritten.topological_order()]
        assert kinds.index(OperatorKind.FILTER) < kinds.index(OperatorKind.DEDUPE)
        assert any("pushed filter" in rule for rule in report.applied)

    def test_filter_not_pushed_past_impure_transform(self):
        pipeline = self.make_chain(
            (OperatorKind.TRANSFORM, {"fn": lambda x: x}),
            (OperatorKind.FILTER, {"predicate": lambda r: True}),
        )
        _, report = rewrite_pipeline(pipeline)
        assert report.applied == []

    def test_filter_pushed_past_pure_transform(self):
        pipeline = self.make_chain(
            (OperatorKind.TRANSFORM, {"fn": lambda x: x}),
            (OperatorKind.FILTER, {"predicate": lambda r: True, "pure": True}),
        )
        _, report = rewrite_pipeline(pipeline)
        assert any("pushed filter" in rule for rule in report.applied)

    def test_branching_dag_untouched(self):
        pipeline = Pipeline("dag")
        pipeline.add(LogicalOperator("src", OperatorKind.LOAD))
        pipeline.add(LogicalOperator("a", OperatorKind.DEDUPE, {"impl": "custom"}, ["src"]))
        pipeline.add(LogicalOperator("b", OperatorKind.DEDUPE, {"impl": "custom"}, ["src"]))
        pipeline.add(LogicalOperator("j", OperatorKind.CUSTOM, {"fn": lambda v: v}, ["a", "b"]))
        rewritten, report = rewrite_pipeline(pipeline)
        assert rewritten is pipeline
        assert report.applied == []

    def test_rewritten_pipeline_still_executes(self, system):
        pipeline = self.make_chain(
            (OperatorKind.CLEAN_TEXT, {"impl": "custom"}),
            (OperatorKind.DEDUPE, {"impl": "custom"}),
            (OperatorKind.DEDUPE, {"impl": "custom"}),
        )
        plan = system.compile(pipeline, optimize=True)
        assert system.compiler.last_rewrite is not None
        assert system.compiler.last_rewrite.applied
        report = plan.execute({"values": ["A", "a ", "b"]})
        assert next(iter(report.outputs.values())) == ["a", "b"]

    def test_rewrite_preserves_semantics(self, system):
        values = ["X", "x", " y", "Y ", "z"]
        pipeline_plain = self.make_chain(
            (OperatorKind.CLEAN_TEXT, {"impl": "custom"}),
            (OperatorKind.DEDUPE, {"impl": "custom"}),
            (OperatorKind.DEDUPE, {"impl": "custom"}),
        )
        out_plain = next(
            iter(system.run(pipeline_plain, {"values": values}).outputs.values())
        )
        pipeline_opt = self.make_chain(
            (OperatorKind.CLEAN_TEXT, {"impl": "custom"}),
            (OperatorKind.DEDUPE, {"impl": "custom"}),
            (OperatorKind.DEDUPE, {"impl": "custom"}),
        )
        plan = system.compile(pipeline_opt, optimize=True)
        out_opt = next(iter(plan.execute({"values": values}).outputs.values()))
        assert out_plain == out_opt
