"""Tests for batched LLM prompting (module + skill)."""

from __future__ import annotations

import pytest

from repro.core.compiler.registry import make_pair_matcher, render_pair
from repro.core.modules.base import ModuleExecutionError
from repro.core.modules.batch_llm import BatchLLMModule
from repro.core.modules.llm_module import parse_yes_no
from repro.llm.knowledge import KnowledgeBase
from repro.llm.skills.batch_matching import BatchEntityMatchingSkill

MATCH_PAIR = (
    {"name": "Stone IPA", "brewery": "Stone Brewing"},
    {"name": "Stone IPA", "brewery": "Stone Brewing Co."},
)
DIFFERENT_PAIR = (
    {"name": "Alpha Centauri Lager", "brewery": "Alpha"},
    {"name": "Zeta Reticuli Stout", "brewery": "Zeta"},
)


def make_batch_module(context, batch_size=10, fallback=True):
    single = make_pair_matcher("single", context, examples=[(MATCH_PAIR, True)])
    return BatchLLMModule(
        name="batch",
        service=context.service,
        task_description=(
            "Entity resolution: determine for each pair whether the two "
            "records refer to the same entity. Answer Yes or No per pair."
        ),
        render_item=render_pair,
        parse_answer=parse_yes_no,
        batch_size=batch_size,
        examples=[(render_pair(MATCH_PAIR).replace("\n", "  "), "Yes")],
        fallback=single if fallback else None,
    )


class TestBatchSkill:
    def test_answers_every_pair(self):
        kb = KnowledgeBase()
        prompt = (
            "Task: are these the same entity? Answer Yes or No per pair.\n"
            f"Pair 1:\n{render_pair(MATCH_PAIR)}\n"
            f"Pair 2:\n{render_pair(DIFFERENT_PAIR)}\n"
        )
        answer = BatchEntityMatchingSkill().respond(prompt, kb)
        lines = answer.splitlines()
        assert lines[0].startswith("1:") and lines[1].startswith("2:")

    def test_matches_only_batched_prompts(self):
        skill = BatchEntityMatchingSkill()
        assert not skill.matches("Record A: {} Record B: {} same entity?")
        assert skill.matches(
            "same entity per pair\nPair 1:\nRecord A: {}\nRecord B: {}"
        )

    def test_missing_record_flagged_not_crash(self):
        kb = KnowledgeBase()
        prompt = "same entity?\nPair 1:\nRecord A: {\"a\": 1}\nno second record"
        answer = BatchEntityMatchingSkill().respond(prompt, kb)
        assert "Unknown" in answer


class TestBatchModule:
    def test_batch_results_match_single_results(self, context):
        pairs = [MATCH_PAIR, DIFFERENT_PAIR, MATCH_PAIR]
        batch = make_batch_module(context)
        single = make_pair_matcher("s", context, examples=[(MATCH_PAIR, True)])
        assert batch.run(list(pairs)) == [single.run(p) for p in pairs]

    def test_fewer_calls_than_items(self, context):
        pairs = [MATCH_PAIR, DIFFERENT_PAIR] * 5
        module = make_batch_module(context, batch_size=10)
        module.run(list(pairs))
        assert context.service.served_calls == 1

    def test_multiple_batches(self, context):
        # Distinct pairs so the service cache cannot merge identical batches.
        pairs = [
            ({"name": f"beer {i}"}, {"name": f"beer {i} deluxe"}) for i in range(7)
        ]
        module = make_batch_module(context, batch_size=3)
        results = module.run(list(pairs))
        assert len(results) == 7
        assert context.service.served_calls == 3

    def test_rejects_non_list(self, context):
        module = make_batch_module(context)
        with pytest.raises(ModuleExecutionError):
            module.run("not a list")

    def test_batch_size_validation(self, context):
        with pytest.raises(ValueError):
            make_batch_module(context, batch_size=0)

    def test_fallback_used_for_unanswered_items(self, context):
        module = make_batch_module(context, batch_size=2)
        # A value render_pair cannot interpret would break the whole batch
        # response; instead feed a valid pair but sabotage parsing by making
        # the parse function fail once.
        calls = {"n": 0}

        def flaky_parse(answer: str):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ValueError("malformed")
            return parse_yes_no(answer)

        module.parse_answer = flaky_parse
        results = module.run([MATCH_PAIR, DIFFERENT_PAIR])
        assert len(results) == 2
        assert module.fallback_items == 1

    def test_no_fallback_raises_on_unparseable(self, context):
        module = make_batch_module(context, fallback=False)
        module.parse_answer = lambda answer: (_ for _ in ()).throw(ValueError("bad"))
        with pytest.raises(ModuleExecutionError):
            module.run([MATCH_PAIR])

    def test_prompt_contains_numbered_sections(self, context):
        module = make_batch_module(context)
        prompt = module.build_prompt([MATCH_PAIR, DIFFERENT_PAIR])
        assert "Pair 1:" in prompt and "Pair 2:" in prompt
        assert "Example 1:" in prompt


class TestBatchStrategy:
    def test_compiles_and_runs_via_pipeline(self, system):
        from repro.core.dsl.builder import PipelineBuilder

        pipeline = (
            PipelineBuilder("p")
            .load(source="pairs")
            .match_entities(
                impl="llm_batch",
                batch_size=5,
                examples=[(MATCH_PAIR, True)],
            )
            .save(key="v")
            .build()
        )
        pairs = [
            {"left": MATCH_PAIR[0], "right": MATCH_PAIR[1]},
            {"left": DIFFERENT_PAIR[0], "right": DIFFERENT_PAIR[1]},
        ]
        report = system.run(pipeline, {"pairs": pairs})
        assert next(iter(report.outputs.values())) == [True, False]
        assert system.usage().served_calls == 1
