"""Unit tests for the classifier-cascade module and the text scan helpers.

The cascade is the cost story of the curation templates, so its routing
contract is pinned at the unit level: rule-confident items never reach
the teacher, the uncertainty band always does, prefetch warms exactly
the escalating subset, and the thresholds + rule tag are part of the
module's config identity (checkpoint resume must notice a rule change).
"""

from __future__ import annotations

import pytest

from repro.core.modules.base import Module
from repro.core.modules.cascade import CascadeModule
from repro.text.overlap import build_ngram_index, ngram_set, overlap_profile
from repro.text.quality import quality_stats, rule_quality_score


class RecordingTeacher(Module):
    """Stub teacher that records what reaches it and answers a constant."""

    def __init__(self, verdict=True):
        super().__init__("teacher")
        self.verdict = verdict
        self.seen: list = []
        self.prefetched: list = []

    def _run(self, value):
        self.seen.append(value)
        return self.verdict

    def prefetch(self, values):
        self.prefetched.extend(values)
        return len(values)


def scored_cascade(lower=0.3, upper=0.7, **kwargs):
    teacher = RecordingTeacher()
    module = CascadeModule(
        "cascade", rule=lambda item: item["score"], teacher=teacher,
        lower=lower, upper=upper, **kwargs,
    )
    return module, teacher


class TestRouting:
    def test_low_scores_answer_false_without_teacher(self):
        module, teacher = scored_cascade()
        assert module.run({"score": 0.1}) is False
        assert teacher.seen == []
        assert module.rule_decisions == 1
        assert module.escalations == 0

    def test_high_scores_answer_true_without_teacher(self):
        module, teacher = scored_cascade()
        assert module.run({"score": 0.9}) is True
        assert teacher.seen == []

    def test_band_escalates_to_teacher(self):
        module, teacher = scored_cascade()
        assert module.run({"score": 0.5}) is True
        assert len(teacher.seen) == 1
        assert module.escalations == 1

    def test_band_edges(self):
        # lower is inclusive (escalates), upper is exclusive (rule True).
        module, teacher = scored_cascade()
        module.run({"score": 0.3})
        assert len(teacher.seen) == 1
        module.run({"score": 0.7})
        assert len(teacher.seen) == 1

    def test_out_key_enriches_a_copy(self):
        module, _ = scored_cascade(out_key="keep")
        item = {"score": 0.9, "id": "d1"}
        out = module.run(item)
        assert out == {"score": 0.9, "id": "d1", "keep": True}
        assert "keep" not in item

    def test_prefetch_warms_only_escalating_items(self):
        module, teacher = scored_cascade()
        items = [{"score": s} for s in (0.1, 0.4, 0.6, 0.95)]
        warmed = module.prefetch(items)
        assert warmed == 2
        assert teacher.prefetched == [{"score": 0.4}, {"score": 0.6}]

    def test_invalid_band_rejected(self):
        with pytest.raises(ValueError):
            CascadeModule(
                "bad", rule=lambda _: 0.5, teacher=RecordingTeacher(),
                lower=0.8, upper=0.2,
            )


class TestIdentity:
    def test_thresholds_and_tag_in_config_identity(self):
        module, _ = scored_cascade(rule_tag="rules-v2")
        identity = module.config_identity()["cascade"]
        assert identity["lower"] == 0.3
        assert identity["upper"] == 0.7
        assert identity["rule_tag"] == "rules-v2"

    def test_identity_changes_with_band(self):
        a, _ = scored_cascade(lower=0.3, upper=0.7)
        b, _ = scored_cascade(lower=0.2, upper=0.7)
        assert a.config_identity() != b.config_identity()


class TestOverlapScan:
    def test_ngram_set_short_text(self):
        assert ngram_set("alpha beta", 4) == {("alpha", "beta")}
        assert ngram_set("", 4) == set()

    def test_index_prefers_lowest_item_on_collision(self):
        index = build_ngram_index(["shared gram here", "shared gram here too"], 3)
        assert index[("shared", "gram", "here")] == 0

    def test_profile_attributes_best_item(self):
        items = ["the quick brown fox jumps high", "a completely different line"]
        hard = build_ngram_index(items, 6)
        soft = build_ngram_index(items, 3)
        profile = overlap_profile(
            "the quick brown fox jumps high today", hard, soft,
            hard_n=6, soft_n=3,
        )
        assert profile.hard_hits > 0
        assert profile.best_item == 0
        assert 0 < profile.hard_fraction <= 1.0

    def test_clean_document_has_empty_profile(self):
        items = ["the quick brown fox jumps high"]
        hard = build_ngram_index(items, 6)
        soft = build_ngram_index(items, 3)
        profile = overlap_profile(
            "entirely unrelated prose about gardens", hard, soft,
            hard_n=6, soft_n=3,
        )
        assert profile.hard_hits == 0
        assert profile.soft_hits == 0
        assert profile.best_item == -1


class TestQualityRules:
    def test_clean_prose_scores_high(self):
        clean = (
            "The brewery opened in nineteen sixty. Visitors praise the "
            "tasting room. Tours run on weekends through the summer."
        )
        assert rule_quality_score(clean) > 0.8

    def test_repeated_spam_scores_lower(self):
        spam = "buy now limited offer. " * 12
        assert rule_quality_score(spam) < rule_quality_score(
            "The brewery opened in nineteen sixty. Visitors praise the room."
        )

    def test_stats_fields_are_consistent(self):
        stats = quality_stats("One sentence here. Another follows it.")
        assert stats.n_sentences == 2
        assert stats.n_tokens > 0
        assert 0.0 <= stats.distinct_word_ratio <= 1.0

    def test_empty_text(self):
        assert rule_quality_score("") <= 0.5
