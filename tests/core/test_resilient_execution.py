"""Tests for graceful degradation during plan execution.

Record-level isolation (ErrorPolicy), quarantine plumbing through
RunReport, and the full ER pipeline surviving a 20% transient-failure
chaos schedule without losing more than the quarantined records.
"""

from __future__ import annotations

import pytest

from repro.core.modules.base import ErrorPolicy, ModuleExecutionError
from repro.core.modules.custom import CustomModule
from repro.core.modules.mapping import MapModule
from repro.core.runtime.system import LinguaManga
from repro.core.templates.library import get_template
from repro.datasets.entity_resolution import generate_er_dataset
from repro.llm.faults import ChaosProvider, FaultKind, FaultSpec
from repro.llm.providers import SimulatedProvider
from repro.llm.service import LLMService
from repro.resilience import Deadline, ResiliencePolicy, RetryPolicy, VirtualClock
from repro.tasks.entity_resolution import pairs_as_inputs, pick_examples


def flaky(poison: set) -> CustomModule:
    """An item module that raises on any value in ``poison``."""

    def fn(value):
        if value in poison:
            raise ValueError(f"poisoned: {value!r}")
        return value * 10

    return CustomModule("flaky", fn)


class TestMapModuleErrorPolicy:
    def test_fail_policy_aborts(self):
        mapper = MapModule("m", flaky({2}), error_policy=ErrorPolicy.FAIL)
        with pytest.raises(ModuleExecutionError):
            mapper.run([1, 2, 3])

    def test_skip_record_quarantines_and_continues(self):
        mapper = MapModule("m", flaky({2}), error_policy=ErrorPolicy.SKIP_RECORD)
        assert mapper.run([1, 2, 3]) == [10, 30]
        drained = mapper.drain_quarantine()
        assert len(drained) == 1
        assert drained[0].record == 2
        assert "poisoned" in drained[0].error
        assert mapper.stats.quarantined == 1

    def test_drain_clears_quarantine(self):
        mapper = MapModule("m", flaky({2}), error_policy=ErrorPolicy.SKIP_RECORD)
        mapper.run([1, 2])
        assert mapper.drain_quarantine()
        assert mapper.drain_quarantine() == []

    def test_degrade_routes_to_fallback(self):
        fallback = CustomModule("backup", lambda value: -value)
        mapper = MapModule(
            "m", flaky({2}), error_policy=ErrorPolicy.DEGRADE, fallback=fallback
        )
        assert mapper.run([1, 2, 3]) == [10, -2, 30]
        assert mapper.stats.degraded == 1
        assert mapper.drain_quarantine() == []

    def test_degrade_double_failure_quarantines(self):
        bad_fallback = CustomModule("backup", flaky({2}).fn)
        mapper = MapModule(
            "m", flaky({2}), error_policy=ErrorPolicy.DEGRADE, fallback=bad_fallback
        )
        assert mapper.run([1, 2, 3]) == [10, 30]
        assert len(mapper.drain_quarantine()) == 1
        assert mapper.stats.degraded == 0

    def test_degrade_without_fallback_quarantines(self):
        mapper = MapModule("m", flaky({2}), error_policy=ErrorPolicy.DEGRADE)
        assert mapper.run([1, 2, 3]) == [10, 30]
        assert len(mapper.drain_quarantine()) == 1

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            MapModule("m", flaky(set()), error_policy="explode")


def make_chaos_system(rate: float, seed=7, outage=None, max_retries=3):
    """A LinguaManga system whose provider misbehaves on a seeded schedule."""
    clock = VirtualClock()
    faults = [FaultSpec(kind=FaultKind.TRANSIENT, rate=rate)]
    if outage is not None:
        start, end = outage
        faults.append(FaultSpec(kind=FaultKind.OUTAGE, start=start, end=end))
    chaos = ChaosProvider(SimulatedProvider(), faults, seed=seed, clock=clock)
    policy = ResiliencePolicy(
        retry=RetryPolicy(max_retries=max_retries, backoff_seconds=0.1),
        deadline=Deadline(30.0),
    )
    service = LLMService(chaos, policy=policy, clock=clock)
    return LinguaManga(service=service)


def er_pipeline(dataset, error_policy="skip_record"):
    return get_template("entity_resolution").instantiate(
        examples=pick_examples(dataset.train, 4), error_policy=error_policy
    )


def match_counters(report):
    """Resilience counters of the (auto-named) matcher operator."""
    return next(
        value
        for key, value in report.resilience.items()
        if key.startswith("match_entities")
    )


class TestRunReportResilience:
    def test_clean_run_is_not_partial(self, system):
        dataset = generate_er_dataset("beer", n_entities=20)
        report = system.run(
            er_pipeline(dataset), {"pairs": pairs_as_inputs(dataset.test[:10])}
        )
        assert report.partial is False
        assert report.quarantine == []
        assert match_counters(report) is not None

    def test_retries_counted_per_operator(self):
        system = make_chaos_system(rate=0.3)
        dataset = generate_er_dataset("beer", n_entities=20)
        report = system.run(
            er_pipeline(dataset), {"pairs": pairs_as_inputs(dataset.test[:10])}
        )
        assert match_counters(report).llm_retries > 0

    def test_partial_report_text_mentions_quarantine(self):
        system = make_chaos_system(rate=0.9, max_retries=0)
        dataset = generate_er_dataset("beer", n_entities=20)
        report = system.run(
            er_pipeline(dataset), {"pairs": pairs_as_inputs(dataset.test[:10])}
        )
        assert report.partial is True
        assert "PARTIAL" in report.to_text()
        assert "resilience" in report.to_text()

    def test_fail_policy_still_aborts(self):
        system = make_chaos_system(rate=1.0, max_retries=0)
        dataset = generate_er_dataset("beer", n_entities=20)
        with pytest.raises(Exception):
            system.run(
                er_pipeline(dataset, error_policy="fail"),
                {"pairs": pairs_as_inputs(dataset.test[:5])},
            )


class TestERUnderChaos:
    """Acceptance criterion: 20% transient chaos, >=95% records processed."""

    def run_er(self, seed=7):
        system = make_chaos_system(rate=0.2, seed=seed)
        dataset = generate_er_dataset("beer")
        pairs = pairs_as_inputs(dataset.test)
        report = system.run(er_pipeline(dataset), {"pairs": pairs})
        return report, len(pairs)

    def test_completes_with_partial_flag_consistent(self):
        report, total = self.run_er()
        verdicts = next(iter(report.outputs.values()))
        assert report.partial == bool(report.quarantine)
        # Conservation: every input pair is either answered or quarantined.
        assert len(verdicts) + len(report.quarantine) == total

    def test_at_least_95_percent_processed(self):
        report, total = self.run_er()
        verdicts = next(iter(report.outputs.values()))
        assert len(verdicts) >= 0.95 * total

    def test_run_is_deterministic(self):
        first, _ = self.run_er(seed=13)
        second, _ = self.run_er(seed=13)
        assert next(iter(first.outputs.values())) == next(
            iter(second.outputs.values())
        )
        assert [q.record for q in first.quarantine] == [
            q.record for q in second.quarantine
        ]

    def test_quarantine_names_operator_and_error(self):
        system = make_chaos_system(rate=0.9, max_retries=0)
        dataset = generate_er_dataset("beer", n_entities=20)
        report = system.run(
            er_pipeline(dataset), {"pairs": pairs_as_inputs(dataset.test[:10])}
        )
        assert report.quarantine, "expected quarantined records under heavy chaos"
        entry = report.quarantine[0]
        assert entry.module_name
        assert entry.error
        assert "left" in entry.record


class TestDegradeToSimulator:
    """ErrorPolicy.DEGRADE routes poisoned records to a cheap fallback."""

    def test_degraded_records_counted_in_report(self):
        clock = VirtualClock()
        chaos = ChaosProvider(
            SimulatedProvider(),
            [FaultSpec(kind=FaultKind.TRANSIENT, rate=0.9)],
            seed=3,
            clock=clock,
        )
        policy = ResiliencePolicy(retry=RetryPolicy(max_retries=0))
        service = LLMService(chaos, policy=policy, clock=clock)
        system = LinguaManga(service=service)
        dataset = generate_er_dataset("beer", n_entities=20)
        pipeline = get_template("entity_resolution").instantiate(
            examples=pick_examples(dataset.train, 2), error_policy="degrade"
        )
        plan = system.compile(pipeline)
        matcher = next(
            binding.module
            for binding in plan.bound
            if binding.operator.name.startswith("match_entities")
        )
        matcher.fallback = CustomModule("guess", lambda pair: False)
        pairs = pairs_as_inputs(dataset.test[:10])
        report = plan.execute({"pairs": pairs})
        counters = match_counters(report)
        assert counters.degraded > 0
        assert len(next(iter(report.outputs.values()))) + counters.quarantined == len(
            pairs
        )
        assert report.partial == bool(report.quarantine)
