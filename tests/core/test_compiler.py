"""Tests for the compiler, registry, plans and templates."""

from __future__ import annotations

import pytest

from repro.core.compiler.compiler import LinguaMangaCompiler
from repro.core.compiler.context import CompilerContext
from repro.core.compiler.explain import explain_pipeline, render_architecture
from repro.core.compiler.registry import CompileError, build_module, strategies_for
from repro.core.dsl.builder import PipelineBuilder
from repro.core.dsl.operators import LogicalOperator, OperatorKind
from repro.core.optimizer.simulator import SimulatedModule
from repro.core.optimizer.validator import TestCase
from repro.core.templates.library import (
    available_templates,
    get_template,
    search_templates,
)


class TestRegistry:
    def test_strategies_registered_for_every_kind(self):
        for kind in OperatorKind.ALL:
            assert strategies_for(kind), f"no strategies for {kind}"

    def test_impl_param_selects_strategy(self, context):
        op = LogicalOperator("c", OperatorKind.CLEAN_TEXT, params={"impl": "custom"})
        module = build_module(op, context)
        assert module.run(["A  B"]) == ["a b"]

    def test_unknown_impl_rejected(self, context):
        op = LogicalOperator("c", OperatorKind.CLEAN_TEXT, params={"impl": "quantum"})
        with pytest.raises(CompileError):
            build_module(op, context)

    def test_load_requires_source(self, context):
        op = LogicalOperator("l", OperatorKind.LOAD)
        module = build_module(op, context)
        with pytest.raises(Exception):
            module.run({})

    def test_filter_requires_callable(self, context):
        op = LogicalOperator("f", OperatorKind.FILTER, params={"predicate": "nope"})
        with pytest.raises(CompileError):
            build_module(op, context)

    def test_classify_requires_choices(self, context):
        with pytest.raises(CompileError):
            build_module(LogicalOperator("c", OperatorKind.CLASSIFY), context)


class TestCompileAndExecute:
    def test_simple_pipeline_runs(self, system):
        pipeline = (
            PipelineBuilder("p")
            .load(source="values")
            .clean_text(impl="custom")
            .dedupe(impl="custom")
            .save(key="out")
            .build()
        )
        report = system.run(pipeline, {"values": ["A", "a", "B "]})
        assert report.outputs[pipeline.sinks()[0].name] == ["a", "b"]

    def test_multi_input_operator_receives_tuple(self, system):
        pipeline = (
            PipelineBuilder("p")
            .add(OperatorKind.LOAD, name="a", inputs=[], source="x")
            .add(OperatorKind.LOAD, name="b", inputs=[], source="y")
            .add(
                OperatorKind.CUSTOM,
                name="j",
                inputs=["a", "b"],
                fn=lambda pair: list(pair[0]) + list(pair[1]),
            )
            .build()
        )
        report = system.run(pipeline, {"x": [1], "y": [2]})
        assert report.outputs["j"] == [1, 2]

    def test_missing_input_key_raises(self, system):
        pipeline = PipelineBuilder("p").load(source="nope").build()
        with pytest.raises(Exception, match="nope"):
            system.run(pipeline, {})

    def test_save_writes_csv(self, system, tmp_path):
        out = tmp_path / "out.csv"
        pipeline = (
            PipelineBuilder("p").load(source="rows").save(path=str(out)).build()
        )
        system.run(pipeline, {"rows": [{"a": 1}, {"a": 2}]})
        assert out.read_text().startswith("a\n")

    def test_save_writes_json(self, system, tmp_path):
        out = tmp_path / "out.json"
        pipeline = PipelineBuilder("p").load(source="rows").save(path=str(out)).build()
        system.run(pipeline, {"rows": [1, 2, 3]})
        assert out.read_text().strip().startswith("[")

    def test_run_report_includes_cost_and_stats(self, system):
        pipeline = (
            PipelineBuilder("p")
            .load(source="docs")
            .detect_language(impl="llm")
            .save(key="out")
            .build()
        )
        report = system.run(pipeline, {"docs": [{"text": "hola amigo ayer"}]})
        assert report.cost is not None
        assert report.cost.served_calls >= 1
        assert any("invocations=1" in s for s in report.module_stats.values())

    def test_plan_to_text_shows_bindings(self, system):
        pipeline = PipelineBuilder("p").load(source="x").save(key="o").build()
        plan = system.compile(pipeline)
        text = plan.to_text()
        assert "load" in text and "=>" in text


class TestValidatorAttachment:
    def test_validator_cases_repair_at_compile_time(self, system):
        cases = [
            TestCase("John met Mary.", ["John", "met", "Mary", "."]),
        ]
        pipeline = (
            PipelineBuilder("p")
            .load(source="docs")
            .tokenize(impl="llmgc", validator_cases=cases)
            .save(key="out")
            .build()
        )
        plan = system.compile(pipeline)
        assert system.compiler.validation_reports[-1].passed is True
        report = plan.execute({"docs": [{"text": "A b."}]})
        tokens = report.outputs[pipeline.sinks()[0].name][0]["tokens"]
        assert tokens == ["A", "b", "."]

    def test_non_testcase_cases_rejected(self, system):
        pipeline = (
            PipelineBuilder("p")
            .load(source="docs")
            .tokenize(impl="llmgc", validator_cases=["not a case"])
            .save(key="out")
            .build()
        )
        with pytest.raises(CompileError):
            system.compile(pipeline)


class TestSimulatorAttachment:
    def test_simulate_wraps_map_inner(self, system):
        pipeline = (
            PipelineBuilder("p")
            .load(source="items")
            .transform(fn=lambda x: x * 2, simulate=True)
            .save(key="out")
            .build()
        )
        plan = system.compile(pipeline)
        transform_module = plan.module(pipeline.operators[1].name)
        from repro.core.modules.mapping import MapModule

        assert isinstance(transform_module, MapModule)
        assert isinstance(transform_module.inner, SimulatedModule)


class TestTemplates:
    def test_all_templates_instantiate_and_validate(self):
        for template in available_templates():
            # sample_args supplies the minimal required parameters for
            # templates that have them (e.g. decontamination's eval_items).
            pipeline = template.instantiate(**template.sample_args)
            pipeline.validate()

    def test_search_finds_er(self):
        hits = search_templates("find duplicate records same entity")
        assert hits[0][0].name == "entity_resolution"

    def test_search_finds_imputation(self):
        hits = search_templates("fill missing manufacturer values")
        assert hits[0][0].name == "data_imputation"

    def test_search_finds_name_extraction(self):
        hits = search_templates("extract person names from text")
        assert hits[0][0].name == "name_extraction"

    def test_search_no_match_returns_empty(self):
        assert search_templates("qqq zzz xxx") == []

    def test_get_template_unknown_raises(self):
        with pytest.raises(KeyError):
            get_template("nonexistent")

    def test_name_extraction_variants(self):
        multilingual = get_template("name_extraction").instantiate(multilingual=True)
        monolingual = get_template("name_extraction").instantiate(multilingual=False)
        kinds_multi = [op.kind for op in multilingual.topological_order()]
        kinds_mono = [op.kind for op in monolingual.topological_order()]
        assert "detect_language" in kinds_multi
        assert "detect_language" not in kinds_mono


class TestExplain:
    def test_explain_pipeline_draws_boxes(self):
        pipeline = get_template("entity_resolution").instantiate()
        art = explain_pipeline(pipeline)
        assert "match_entities" in art and "|" in art

    def test_architecture_rendering(self):
        art = render_architecture()
        assert "LINGUA MANGA" in art
        assert "Optimizer" in art
