"""Tests for the DSL: operators, pipeline graph, builder, textual parser."""

from __future__ import annotations

import pytest

from repro.core.dsl.builder import PipelineBuilder
from repro.core.dsl.operators import LogicalOperator, OperatorKind
from repro.core.dsl.parser import DslParseError, parse_pipeline
from repro.core.dsl.pipeline import Pipeline, PipelineError


class TestLogicalOperator:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            LogicalOperator("x", "frobnicate")

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError):
            LogicalOperator("has space", OperatorKind.LOAD)

    def test_describe_includes_hints(self):
        op = LogicalOperator("m", OperatorKind.MATCH_ENTITIES, params={"impl": "llm"})
        assert "impl=llm" in op.describe()


class TestPipelineGraph:
    def make_linear(self) -> Pipeline:
        p = Pipeline("p")
        p.add(LogicalOperator("a", OperatorKind.LOAD))
        p.add(LogicalOperator("b", OperatorKind.DEDUPE, inputs=["a"]))
        p.add(LogicalOperator("c", OperatorKind.SAVE, inputs=["b"]))
        return p

    def test_validate_accepts_linear(self):
        self.make_linear().validate()

    def test_duplicate_names_rejected(self):
        p = Pipeline("p")
        p.add(LogicalOperator("a", OperatorKind.LOAD))
        with pytest.raises(PipelineError):
            p.add(LogicalOperator("a", OperatorKind.SAVE))

    def test_unknown_input_rejected(self):
        p = Pipeline("p")
        p.add(LogicalOperator("a", OperatorKind.SAVE, inputs=["ghost"]))
        with pytest.raises(PipelineError):
            p.validate()

    def test_self_reference_rejected(self):
        p = Pipeline("p")
        p.add(LogicalOperator("a", OperatorKind.SAVE, inputs=["a"]))
        with pytest.raises(PipelineError):
            p.validate()

    def test_cycle_rejected(self):
        p = Pipeline("p")
        p.add(LogicalOperator("a", OperatorKind.DEDUPE, inputs=["b"]))
        p.add(LogicalOperator("b", OperatorKind.DEDUPE, inputs=["a"]))
        with pytest.raises(PipelineError):
            p.validate()

    def test_empty_pipeline_rejected(self):
        with pytest.raises(PipelineError):
            Pipeline("p").validate()

    def test_topological_order_respects_dependencies(self):
        p = Pipeline("p")
        p.add(LogicalOperator("sink", OperatorKind.SAVE, inputs=["mid"]))
        p.add(LogicalOperator("src", OperatorKind.LOAD))
        p.add(LogicalOperator("mid", OperatorKind.DEDUPE, inputs=["src"]))
        order = [op.name for op in p.topological_order()]
        assert order.index("src") < order.index("mid") < order.index("sink")

    def test_sinks(self):
        p = self.make_linear()
        assert [op.name for op in p.sinks()] == ["c"]

    def test_diamond_dag(self):
        p = Pipeline("diamond")
        p.add(LogicalOperator("src", OperatorKind.LOAD))
        p.add(LogicalOperator("l", OperatorKind.DEDUPE, inputs=["src"]))
        p.add(LogicalOperator("r", OperatorKind.CLEAN_TEXT, inputs=["src"]))
        p.add(LogicalOperator("join", OperatorKind.CUSTOM, inputs=["l", "r"]))
        p.validate()
        assert [op.name for op in p.sinks()] == ["join"]

    def test_to_text_lists_operators(self):
        text = self.make_linear().to_text()
        assert "a: load" in text and "c: save" in text


class TestBuilder:
    def test_linear_chaining(self):
        p = (
            PipelineBuilder("t")
            .load(source="x")
            .dedupe(impl="custom")
            .save(key="out")
            .build()
        )
        order = [op.kind for op in p.topological_order()]
        assert order == ["load", "dedupe", "save"]
        assert p.operators[1].inputs == [p.operators[0].name]

    def test_explicit_names_and_inputs(self):
        p = (
            PipelineBuilder("t")
            .add(OperatorKind.LOAD, name="a", inputs=[])
            .add(OperatorKind.LOAD, name="b", inputs=[])
            .add(OperatorKind.CUSTOM, name="j", inputs=["a", "b"], fn=lambda v: v)
            .build()
        )
        assert p.operator("j").inputs == ["a", "b"]

    def test_params_forwarded(self):
        p = PipelineBuilder("t").load(source="x").match_entities(impl="llm", examples=[]).save().build()
        assert p.operators[1].params["impl"] == "llm"

    def test_build_validates(self):
        builder = PipelineBuilder("t")
        builder.add(OperatorKind.SAVE, inputs=["ghost"])
        with pytest.raises(PipelineError):
            builder.build()


class TestTextualParser:
    GOOD = '''
    pipeline "demo":
      a = load(source="values")   # comment
      b = clean_text(input=a, impl="custom")
      save(input=b, key="out", limit=3, ratio=0.5, flag=true, nothing=null)
    '''

    def test_parses_structure(self):
        p = parse_pipeline(self.GOOD)
        assert p.name == "demo"
        assert [op.kind for op in p.topological_order()] == ["load", "clean_text", "save"]

    def test_literal_types(self):
        p = parse_pipeline(self.GOOD)
        params = p.topological_order()[-1].params
        assert params["limit"] == 3
        assert params["ratio"] == 0.5
        assert params["flag"] is True
        assert params["nothing"] is None

    def test_inputs_wired(self):
        p = parse_pipeline(self.GOOD)
        assert p.operator("b").inputs == ["a"]

    def test_inputs_list(self):
        text = '''
        pipeline "m":
          a = load(source="x")
          b = load(source="y")
          j = custom(inputs=[a, b], description="join")
        '''
        assert parse_pipeline(text).operator("j").inputs == ["a", "b"]

    def test_unnamed_operator_gets_auto_alias(self):
        p = parse_pipeline('pipeline "x":\n  load(source="v")\n')
        assert p.operators[0].name == "load_1"

    def test_unknown_kind_rejected(self):
        with pytest.raises(DslParseError):
            parse_pipeline('pipeline "x":\n  fly(height=3)\n')

    def test_missing_header_rejected(self):
        with pytest.raises(DslParseError):
            parse_pipeline('load(source="x")')

    def test_bad_statement_reports_line(self):
        with pytest.raises(DslParseError, match="line 3"):
            parse_pipeline('pipeline "x":\n  a = load(source="v")\n  ???\n')

    def test_input_must_be_reference(self):
        with pytest.raises(DslParseError):
            parse_pipeline('pipeline "x":\n  a = save(input="stringy")\n')

    def test_empty_document_rejected(self):
        with pytest.raises(DslParseError):
            parse_pipeline("   \n  # only a comment\n")

    def test_string_escapes(self):
        p = parse_pipeline('pipeline "x":\n  load(path="a\\"b")\n')
        assert p.operators[0].params["path"] == 'a"b'
