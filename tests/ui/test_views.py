"""Tests for the terminal UI views (paper Figure 5)."""

from __future__ import annotations

from repro.core.dsl.builder import PipelineBuilder
from repro.core.templates.library import get_template
from repro.ui.views import (
    ModuleInspectorView,
    PipelineCanvasView,
    RunLogView,
    UsagePanelView,
    render_screen,
)


def simple_pipeline():
    return (
        PipelineBuilder("demo")
        .load(source="values")
        .clean_text(impl="custom")
        .save(key="out")
        .build()
    )


class TestPipelineCanvas:
    def test_canvas_shows_all_operators(self):
        canvas = PipelineCanvasView(simple_pipeline()).render()
        for kind in ("load", "clean_text", "save"):
            assert kind in canvas

    def test_canvas_shows_hints(self):
        canvas = PipelineCanvasView(get_template("data_imputation").instantiate()).render()
        assert "impl=llmgc" in canvas
        assert "validator=" in canvas

    def test_canvas_is_boxed(self):
        canvas = PipelineCanvasView(simple_pipeline()).render()
        lines = canvas.splitlines()
        assert lines[0].startswith("+") and lines[-1].startswith("+")
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # perfectly rectangular


class TestModuleInspector:
    def test_shows_stats_and_type(self, system):
        plan = system.compile(simple_pipeline())
        plan.execute({"values": ["A"]})
        view = ModuleInspectorView(plan.module("clean_text_2")).render()
        assert "invocations=1" in view
        assert "type:" in view

    def test_shows_generated_source_for_llmgc(self, system):
        pipeline = (
            PipelineBuilder("p")
            .load(source="values")
            .clean_text(impl="llmgc")
            .save(key="out")
            .build()
        )
        plan = system.compile(pipeline)
        plan.execute({"values": ["a"]})
        from repro.core.compiler.compiler import _innermost

        inner = _innermost(plan.module(pipeline.operators[1].name))
        view = ModuleInspectorView(inner).render()
        assert "def run(" in view


class TestRunLogAndUsage:
    def test_run_log_includes_outputs_and_cost(self, system):
        plan = system.compile(simple_pipeline())
        report = plan.execute({"values": ["A", "B"]})
        view = RunLogView(report).render()
        assert "output[" in view
        assert "cost:" in view

    def test_usage_panel_groups_by_purpose(self, system):
        system.service.complete("summarize alpha", purpose="p1")
        system.service.complete("summarize beta", purpose="p2")
        view = UsagePanelView(system.service).render()
        assert "p1: 1 calls" in view and "p2: 1 calls" in view


class TestFullScreen:
    def test_screen_composes_all_panels(self, system):
        plan = system.compile(simple_pipeline())
        report = plan.execute({"values": ["A"]})
        screen = render_screen(plan, report, inspect="clean_text_2")
        assert "pipeline: demo" in screen
        assert "module: clean_text_2" in screen
        assert "run log" in screen
        assert "LLM usage" in screen

    def test_screen_without_report(self, system):
        plan = system.compile(simple_pipeline())
        screen = render_screen(plan)
        assert "run log" not in screen
