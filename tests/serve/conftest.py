"""Shared fixtures for the serving-layer suite.

Everything runs over real sockets and real threads, but **no wall-clock
behaviour**: admission clocks are the shared ``virtual_clock`` fixture,
job execution accrues virtual latency only, and every wait is a bounded
condition wait that fails loud instead of a polling sleep.
"""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro.llm.providers import LLMProvider, LLMRequest, LLMResponse
from repro.serve import JobQueue, JobServer, JobSpec

#: Small dataset refs for the three demo apps — big enough to exercise
#: chunked parallel execution (several chunks at the default chunk size),
#: small enough to run hundreds of jobs in the chaos suite.
DATASET_REFS = {
    "er": {"name": "beer", "seed": 7},
    "names": {"seed": 3, "n_documents": 24},
    "imputation": {"seed": 11, "n_train": 8, "n_test": 24},
}


def make_spec(task: str, tenant: str = "acme", workers: int = 1, **options) -> JobSpec:
    options = {"workers": workers, **options}
    return JobSpec(
        tenant=tenant, task=task, dataset=dict(DATASET_REFS[task]), options=options
    )


@pytest.fixture
def serve_dir(tmp_path):
    return tmp_path / "serve"


@pytest.fixture
def queue(serve_dir, virtual_clock):
    queue = JobQueue(serve_dir, max_workers=4, clock=virtual_clock)
    yield queue
    if not queue._killed:
        queue.close(drain=False)


@pytest.fixture
def server(queue):
    with JobServer(queue) as server:
        yield server


class ApiClient:
    """Minimal blocking JSON client over ``http.client``."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    def request(self, method: str, path: str, payload=None):
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            if payload is not None:
                body = json.dumps(payload)
            connection.request(method, path, body=body)
            response = connection.getresponse()
            return response.status, json.loads(response.read() or b"{}")
        finally:
            connection.close()

    def submit(self, spec: JobSpec):
        return self.request("POST", "/jobs", spec.to_dict())

    def job(self, job_id: str):
        return self.request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str):
        return self.request("POST", f"/jobs/{job_id}/cancel")


@pytest.fixture
def client(server):
    return ApiClient(server.host, server.port)


class GateProvider(LLMProvider):
    """Deterministic provider that blocks at a call-count threshold.

    The kill/restart tests need the server to die *mid-run*, at a
    reproducible point: after ``gate_after`` total calls the provider
    parks every caller on an event until the test (having killed the
    queue) releases them — workers then observe their cancellation token
    at the next chunk boundary.  Answers delegate to the wrapped provider,
    so gated runs stay byte-identical to ungated ones.
    """

    def __init__(self, inner: LLMProvider, gate_after: int | None = None):
        self.inner = inner
        self.model_name = inner.cache_identity()
        self.gate_after = gate_after
        self.release = threading.Event()
        self.gated = threading.Event()
        self.calls = 0
        self._lock = threading.Lock()

    def cache_identity(self) -> str:
        return self.inner.cache_identity()

    def complete(self, request: LLMRequest) -> LLMResponse:
        with self._lock:
            self.calls += 1
            gate = self.gate_after is not None and self.calls > self.gate_after
        if gate:
            self.gated.set()
            if not self.release.wait(timeout=30):
                raise RuntimeError("GateProvider was never released")
        return self.inner.complete(request)

    def complete_batch(self, requests: list[LLMRequest]) -> list[LLMResponse]:
        return [self.complete(request) for request in requests]
