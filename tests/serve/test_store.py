"""Unit tests for the crash-safe job store (write-ahead JSONL ledger)."""

from __future__ import annotations

import json

import pytest

from repro.serve.jobs import JobSpec
from repro.serve.store import JobStore
from tests.serve.conftest import make_spec


@pytest.fixture
def ledger(tmp_path):
    return tmp_path / "jobs.jsonl"


def test_submit_assigns_sequential_ids(ledger):
    store = JobStore(ledger)
    ids = [store.submit(make_spec("imputation")).job_id for _ in range(3)]
    assert ids == ["job-0001", "job-0002", "job-0003"]
    assert [store.get(i).status for i in ids] == ["queued"] * 3
    store.close()


def test_ledger_survives_reload(ledger):
    store = JobStore(ledger)
    job = store.submit(make_spec("er", tenant="acme"))
    store.transition(job.job_id, "running", attempts=1)
    store.transition(
        job.job_id,
        "succeeded",
        result={"task": "er", "f1": 1.0},
        progress=[{"event": "run:end", "seq": 1}],
    )
    other = store.submit(make_spec("names", tenant="globex"))
    store.close()

    reloaded = JobStore(ledger)
    done = reloaded.get(job.job_id)
    assert done.status == "succeeded"
    assert done.result == {"task": "er", "f1": 1.0}
    assert done.progress == [{"event": "run:end", "seq": 1}]
    assert done.attempts == 1
    assert reloaded.get(other.job_id).status == "queued"
    # id allocation continues after the highest replayed id
    assert reloaded.submit(make_spec("imputation")).job_id == "job-0003"
    reloaded.close()


def test_running_job_is_resumable_after_reload(ledger):
    store = JobStore(ledger)
    job = store.submit(make_spec("imputation"))
    store.transition(job.job_id, "running", attempts=1)
    store.kill()  # server death: the ledger still says "running"

    reloaded = JobStore(ledger)
    revived = reloaded.get(job.job_id)
    assert revived.status == "resumable"
    assert revived.attempts == 1
    reloaded.close()


def test_kill_writes_nothing(ledger):
    store = JobStore(ledger)
    job = store.submit(make_spec("imputation"))
    before = ledger.read_bytes()
    store.kill()
    # Appends after the kill are suppressed rather than erroring: worker
    # threads may still be unwinding when the store is already dead.
    store.transition(job.job_id, "succeeded", result={"task": "imputation"})
    assert ledger.read_bytes() == before
    assert JobStore(ledger).get(job.job_id).status == "queued"


def test_torn_tail_is_truncated_not_fatal(ledger):
    store = JobStore(ledger)
    job = store.submit(make_spec("er"))
    store.transition(job.job_id, "running", attempts=1)
    store.close()
    with ledger.open("ab") as handle:
        handle.write(b'{"kind":"status","job":"job-0001","sta')  # torn write

    reloaded = JobStore(ledger)
    assert reloaded.get(job.job_id).status == "resumable"
    # the torn line is gone from disk, and the ledger is appendable again
    reloaded.transition(job.job_id, "failed", error="gave up")
    reloaded.close()
    lines = ledger.read_text().splitlines()
    assert all(json.loads(line) for line in lines)
    assert JobStore(ledger).get(job.job_id).status == "failed"


def test_ledger_carries_no_wall_clock_fields(ledger):
    store = JobStore(ledger)
    job = store.submit(make_spec("names"))
    store.transition(job.job_id, "succeeded", result={"task": "names"})
    store.close()
    for line in ledger.read_text().splitlines():
        record = json.loads(line)
        assert not any("time" in key or "stamp" in key for key in record)
        assert isinstance(record["seq"], int)


def test_transition_rejects_unknown_status(ledger):
    store = JobStore(ledger)
    job = store.submit(make_spec("imputation"))
    with pytest.raises(ValueError):
        store.transition(job.job_id, "exploded")
    store.close()


def test_jobs_filter_by_tenant(ledger):
    store = JobStore(ledger)
    store.submit(make_spec("er", tenant="acme"))
    store.submit(make_spec("names", tenant="globex"))
    store.submit(make_spec("imputation", tenant="acme"))
    assert [j.spec.task for j in store.jobs(tenant="acme")] == ["er", "imputation"]
    assert [j.spec.task for j in store.jobs()] == ["er", "names", "imputation"]
    store.close()


def test_wait_for_is_bounded_and_fail_loud(ledger):
    store = JobStore(ledger)
    job = store.submit(make_spec("imputation"))
    with pytest.raises(TimeoutError, match="currently 'queued'"):
        store.wait_for(job.job_id, timeout=0.05)
    with pytest.raises(TimeoutError, match="<missing>"):
        store.wait_for("job-9999", timeout=0.05)
    store.transition(job.job_id, "succeeded", result={"task": "imputation"})
    assert store.wait_for(job.job_id, timeout=0.05).status == "succeeded"
    store.close()


def test_to_dict_round_trips_spec(ledger):
    spec = JobSpec(
        tenant="acme",
        task="dsl",
        dataset={"inputs": {"text": "hello"}},
        options={"workers": 2},
        program="x = extract(text)",
    )
    store = JobStore(ledger)
    job = store.submit(spec)
    store.close()
    reloaded = JobStore(ledger).get(job.job_id)
    assert reloaded.spec == spec
    payload = reloaded.to_dict()
    assert payload["job_id"] == job.job_id
    assert payload["tenant"] == "acme"
    assert payload["status"] == "queued"
    assert "result" not in payload
