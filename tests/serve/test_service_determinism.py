"""Service-level determinism: API jobs == direct runs, byte for byte.

The acceptance contract of the serving layer: a job submitted over HTTP —
admitted, queued, run on a pool worker with a namespaced tenant cache and
the cross-tenant coalesce hub active — must produce a
``RunReport.canonical_json()`` byte-identical to calling the task runner
directly on a plain :class:`LLMService`, cold and warm, at workers 1, 2
and 8.  The server stores each job's full canonical report at
``<data_dir>/jobs/<id>/report.json`` precisely so this comparison is a
file read, not a reconstruction.
"""

from __future__ import annotations

import pytest

from repro.core.runtime.system import LinguaManga
from repro.llm.cache import PromptCache
from repro.llm.providers import SimulatedProvider
from repro.llm.service import LLMService
from repro.resilience.clock import VirtualClock
from repro.serve import JobServer
from repro.serve.jobs import run_task
from tests.serve.conftest import ApiClient, make_spec

MATRIX = [
    ("imputation", 1),
    ("imputation", 2),
    ("imputation", 8),
    ("er", 2),
    ("names", 2),
]


def _direct_reports(task: str, workers: int, cache_path, runs: int) -> list[str]:
    """``runs`` back-to-back direct executions sharing one cache journal.

    Each run builds a fresh service over the same journal — exactly the
    per-job service construction the queue performs — so report ``i`` is
    the direct-run target for the tenant's ``i``-th API submission.
    """
    reports = []
    for _ in range(runs):
        service = LLMService(
            SimulatedProvider(),
            cache=PromptCache(path=cache_path),
            clock=VirtualClock(),
        )
        result = run_task(
            make_spec(task, workers=workers),
            LinguaManga(service=service),
            workers=workers,
        )
        report = getattr(result, "report", result)
        reports.append(report.canonical_json())
    return reports


@pytest.mark.parametrize("task,workers", MATRIX)
def test_api_job_report_is_byte_identical_to_direct_run(
    task, workers, queue, server, serve_dir, tmp_path
):
    direct_cold, direct_warm = _direct_reports(
        task, workers, tmp_path / "direct-cache.jsonl", runs=2
    )

    client = ApiClient(server.host, server.port)
    api_reports = []
    for _ in range(2):  # cold, then warm on the tenant's journal
        status, accepted = client.submit(make_spec(task, workers=workers))
        assert status == 202
        job = queue.store.wait_for(accepted["job_id"])
        assert job.status == "succeeded", job.error
        api_reports.append(
            (serve_dir / "jobs" / job.job_id / "report.json").read_text(
                encoding="utf-8"
            )
        )

    assert api_reports[0] == direct_cold
    assert api_reports[1] == direct_warm
    assert queue.audit_violations == []


def test_worker_count_is_invisible_in_the_report(queue, serve_dir):
    """Same spec at different worker counts: same report bytes.

    Distinct tenants isolate the caches, so each run is cold; the hub
    *does* share settled answers across them — sharing must not leak into
    report bytes either.
    """
    reports = []
    for tenant, workers in (("w1", 1), ("w2", 2), ("w8", 8)):
        job = queue.submit(make_spec("imputation", tenant=tenant, workers=workers))
        done = queue.store.wait_for(job.job_id)
        assert done.status == "succeeded", done.error
        reports.append(
            (serve_dir / "jobs" / job.job_id / "report.json").read_text(
                encoding="utf-8"
            )
        )
    assert reports[0] == reports[1] == reports[2]
    assert queue.registry.hub.stats()["shared_calls"] > 0
    assert queue.audit_violations == []


def test_resubmitted_job_equals_back_to_back_direct_runs(queue, serve_dir, tmp_path):
    """Three consecutive warm generations stay aligned, not just the first."""
    direct = _direct_reports("names", 2, tmp_path / "direct-cache.jsonl", runs=3)
    for generation in range(3):
        job = queue.submit(make_spec("names", workers=2))
        done = queue.store.wait_for(job.job_id)
        assert done.status == "succeeded", done.error
        api = (serve_dir / "jobs" / job.job_id / "report.json").read_text(
            encoding="utf-8"
        )
        assert api == direct[generation], f"generation {generation} drifted"


def test_api_server_survives_and_isolates_concurrent_tenants(queue, server):
    """Many tenants at once: all succeed, reports agree, audit stays clean."""
    client = ApiClient(server.host, server.port)
    accepted = []
    for index in range(6):
        status, job = client.submit(
            make_spec("imputation", tenant=f"tenant{index}", workers=2)
        )
        assert status == 202
        accepted.append(job["job_id"])
    digests = set()
    for job_id in accepted:
        job = queue.store.wait_for(job_id, timeout=120)
        assert job.status == "succeeded", job.error
        digests.add(job.result["report_digest"])
    assert len(digests) == 1  # identical cold runs, tenant-independent
    assert queue.audit_violations == []
