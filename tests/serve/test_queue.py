"""Unit tests for the multi-tenant job queue.

End-to-end execution, admission refusal, cancellation (queued and
running), cross-tenant request coalescing through the shared hub,
restart recovery, kill-then-resume, and the cross-tenant isolation
audit's tripwire.
"""

from __future__ import annotations

import json
import threading
from types import SimpleNamespace

import pytest

from repro.llm.providers import SimulatedProvider
from repro.serve import JobQueue, JobSpec, QuotaExceeded
from repro.serve.admission import TenantQuota
from repro.serve.jobs import JobError
from tests.serve.conftest import GateProvider, make_spec


def test_job_runs_to_success(queue, serve_dir):
    job = queue.submit(make_spec("imputation", workers=2))
    done = queue.store.wait_for(job.job_id)
    assert done.status == "succeeded"
    assert done.attempts == 1 and done.resumed is False
    assert done.result["task"] == "imputation"
    assert done.result["llm_calls"] > 0
    assert done.result["accuracy"] > 0
    assert "report_digest" in done.result
    assert (serve_dir / "jobs" / job.job_id / "report.json").exists()
    events = [event["event"] for event in done.progress]
    assert events[0] == "run:start" and events[-1] == "run:end"
    assert "phase" in events


def test_invalid_specs_are_refused_without_a_ledger_trace(queue, serve_dir):
    for spec in (
        make_spec("imputation", tenant="Bad Tenant!"),
        JobSpec(tenant="acme", task="alchemy"),
        JobSpec(tenant="acme", task="dsl", program="   "),
        JobSpec(tenant="acme", task="er", dataset={"name": "no-such-set"}),
    ):
        with pytest.raises(JobError):
            queue.submit(spec)
    assert queue.store.jobs() == []


def test_queue_quota_refuses_floods(serve_dir, virtual_clock):
    queue = JobQueue(
        serve_dir,
        max_workers=1,
        clock=virtual_clock,
        default_quota=TenantQuota(max_queued=2, max_running=1),
        start=False,  # keep everything queued so the quota is what refuses
    )
    queue.submit(make_spec("imputation"))
    queue.submit(make_spec("imputation"))
    with pytest.raises(QuotaExceeded) as refusal:
        queue.submit(make_spec("imputation"))
    assert refusal.value.retryable
    # another tenant is unaffected by acme's full queue
    queue.submit(make_spec("imputation", tenant="globex"))
    assert queue.admission.refusals == 1
    queue.close(drain=False)


def test_cancel_queued_job_never_runs(serve_dir, virtual_clock):
    queue = JobQueue(serve_dir, max_workers=1, clock=virtual_clock, start=False)
    job = queue.submit(make_spec("imputation"))
    cancelled = queue.cancel(job.job_id)
    assert cancelled.status == "cancelled"
    assert cancelled.error == "cancelled before start"
    queue.resume_pending()
    queue.close()  # drains: nothing may still be pending
    assert queue.store.get(job.job_id).status == "cancelled"
    assert not (serve_dir / "jobs" / job.job_id).exists()


def test_cancel_running_job_interrupts_at_chunk_boundary(serve_dir, virtual_clock):
    provider = GateProvider(SimulatedProvider(), gate_after=2)
    queue = JobQueue(serve_dir, provider=provider, max_workers=1, clock=virtual_clock)
    job = queue.submit(make_spec("imputation"))
    assert provider.gated.wait(timeout=30)
    result = queue.cancel(job.job_id)
    assert result.status == "running"  # cancellation is cooperative
    provider.release.set()
    done = queue.store.wait_for(job.job_id)
    assert done.status == "cancelled"
    assert done.error == "cancelled"
    # the checkpoint journal survives: the work is resumable, not lost
    assert (serve_dir / "jobs" / job.job_id / "checkpoint.jsonl").exists()


def test_cancel_unknown_and_terminal_jobs_is_safe(queue):
    assert queue.cancel("job-9999") is None
    job = queue.submit(make_spec("imputation"))
    queue.store.wait_for(job.job_id)
    assert queue.cancel(job.job_id).status == "succeeded"


def test_hub_shares_identical_prompts_across_tenants(queue):
    first = queue.submit(make_spec("imputation", tenant="acme"))
    queue.store.wait_for(first.job_id)
    second = queue.submit(make_spec("imputation", tenant="globex"))
    done = queue.store.wait_for(second.job_id)
    assert done.status == "succeeded"
    hub = queue.registry.hub.stats()
    # globex's identical prompts were answered from the hub's settled
    # results — shared across tenants without touching acme's cache...
    assert hub["shared_calls"] > 0
    # ...and both tenants' reports are byte-identical cold runs.
    first_report = queue.store.get(first.job_id).result["report_digest"]
    assert done.result["report_digest"] == first_report
    # sharing is not a cache hit: the audit saw no cross-tenant hits.
    assert queue.audit_violations == []


def test_tenant_caches_stay_isolated_on_disk(queue, serve_dir):
    queue.submit(make_spec("imputation", tenant="acme"))
    job = queue.submit(make_spec("imputation", tenant="globex"))
    queue.store.wait_for(job.job_id)
    queue.drain()
    acme = (serve_dir / "tenants" / "acme" / "cache.jsonl").read_text()
    globex = (serve_dir / "tenants" / "globex" / "cache.jsonl").read_text()
    assert '"namespace": "acme"' in acme and '"namespace": "globex"' in globex
    assert '"namespace": "globex"' not in acme
    assert '"namespace": "acme"' not in globex


def test_audit_tripwire_flags_alien_cache_hits(queue):
    """The audit must trip on a cross-tenant hit if isolation ever regresses."""
    paid = SimpleNamespace(
        prompt="p", max_tokens=64, version="v1", provenance="provider"
    )
    stolen = SimpleNamespace(
        prompt="p", max_tokens=64, version="v1", provenance="cache-exact"
    )
    queue.audit.fold("acme", "job-1000", [paid])
    queue.audit.fold("acme", "job-1001", [stolen])  # own hit: fine
    assert queue.audit_violations == []
    queue.audit.fold("globex", "job-1002", [stolen])  # alien hit: violation
    violations = queue.audit_violations
    assert len(violations) == 1
    assert violations[0]["tenant"] == "globex"
    assert violations[0]["owners"] == ["acme"]


def test_restart_recovers_queued_jobs(serve_dir, virtual_clock):
    queue = JobQueue(serve_dir, max_workers=1, clock=virtual_clock, start=False)
    job = queue.submit(make_spec("imputation"))
    queue.close(drain=False)  # graceful stop before the job ever started

    revived = JobQueue(serve_dir, max_workers=1, clock=virtual_clock)
    done = revived.store.wait_for(job.job_id)
    assert done.status == "succeeded"
    assert done.attempts == 1 and done.resumed is False
    revived.close()


def test_kill_midrun_then_resume(serve_dir, virtual_clock):
    provider = GateProvider(SimulatedProvider(), gate_after=3)
    queue = JobQueue(serve_dir, provider=provider, max_workers=1, clock=virtual_clock)
    job = queue.submit(make_spec("imputation", workers=2))
    assert provider.gated.wait(timeout=30)

    killer = threading.Thread(target=queue.kill)
    killer.start()
    # kill() marks the queue dead and cancels tokens *before* joining;
    # waiting on its barrier makes releasing the gate race-free.
    assert queue.kill_cancelled.wait(timeout=30)
    provider.release.set()
    killer.join(timeout=60)
    assert not killer.is_alive()
    # death wrote nothing: the ledger still says "running" on disk
    statuses = [
        json.loads(line).get("status")
        for line in (serve_dir / "jobs.jsonl").read_text().splitlines()
    ]
    assert statuses == [None, "running"]  # submit record, then running

    revived = JobQueue(serve_dir, max_workers=1, clock=virtual_clock)
    done = revived.store.wait_for(job.job_id)
    assert done.status == "succeeded"
    assert done.resumed is True and done.attempts == 2
    assert revived.audit_violations == []
    revived.close()


def test_submit_after_shutdown_is_refused(serve_dir, virtual_clock):
    queue = JobQueue(serve_dir, max_workers=1, clock=virtual_clock)
    queue.close()
    with pytest.raises(QuotaExceeded) as refusal:
        queue.submit(make_spec("imputation"))
    assert not refusal.value.retryable


def test_stats_shape(queue):
    job = queue.submit(make_spec("imputation"))
    queue.store.wait_for(job.job_id)
    stats = queue.stats()
    assert stats["jobs"] == {"succeeded": 1}
    assert stats["tenants"]["acme"] == {"queued": 0, "running": 0}
    assert set(stats["hub"]) == {
        "settled",
        "inflight",
        "shared_calls",
        "settled_calls",
    }
    assert stats["audit_violations"] == 0
    assert stats["refusals"] == 0


def test_first_attempt_snapshot_is_atomic_and_parseable(queue, serve_dir):
    job = queue.submit(make_spec("imputation"))
    queue.store.wait_for(job.job_id)
    job_dir = serve_dir / "jobs" / job.job_id
    snapshot = json.loads((job_dir / "cache_state.json").read_text())
    assert set(snapshot) == {"exact", "sealed"}
    # the write goes through a tmp file + rename; no tmp file survives
    assert not (job_dir / "cache_state.json.tmp").exists()


def test_torn_cache_snapshot_is_treated_as_absent(queue, serve_dir):
    """A snapshot torn by a mid-write process kill must not crash resume.

    Pre-fix, ``json.loads`` of the torn file raised *outside* the worker's
    try/finally, leaking the admission slot and leaving the job
    non-terminal forever.  Now the snapshot is written atomically, and a
    corrupt leftover from an older incarnation reads as "no snapshot".
    """
    job = queue.submit(make_spec("imputation"))
    queue.store.wait_for(job.job_id)
    job_dir = serve_dir / "jobs" / job.job_id
    (job_dir / "cache_state.json").write_text('{"exact": ["tor', encoding="utf-8")
    record = queue.store.get(job.job_id)
    assert record.attempts == 1  # > 0: the restore (not snapshot) path
    queue.registry.job_started("acme")
    try:
        queue._restore_cache_state(record, "acme", job_dir)  # must not raise
    finally:
        queue.registry.job_finished("acme")


def test_failed_job_cache_entries_count_as_self_paid(serve_dir, virtual_clock):
    """Entries a *failed* attempt cached must be folded into the audit.

    Pre-fix only succeeded/cancelled jobs folded their ledgers, so a
    sibling job (seeded at submit time, before the entries existed) that
    later hit those entries tripped a false cross-tenant violation.
    """
    from repro.llm.errors import ProviderError
    from repro.llm.providers import LLMProvider

    class DieAfter(LLMProvider):
        """Delegates ``allow`` calls to the shared provider, then dies."""

        def __init__(self, inner, allow: int):
            self.inner = inner
            self.allow = allow
            self.calls = 0
            self._lock = threading.Lock()

        def cache_identity(self) -> str:
            return self.inner.cache_identity()

        def complete(self, request):
            with self._lock:
                self.calls += 1
                dead = self.calls > self.allow
            if dead:
                raise ProviderError("provider died mid-job")
            return self.inner.complete(request)

    shared = SimulatedProvider()
    queue = JobQueue(
        serve_dir,
        provider=shared,
        max_workers=1,
        clock=virtual_clock,
        provider_factory=lambda spec: (
            DieAfter(shared, 2) if spec.options.get("die") else None
        ),
        start=False,  # both jobs submit (and seed) before either runs
    )
    doomed = queue.submit(make_spec("imputation", die=True))
    sibling = queue.submit(make_spec("imputation"))
    queue.resume_pending()
    assert queue.store.wait_for(doomed.job_id).status == "failed"
    assert queue.store.wait_for(sibling.job_id).status == "succeeded"
    # the sibling's exact hits on the failed attempt's entries are its
    # own tenant's — the audit must stay clean.
    assert queue.audit_violations == []
    queue.close()
