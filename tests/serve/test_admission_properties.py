"""Property suite for admission control.

Hypothesis drives random interleavings of submissions, grants, releases
and clock advances against the token bucket, the quota counters and the
round-robin dispatcher, pinning the invariants the serving layer leans
on:

- token counts stay within ``[0, capacity]`` under any acquire/advance
  sequence, and refill is *additive over time*: advancing the clock in
  two steps grants exactly what one combined step grants;
- queued/running counters never go negative and always reconcile with
  the number of outstanding grants (grant/release sequences commute);
- round-robin dispatch never starves: any tenant with ready work is
  served within one full rotation, whatever the backlog of the others.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resilience.clock import VirtualClock
from repro.serve.admission import (
    AdmissionController,
    QuotaExceeded,
    TenantQuota,
    TokenBucket,
)

TENANTS = ("alpha", "bravo", "charlie", "delta")


# -- token bucket ---------------------------------------------------------------


@given(
    capacity=st.floats(min_value=0.5, max_value=32.0),
    rate=st.floats(min_value=0.0, max_value=8.0),
    steps=st.lists(
        st.one_of(
            st.tuples(st.just("advance"), st.floats(min_value=0.0, max_value=10.0)),
            st.tuples(st.just("acquire"), st.floats(min_value=0.0, max_value=4.0)),
        ),
        max_size=50,
    ),
)
@settings(max_examples=120, deadline=None)
def test_tokens_stay_bounded(capacity, rate, steps):
    clock = VirtualClock()
    bucket = TokenBucket(capacity, rate, clock=clock)
    for action, amount in steps:
        if action == "advance":
            clock.advance(amount)
        else:
            granted = bucket.try_acquire(amount)
            if granted and amount > capacity:
                pytest.fail("granted more than capacity in one acquire")
        tokens = bucket.tokens
        assert 0.0 <= tokens <= capacity + 1e-9


@given(
    rate=st.floats(min_value=0.1, max_value=8.0),
    split=st.floats(min_value=0.0, max_value=1.0),
    total=st.floats(min_value=0.0, max_value=20.0),
)
@settings(max_examples=80, deadline=None)
def test_refill_is_additive_over_time(rate, split, total):
    """advance(a); advance(b) refills exactly like advance(a + b)."""
    one = TokenBucket(100.0, rate, clock=VirtualClock())
    two = TokenBucket(100.0, rate, clock=VirtualClock())
    for bucket in (one, two):
        assert bucket.try_acquire(100.0)  # drain to zero
    one.clock.advance(total)
    two.clock.advance(total * split)
    assert two.tokens <= one.tokens + 1e-9  # monotone in elapsed time
    two.clock.advance(total * (1.0 - split))
    assert one.tokens == pytest.approx(two.tokens, abs=1e-6)


@given(
    acquires=st.lists(st.floats(min_value=0.1, max_value=3.0), max_size=30)
)
@settings(max_examples=80, deadline=None)
def test_never_grants_more_than_refilled(acquires):
    """Total granted tokens never exceed capacity + refilled amount."""
    clock = VirtualClock()
    bucket = TokenBucket(4.0, 1.0, clock=clock)
    granted = 0.0
    for index, amount in enumerate(acquires):
        if index % 3 == 0:
            clock.advance(0.5)
        if bucket.try_acquire(amount):
            granted += amount
    refilled = 0.5 * ((len(acquires) + 2) // 3)
    assert granted <= 4.0 + refilled + 1e-6


# -- quota counters -------------------------------------------------------------


@st.composite
def _admission_ops(draw):
    """A random, *validity-respecting* op sequence over several tenants."""
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["admit", "start", "finish", "forget"]),
                st.sampled_from(TENANTS),
            ),
            max_size=80,
        )
    )
    return ops


@given(ops=_admission_ops())
@settings(max_examples=120, deadline=None)
def test_counters_never_negative(ops):
    controller = AdmissionController(
        clock=VirtualClock(),
        default_quota=TenantQuota(max_queued=4, max_running=2),
    )
    queued = {tenant: 0 for tenant in TENANTS}
    running = {tenant: 0 for tenant in TENANTS}
    for action, tenant in ops:
        if action == "admit":
            try:
                controller.admit(tenant)
                queued[tenant] += 1
            except QuotaExceeded:
                assert queued[tenant] >= 4  # refused exactly at the quota
        elif action == "start":
            if controller.start(tenant):
                queued[tenant] -= 1
                running[tenant] += 1
            else:
                assert queued[tenant] == 0 or running[tenant] >= 2
        elif action == "finish":
            if running[tenant] > 0:
                controller.finish(tenant)
                running[tenant] -= 1
            else:
                with pytest.raises(ValueError):
                    controller.finish(tenant)
        elif action == "forget":
            if queued[tenant] > 0:
                controller.forget_queued(tenant)
                queued[tenant] -= 1
            else:
                with pytest.raises(ValueError):
                    controller.forget_queued(tenant)
        for name in TENANTS:
            assert controller.queued(name) == queued[name] >= 0
            assert controller.running(name) == running[name] >= 0


@given(
    grants=st.lists(st.sampled_from(TENANTS), min_size=1, max_size=12),
    order=st.randoms(use_true_random=False),
)
@settings(max_examples=60, deadline=None)
def test_grant_release_commutes(grants, order):
    """Releasing outstanding grants in any order reconciles to zero."""
    controller = AdmissionController(
        clock=VirtualClock(),
        default_quota=TenantQuota(max_queued=32, max_running=32),
    )
    started = []
    for tenant in grants:
        controller.admit(tenant)
        assert controller.start(tenant)
        started.append(tenant)
    order.shuffle(started)
    for tenant in started:
        controller.finish(tenant)
    for tenant in TENANTS:
        assert controller.queued(tenant) == 0
        assert controller.running(tenant) == 0


# -- round-robin fairness -------------------------------------------------------


@given(
    backlog=st.dictionaries(
        st.sampled_from(TENANTS),
        st.integers(min_value=1, max_value=20),
        min_size=2,
    )
)
@settings(max_examples=80, deadline=None)
def test_round_robin_never_starves(backlog):
    """Every backlogged tenant is served within one full rotation."""
    controller = AdmissionController(
        clock=VirtualClock(),
        default_quota=TenantQuota(max_queued=32, max_running=32),
    )
    remaining = dict(backlog)
    for tenant, count in backlog.items():
        for _ in range(count):
            controller.admit(tenant)
    first_service_round: dict[str, int] = {}
    rounds = 0
    while remaining:
        rounds += 1
        tenant = controller.next_tenant()
        assert tenant is not None, "work remains but dispatcher found none"
        assert controller.start(tenant)
        controller.finish(tenant)
        first_service_round.setdefault(tenant, rounds)
        remaining[tenant] -= 1
        if remaining[tenant] == 0:
            del remaining[tenant]
    # each tenant's first grant happens within the first |tenants| picks
    for tenant in backlog:
        assert first_service_round[tenant] <= len(backlog)


def test_rate_limited_tenant_is_refused_then_recovers(virtual_clock):
    controller = AdmissionController(clock=virtual_clock)
    controller.register(
        "metered", TenantQuota(max_queued=32, max_running=1, rate=1.0, burst=2.0)
    )
    assert controller.queued("metered") == 0
    controller.admit("metered")
    controller.admit("metered")  # burst of 2 consumed
    with pytest.raises(QuotaExceeded):
        controller.admit("metered")
    virtual_clock.advance(1.0)  # one token refilled at rate=1/s
    controller.admit("metered")
    assert controller.queued("metered") == 3
    assert controller.refusals == 1
