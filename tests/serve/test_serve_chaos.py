"""Concurrency/chaos stress suite for the serving layer (tier 2).

The scenario the service exists to survive, end to end:

1. **Flood**: ``SERVE_CHAOS_JOBS`` jobs (default 100) across 8 tenants,
   8 pool workers, every job wrapped in its own seeded
   :class:`ChaosProvider` (content-keyed transient + rate-limit faults) —
   the per-job wrapper means chaos jobs bypass the coalesce hub, so this
   suite exercises the cache/checkpoint path, not the hub's dedup.
2. **Cancel**: a handful of queued jobs are cancelled through the public
   API mid-flood.
3. **Kill**: a call-count gate under every provider parks the fleet
   mid-run and the server is killed — tokens cancelled, nothing written,
   worker threads joined.  On-disk state is then exactly a SIGKILL's.
4. **Restart + drain**: a new queue over the same directory must report
   every interrupted job ``resumable``, re-run each from its checkpoint,
   and drain the whole fleet to terminal states.
5. **Verify**: every resumed job's stored ``RunReport`` is byte-identical
   to an *uninterrupted* direct replay of that tenant's job sequence with
   identically-seeded chaos, and the provenance audit saw zero
   cross-tenant cache hits.

CI narrows the fleet via ``SERVE_CHAOS_JOBS``; the default is the full
100-job fleet from the acceptance criteria.
"""

from __future__ import annotations

import os
import threading

import pytest

from repro.core.runtime.system import LinguaManga
from repro.llm.cache import PromptCache
from repro.llm.errors import LLMError
from repro.llm.faults import ChaosProvider, FaultSpec
from repro.llm.providers import SimulatedProvider
from repro.llm.service import LLMService
from repro.resilience.clock import VirtualClock
from repro.serve import JobQueue
from repro.serve.jobs import JobSpec, run_task
from tests.serve.conftest import GateProvider

pytestmark = pytest.mark.tier2

N_JOBS = int(os.environ.get("SERVE_CHAOS_JOBS", "100"))
N_TENANTS = 8
FAULTS = [
    FaultSpec(kind="transient", rate=0.05),
    FaultSpec(kind="rate_limit", rate=0.02, retry_after=0.5),
]

#: Small per-task dataset refs: the fleet's size comes from job count, not
#: per-job work.  Seeds vary per job so tenants hold a mix of cold and
#: warm-overlapping prompts.
TASK_CYCLE = (
    ("imputation", lambda i: {"seed": 11 + i % 3, "n_train": 4, "n_test": 8}),
    ("names", lambda i: {"seed": 3 + i % 3, "n_documents": 8}),
    ("er", lambda i: {"name": "beer", "seed": 7, "n_entities": 12}),
)


def _spec(index: int) -> JobSpec:
    task, ref = TASK_CYCLE[index % len(TASK_CYCLE)]
    return JobSpec(
        tenant=f"tenant{index % N_TENANTS}",
        task=task,
        dataset=ref(index),
        options={"workers": 1 + (index % 3)},
    )


def _chaos_factory(shared):
    """Per-job fault injector, seeded on the spec digest (deterministic)."""

    def factory(spec: JobSpec):
        return ChaosProvider(
            shared,
            faults=FAULTS,
            seed=f"chaos-{spec.digest()}",
            key_mode="content",
        )

    return factory


def _direct_replay(spec: JobSpec, cache_path) -> str | None:
    """An uninterrupted direct run of ``spec`` with identical chaos.

    Returns the canonical report, or ``None`` when the run fails (a
    content-keyed fault schedule exhausts the retry budget identically in
    the API run and here).
    """
    service = LLMService(
        _chaos_factory(SimulatedProvider())(spec),
        cache=PromptCache(path=cache_path),
        clock=VirtualClock(),
    )
    workers = int(spec.options.get("workers", 1))
    try:
        result = run_task(spec, LinguaManga(service=service), workers=workers)
    except LLMError:
        return None
    report = getattr(result, "report", result)
    return report.canonical_json()


def test_chaos_flood_kill_restart_drain(tmp_path, virtual_clock):
    serve_dir = tmp_path / "serve"
    gate = GateProvider(SimulatedProvider(), gate_after=max(20, 2 * N_JOBS))
    queue = JobQueue(
        serve_dir,
        provider=gate,
        provider_factory=_chaos_factory(gate),
        max_workers=8,
        clock=virtual_clock,
    )

    # -- flood -------------------------------------------------------------------
    jobs = [queue.submit(_spec(index)) for index in range(N_JOBS)]
    assert len({job.job_id for job in jobs}) == N_JOBS

    # -- cancel a handful that are still queued ----------------------------------
    # picked from the tail, where the 8-worker pool has not reached yet, so
    # most cancels land before start; the rare one that races into a
    # running job pollutes that tenant's replay target and is excluded.
    cancelled_clean: set[str] = set()
    polluted_tenants: set[str] = set()
    for job in jobs[-max(3, N_JOBS // 10) :]:
        record = queue.cancel(job.job_id)
        if record.status == "cancelled" and record.error == "cancelled before start":
            cancelled_clean.add(job.job_id)
        elif record.status not in ("succeeded", "failed"):
            # raced into running: cooperative cancel leaves a partial cache
            # journal behind, so this tenant's replay target is undefined.
            polluted_tenants.add(job.spec.tenant)

    # -- kill mid-run ------------------------------------------------------------
    assert gate.gated.wait(timeout=120), "fleet finished before the kill gate"
    killer = threading.Thread(target=queue.kill)
    killer.start()
    # kill() marks the queue dead and cancels every running job's token
    # *before* joining workers; only then is releasing the gate race-free.
    assert queue.kill_cancelled.wait(timeout=60)
    gate.release.set()
    killer.join(timeout=120)
    assert not killer.is_alive()

    # -- every job is in a recoverable state -------------------------------------
    revived = JobQueue(
        serve_dir,
        provider=SimulatedProvider(),
        provider_factory=_chaos_factory(SimulatedProvider()),
        max_workers=8,
        clock=virtual_clock,
        start=False,
    )
    after_kill = revived.store.statuses()
    assert set(after_kill) == {job.job_id for job in jobs}
    assert set(after_kill.values()) <= {"succeeded", "cancelled", "resumable", "queued"}
    interrupted = {j for j, status in after_kill.items() if status == "resumable"}
    assert interrupted, "the kill never caught a job mid-run"

    # -- restart and drain -------------------------------------------------------
    revived.resume_pending()
    final = revived.drain(timeout=600)
    assert set(final.values()) <= {"succeeded", "cancelled", "failed"}
    assert [j for j, s in final.items() if s == "failed"] == []
    assert {j for j, s in final.items() if s == "cancelled"} == cancelled_clean | {
        j for j, s in after_kill.items() if s == "cancelled"
    }

    # interrupted jobs were resumed, not restarted blind
    for job_id in interrupted:
        record = revived.store.get(job_id)
        assert record.status == "succeeded"
        assert record.resumed is True and record.attempts >= 2

    # -- zero cross-tenant cache hits in the provenance-tagged ledger ------------
    assert queue.audit_violations == []
    assert revived.audit_violations == []

    # -- resumed reports are byte-identical to uninterrupted direct runs ---------
    compared = 0
    for tenant_index in range(N_TENANTS):
        tenant = f"tenant{tenant_index}"
        if tenant in polluted_tenants:
            continue
        replay_cache = tmp_path / "replay" / tenant / "cache.jsonl"
        # replay the tenant's surviving jobs in submission order: with the
        # one-running-job-per-tenant quota that *is* execution order, so
        # the direct cache journal evolves exactly like the tenant's.
        for record in revived.store.jobs(tenant=tenant):
            if record.status != "succeeded":
                continue
            direct = _direct_replay(record.spec, replay_cache)
            assert direct is not None, f"{record.job_id} succeeded but replay failed"
            api = (
                serve_dir / "jobs" / record.job_id / "report.json"
            ).read_text(encoding="utf-8")
            assert api == direct, (
                f"{record.job_id} ({tenant}, resumed={record.resumed}) "
                "drifted from its uninterrupted direct run"
            )
            compared += 1
    assert compared >= N_JOBS // 2, "too few jobs were byte-verified"
    # the kill-interrupted jobs specifically must be among the verified
    assert interrupted - {
        j for j, s in final.items() if s != "succeeded"
    } <= {j for j, s in final.items() if s == "succeeded"}

    revived.close()
