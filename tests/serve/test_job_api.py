"""Golden-response regression tests for the HTTP job API.

Every status/progress payload the API returns is canonical JSON with no
wall-clock fields, so the full response bodies for the three demo apps —
cold and warm — are pinned byte-for-byte as golden fixtures under
``tests/serve/golden_api/``.  A change in job payloads, progress events,
metric rounding or sequence numbering shows up as a fixture diff, not a
silent drift.

Regenerate after an intentional change with::

    REGEN_GOLDEN_API=1 PYTHONPATH=src python -m pytest tests/serve/test_job_api.py

Error paths (malformed JSON, unknown routes, quota refusals) are asserted
inline — they are part of the API contract too.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.serve import JobQueue, JobServer
from repro.serve.admission import TenantQuota
from repro.serve.jobs import canonical_json
from tests.serve.conftest import ApiClient, make_spec

GOLDEN_DIR = Path(__file__).parent / "golden_api"
REGEN = os.environ.get("REGEN_GOLDEN_API") == "1"


def _check_golden(name: str, payload: dict) -> None:
    text = canonical_json(payload) + "\n"
    path = GOLDEN_DIR / f"{name}.json"
    if REGEN:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text, encoding="utf-8")
        return
    assert path.exists(), (
        f"golden fixture {path.name} is missing; regenerate with "
        "REGEN_GOLDEN_API=1"
    )
    assert text == path.read_text(encoding="utf-8"), (
        f"API payload for {name!r} drifted from its golden fixture; if the "
        "change is intentional, regenerate with REGEN_GOLDEN_API=1"
    )


@pytest.mark.parametrize("task", ["er", "names", "imputation"])
def test_job_payloads_match_golden(task, queue, client):
    # cold: fresh tenant cache, every answer paid at the provider
    status, accepted = client.submit(make_spec(task))
    assert status == 202
    assert accepted["job_id"] == "job-0001"
    # the 202 snapshot races the pool worker: either not-yet-dispatched
    # or already running, but never terminal
    assert accepted["status"] in ("queued", "running")
    queue.store.wait_for(accepted["job_id"])
    status, cold = client.job(accepted["job_id"])
    assert status == 200 and cold["status"] == "succeeded"

    # warm: same tenant resubmits the same spec against its journal
    status, accepted = client.submit(make_spec(task))
    assert status == 202
    queue.store.wait_for(accepted["job_id"])
    status, warm = client.job(accepted["job_id"])
    assert status == 200 and warm["status"] == "succeeded"

    # warm really was warm: the cache answered, the provider did not
    assert warm["result"]["cached_calls"] > 0
    assert warm["result"]["cost"] < cold["result"]["cost"]
    # same inputs -> same answers; only the cost provenance differs
    for metric in ("f1", "precision", "recall", "accuracy"):
        if metric in cold["result"]:
            assert warm["result"][metric] == cold["result"][metric]

    _check_golden(f"{task}_cold", cold)
    _check_golden(f"{task}_warm", warm)


def test_health_and_listing(queue, client):
    status, health = client.request("GET", "/healthz")
    assert status == 200 and health["status"] == "ok"
    assert health["stats"]["jobs"] == {}

    job = queue.submit(make_spec("imputation", tenant="acme"))
    queue.store.wait_for(job.job_id)
    status, listing = client.request("GET", "/jobs")
    assert status == 200
    assert [j["job_id"] for j in listing["jobs"]] == [job.job_id]
    # listings are summaries: progress rides only on single-job fetches
    assert "progress" not in listing["jobs"][0]

    status, filtered = client.request("GET", "/jobs?tenant=globex")
    assert status == 200 and filtered["jobs"] == []


def test_cancel_over_http(serve_dir, virtual_clock):
    queue = JobQueue(serve_dir, max_workers=1, clock=virtual_clock, start=False)
    with JobServer(queue) as server:
        client = ApiClient(server.host, server.port)
        _, accepted = client.submit(make_spec("imputation"))
        status, cancelled = client.cancel(accepted["job_id"])
        assert status == 200 and cancelled["status"] == "cancelled"
        status, _ = client.cancel("job-9999")
        assert status == 404
    queue.close(drain=False)


def test_error_paths(queue, client, server):
    status, body = client.request("POST", "/jobs", {"tenant": "acme", "task": "x"})
    assert status == 400 and "unknown task" in body["error"]

    status, body = client.request("GET", "/jobs/job-9999")
    assert status == 404

    status, body = client.request("DELETE", "/jobs")
    assert status == 405

    status, body = client.request("GET", "/nope")
    assert status == 404

    # raw non-JSON body
    import http.client

    connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        connection.request("POST", "/jobs", body=b"{not json")
        response = connection.getresponse()
        assert response.status == 400
    finally:
        connection.close()

    assert queue.store.jobs() == []  # nothing refused left a ledger trace


def test_quota_refusal_maps_to_429(serve_dir, virtual_clock):
    queue = JobQueue(
        serve_dir,
        max_workers=1,
        clock=virtual_clock,
        default_quota=TenantQuota(max_queued=1, max_running=1),
        start=False,
    )
    with JobServer(queue) as server:
        client = ApiClient(server.host, server.port)
        status, _ = client.submit(make_spec("imputation"))
        assert status == 202
        status, refused = client.submit(make_spec("imputation"))
        assert status == 429 and "queued jobs" in refused["error"]
    queue.close(drain=False)


def test_shutdown_maps_to_503(serve_dir, virtual_clock):
    queue = JobQueue(serve_dir, max_workers=1, clock=virtual_clock)
    with JobServer(queue) as server:
        client = ApiClient(server.host, server.port)
        queue.close()
        status, refused = client.submit(make_spec("imputation"))
        assert status == 503 and "shut down" in refused["error"]


def _raw_request(server, payload: bytes) -> bytes:
    """One raw HTTP exchange; tolerates the server answering mid-send."""
    import socket

    with socket.create_connection((server.host, server.port), timeout=30) as sock:
        try:
            sock.sendall(payload)
        except OSError:
            pass  # server already responded and closed its read side
        chunks = []
        try:
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        except OSError:
            pass
        return b"".join(chunks)


def test_malformed_content_length_maps_to_400(server):
    response = _raw_request(
        server, b"POST /jobs HTTP/1.1\r\nContent-Length: banana\r\n\r\n"
    )
    assert response.startswith(b"HTTP/1.1 400 ")


def test_negative_content_length_maps_to_400(server):
    response = _raw_request(
        server, b"POST /jobs HTTP/1.1\r\nContent-Length: -5\r\n\r\n"
    )
    assert response.startswith(b"HTTP/1.1 400 ")


def test_oversized_body_maps_to_413(server):
    from repro.serve.server import MAX_BODY_BYTES

    head = f"POST /jobs HTTP/1.1\r\nContent-Length: {MAX_BODY_BYTES + 1}\r\n\r\n"
    response = _raw_request(server, head.encode("ascii"))
    assert response.startswith(b"HTTP/1.1 413 ")


def test_unbounded_header_stream_maps_to_400(server):
    """A client streaming headers forever must be cut off, not looped on."""
    from repro.serve.server import MAX_HEADER_BYTES

    filler = b"X-Filler: " + b"a" * 1013 + b"\r\n"  # 1 KiB per line
    lines = MAX_HEADER_BYTES // len(filler) + 2
    payload = b"GET /healthz HTTP/1.1\r\n" + filler * lines  # no terminator
    response = _raw_request(server, payload)
    assert response.startswith(b"HTTP/1.1 400 ")
