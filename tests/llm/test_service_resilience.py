"""Tests for LLMService resilience: outcomes, deadline, breaker, fallbacks."""

from __future__ import annotations

import pytest

from repro.llm.errors import CircuitOpenError, ProviderError, RateLimitError
from repro.llm.faults import ChaosProvider, FaultKind, FaultSpec
from repro.llm.providers import LLMProvider, LLMRequest, LLMResponse, SimulatedProvider
from repro.llm.service import LLMService
from repro.resilience import (
    BreakerState,
    CircuitBreaker,
    Deadline,
    FallbackChain,
    ResiliencePolicy,
    RetryPolicy,
    VirtualClock,
)

PROMPT = "Which language is this? Text: El informe fue presentado ayer."


class DeadProvider(LLMProvider):
    """Always fails with a transient error."""

    model_name = "dead"

    def __init__(self):
        self.attempts = 0

    def complete(self, request: LLMRequest) -> LLMResponse:
        self.attempts += 1
        raise ProviderError("hard down")


class RateLimitStormProvider(LLMProvider):
    """Always rejects with a large retry_after."""

    model_name = "throttled"

    def __init__(self, retry_after: float = 60.0):
        self.retry_after = retry_after

    def complete(self, request: LLMRequest) -> LLMResponse:
        raise RateLimitError(retry_after=self.retry_after)


class TestCacheKey:
    def test_max_tokens_distinguishes_cache_entries(self):
        service = LLMService(SimulatedProvider())
        service.complete(PROMPT, max_tokens=256)
        service.complete(PROMPT, max_tokens=8)
        assert service.served_calls == 2  # not conflated
        assert service.cached_calls == 0
        service.complete(PROMPT, max_tokens=8)
        assert service.cached_calls == 1

    def test_truncation_respects_max_tokens_per_entry(self):
        service = LLMService(SimulatedProvider())
        service.complete(PROMPT, max_tokens=256)
        service.complete(PROMPT, max_tokens=1)
        long_record, short_record = service.records
        assert short_record.completion_tokens <= 1
        assert long_record.completion_tokens >= short_record.completion_tokens


class TestOutcomes:
    def test_clean_call_is_served(self):
        service = LLMService(SimulatedProvider())
        service.complete(PROMPT)
        assert service.records[-1].outcome == "served"

    def test_cache_hit_is_cached(self):
        service = LLMService(SimulatedProvider())
        service.complete(PROMPT)
        service.complete(PROMPT)
        assert service.records[-1].outcome == "cached"

    def test_retried_outcome_after_transient_failure(self):
        chaos = ChaosProvider(
            SimulatedProvider(),
            [FaultSpec(kind=FaultKind.TRANSIENT, rate=0.5)],
            seed=4,
        )
        service = LLMService(chaos, max_retries=6)
        for index in range(10):
            service.complete(f"summarize document number {index}")
        outcomes = {r.outcome for r in service.records}
        assert "retried" in outcomes and "served" in outcomes

    def test_gave_up_recorded_and_excluded_from_served(self):
        service = LLMService(DeadProvider(), max_retries=2)
        with pytest.raises(ProviderError):
            service.complete("anything at all")
        assert service.served_calls == 0
        assert service.failed_calls == 1
        assert service.records[-1].outcome == "gave_up"
        assert service.usage().failed_calls == 1

    def test_usage_counts_retries(self):
        chaos = ChaosProvider(
            SimulatedProvider(),
            [FaultSpec(kind=FaultKind.TRANSIENT, rate=0.5)],
            seed=4,
        )
        service = LLMService(chaos, max_retries=6)
        for index in range(10):
            service.complete(f"summarize document number {index}")
        assert service.usage().retries == sum(r.retries for r in service.records)
        assert service.usage().retries > 0

    def test_ledger_table_has_outcome_column(self):
        service = LLMService(SimulatedProvider())
        service.complete(PROMPT)
        table = service.ledger_table()
        assert "outcome" in table.schema.names


class FailOnceProvider(LLMProvider):
    """Fails each distinct prompt's first attempt, then serves it."""

    model_name = "fail-once"

    def __init__(self, clock):
        self.inner = SimulatedProvider()
        self.clock = clock
        self.attempt_times: dict[str, list[float]] = {}

    def complete(self, request: LLMRequest) -> LLMResponse:
        times = self.attempt_times.setdefault(request.prompt, [])
        times.append(self.clock.now)
        if len(times) == 1:
            raise ProviderError("first attempt always fails")
        return self.inner.complete(request)


class TestDefaultPolicyJitter:
    """The service's *default* retry policy desynchronizes retry storms.

    Non-zero seeded jitter, keyed on the prompt: concurrent callers that
    failed together do not all come back at the same instant, yet every
    delay is a pure function of (prompt, attempt) — deterministic across
    runs and thread arrival orders.
    """

    def test_default_policy_carries_jitter(self):
        from repro.llm.service import DEFAULT_RETRY_JITTER

        service = LLMService(SimulatedProvider())
        assert service.policy.retry.jitter == DEFAULT_RETRY_JITTER > 0

    def test_schedules_desynchronize_by_prompt(self):
        retry = LLMService(SimulatedProvider()).policy.retry
        schedules = {
            prompt: tuple(retry.schedule(key=prompt))
            for prompt in (f"summarize document number {i}" for i in range(8))
        }
        assert len(set(schedules.values())) > 1  # not a thundering herd
        spread = {delays[0] for delays in schedules.values()}
        base = retry.backoff_seconds
        assert all(base <= d <= base * (1 + retry.jitter) for d in spread)

    def test_schedules_are_deterministic_across_services(self):
        first = LLMService(SimulatedProvider()).policy.retry
        second = LLMService(SimulatedProvider()).policy.retry
        for prompt in ("alpha", "beta", "gamma"):
            assert first.schedule(key=prompt) == second.schedule(key=prompt)

    def test_observed_retry_waits_match_the_schedule(self):
        clock = VirtualClock()
        provider = FailOnceProvider(clock)
        service = LLMService(provider, clock=clock)
        prompts = [f"classify ticket {i}" for i in range(4)]
        for prompt in prompts:
            service.complete(prompt)
        waits = {
            prompt: times[1] - times[0]
            for prompt, times in provider.attempt_times.items()
        }
        expected = {
            prompt: service.policy.retry.delay(0, key=prompt) for prompt in prompts
        }
        assert waits == pytest.approx(expected)
        assert len(set(waits.values())) > 1


class TestDeadline:
    def test_rate_limit_storm_clock_is_bounded(self):
        policy = ResiliencePolicy(
            retry=RetryPolicy(max_retries=50), deadline=Deadline(10.0)
        )
        service = LLMService(RateLimitStormProvider(retry_after=60.0), policy=policy)
        with pytest.raises(ProviderError):
            service.complete("anything")
        # Without the deadline this would be 50 * 60s; the deadline caps it.
        assert service.clock_seconds <= 10.0 + 1e-9

    def test_unbounded_without_deadline(self):
        policy = ResiliencePolicy(retry=RetryPolicy(max_retries=3))
        service = LLMService(RateLimitStormProvider(retry_after=60.0), policy=policy)
        with pytest.raises(ProviderError):
            service.complete("anything")
        assert service.clock_seconds == pytest.approx(180.0)  # 3 waits of 60s


class TestFallbackChain:
    def test_secondary_provider_serves_when_primary_down(self):
        policy = ResiliencePolicy(
            retry=RetryPolicy(max_retries=1, backoff_seconds=0.1),
            fallback=FallbackChain(providers=[SimulatedProvider()]),
        )
        service = LLMService(DeadProvider(), policy=policy)
        text = service.complete(PROMPT)
        assert text
        assert service.records[-1].outcome == "fallback"
        assert service.usage().fallback_calls == 1

    def test_fallback_order_primary_first(self):
        primary = SimulatedProvider()
        secondary = SimulatedProvider()
        policy = ResiliencePolicy(fallback=FallbackChain(providers=[secondary]))
        service = LLMService(primary, policy=policy)
        service.complete(PROMPT)
        assert primary.calls_served == 1
        assert secondary.calls_served == 0

    def test_degraded_answer_as_last_resort(self):
        policy = ResiliencePolicy(
            retry=RetryPolicy(max_retries=1, backoff_seconds=0.1),
            fallback=FallbackChain(
                providers=[DeadProvider()], degraded=lambda request: "Unknown."
            ),
        )
        service = LLMService(DeadProvider(), policy=policy)
        assert service.complete(PROMPT) == "Unknown."
        record = service.records[-1]
        assert record.outcome == "fallback"
        assert record.skill == "degraded"


class TestCircuitBreaker:
    def make_service(self, deadline=None, cooldown=30.0):
        clock = VirtualClock()
        chaos = ChaosProvider(
            SimulatedProvider(),
            [FaultSpec(kind=FaultKind.OUTAGE, start=0.0, end=100.0)],
            clock=clock,
        )
        policy = ResiliencePolicy(
            retry=RetryPolicy(max_retries=1, backoff_seconds=1.0),
            deadline=deadline,
            breaker=CircuitBreaker(
                failure_threshold=0.5, min_calls=4, cooldown_seconds=cooldown
            ),
        )
        return LLMService(chaos, policy=policy, clock=clock)

    def test_breaker_opens_under_outage(self):
        service = self.make_service()
        for index in range(2):
            with pytest.raises(ProviderError):
                service.complete(f"summarize item {index}")
        assert service.breakers[0].state == BreakerState.OPEN

    def test_open_breaker_waits_cooldown_and_recovers(self):
        service = self.make_service(cooldown=40.0)
        succeeded = False
        for index in range(50):
            try:
                service.complete(f"summarize item number {index}")
                succeeded = True
                break
            except ProviderError:
                pass
        # Waiting out breaker cooldowns advances the virtual clock past the
        # outage window (100s); the next half-open probe then succeeds.
        assert succeeded
        assert service.clock_seconds > 100.0
        assert service.breakers[0].state == BreakerState.CLOSED

    def test_circuit_open_outcome_when_deadline_blocks_probe(self):
        service = self.make_service(deadline=Deadline(5.0), cooldown=1000.0)
        for index in range(2):
            with pytest.raises(ProviderError):
                service.complete(f"summarize item {index}")
        assert service.breakers[0].state == BreakerState.OPEN
        # Cooldown (1000s) far exceeds the per-call deadline (5s): the call
        # cannot wait for a probe and is refused outright.
        with pytest.raises(CircuitOpenError):
            service.complete("one more item")
        assert service.records[-1].outcome == "circuit_open"

    def test_fallback_used_while_breaker_open(self):
        clock = VirtualClock()
        chaos = ChaosProvider(
            SimulatedProvider(),
            [FaultSpec(kind=FaultKind.OUTAGE, start=0.0, end=1e9)],
            clock=clock,
        )
        policy = ResiliencePolicy(
            retry=RetryPolicy(max_retries=1, backoff_seconds=0.5),
            breaker=CircuitBreaker(failure_threshold=0.5, min_calls=2),
            fallback=FallbackChain(providers=[SimulatedProvider()]),
        )
        service = LLMService(chaos, policy=policy, clock=clock)
        for index in range(4):
            assert service.complete(f"summarize item number {index}")
        assert service.breakers[0].state == BreakerState.OPEN
        # Primary breaker open: calls divert straight to the secondary.
        primary_attempts_before = chaos.calls
        assert service.complete("summarize one more item")
        assert chaos.calls == primary_attempts_before
        assert service.records[-1].outcome == "fallback"


class TestEndToEndDeterminism:
    def make_service(self):
        clock = VirtualClock()
        chaos = ChaosProvider(
            SimulatedProvider(),
            [
                FaultSpec(kind=FaultKind.TRANSIENT, rate=0.2),
                FaultSpec(kind=FaultKind.RATE_LIMIT, rate=0.1, retry_after=3.0),
            ],
            seed=42,
            clock=clock,
        )
        policy = ResiliencePolicy(
            retry=RetryPolicy(max_retries=4, backoff_seconds=0.5, jitter=0.3),
            deadline=Deadline(30.0),
        )
        return LLMService(chaos, policy=policy, clock=clock)

    def test_identical_runs_produce_identical_ledgers(self):
        ledgers = []
        for _ in range(2):
            service = self.make_service()
            for index in range(30):
                service.complete(f"summarize document number {index}")
            ledgers.append(
                [(r.outcome, r.retries, r.latency_seconds) for r in service.records]
            )
        assert ledgers[0] == ledgers[1]
