"""Tests for the LLM service layer: cache, budget, retries, ledger."""

from __future__ import annotations

import pytest

from repro.llm.errors import BudgetExceededError, ProviderError
from repro.llm.providers import FlakyProvider, LLMRequest, SimulatedProvider
from repro.llm.service import LLMService
from repro.llm.tokenizer import count_tokens, estimate_cost

PROMPT = "Which language is this? Text: El informe fue presentado ayer."


class TestTokenizer:
    def test_empty_is_zero(self):
        assert count_tokens("") == 0

    def test_monotone_in_length(self):
        assert count_tokens("word " * 50) > count_tokens("word " * 5)

    def test_cost_positive(self):
        assert estimate_cost(100, 50) > 0

    def test_cost_scales_with_tokens(self):
        assert estimate_cost(2000, 100) > estimate_cost(100, 100)


class TestCache:
    def test_identical_prompt_served_once(self, service: LLMService):
        first = service.complete(PROMPT)
        second = service.complete(PROMPT)
        assert first == second
        assert service.served_calls == 1
        assert service.cached_calls == 1

    def test_cached_call_is_free(self, service: LLMService):
        service.complete(PROMPT)
        cost_after_first = service.total_cost
        service.complete(PROMPT)
        assert service.total_cost == cost_after_first

    def test_cache_can_be_disabled(self):
        service = LLMService(SimulatedProvider(), cache_enabled=False)
        service.complete(PROMPT)
        service.complete(PROMPT)
        assert service.served_calls == 2

    def test_clear_cache_forces_refetch(self, service: LLMService):
        service.complete(PROMPT)
        service.clear_cache()
        service.complete(PROMPT)
        assert service.served_calls == 2


class TestBudget:
    def test_call_budget_enforced(self):
        service = LLMService(SimulatedProvider(), max_calls=2)
        service.complete("prompt one: summarize this")
        service.complete("prompt two: summarize that")
        with pytest.raises(BudgetExceededError):
            service.complete("prompt three: summarize more")

    def test_cached_hits_do_not_consume_budget(self):
        service = LLMService(SimulatedProvider(), max_calls=1)
        service.complete(PROMPT)
        service.complete(PROMPT)  # cache hit, fine
        with pytest.raises(BudgetExceededError):
            service.complete("a different prompt entirely")

    def test_cost_budget_enforced(self):
        service = LLMService(SimulatedProvider(), max_cost=1e-9)
        service.complete(PROMPT)  # first call allowed (budget checked before)
        with pytest.raises(BudgetExceededError):
            service.complete("another prompt")


class TestRetries:
    def test_transient_failures_are_retried(self):
        flaky = FlakyProvider(SimulatedProvider(), failure_rate=0.45, seed_tag="t1")
        service = LLMService(flaky, max_retries=5)
        for i in range(10):
            assert service.complete(f"summarize document number {i}")
        assert all(r.retries <= 5 for r in service.records)
        assert any(r.retries > 0 for r in service.records)

    def test_rate_limit_advances_clock(self):
        flaky = FlakyProvider(
            SimulatedProvider(), failure_rate=0.0, rate_limit_rate=0.5, seed_tag="t2"
        )
        service = LLMService(flaky, max_retries=6)
        for i in range(6):
            service.complete(f"summarize item {i}")
        assert service.clock_seconds > 0

    def test_permanent_outage_raises_after_retries(self):
        flaky = FlakyProvider(SimulatedProvider(), failure_rate=1.0)
        service = LLMService(flaky, max_retries=2)
        with pytest.raises(ProviderError):
            service.complete("anything")
        assert service.served_calls == 0  # nothing ever succeeded


class TestLedger:
    def test_usage_totals_are_conserved(self, service: LLMService):
        prompts = [f"summarize item number {i}" for i in range(5)]
        for prompt in prompts:
            service.complete(prompt, purpose="demo")
        usage = service.usage()
        assert usage.total_calls == 5
        assert usage.cost == pytest.approx(sum(r.cost for r in service.records))
        assert usage.prompt_tokens == sum(r.prompt_tokens for r in service.records)

    def test_usage_filter_by_purpose(self, service: LLMService):
        service.complete("summarize a", purpose="x")
        service.complete("summarize b", purpose="y")
        assert service.usage("x").total_calls == 1
        assert service.usage("zzz").total_calls == 0

    def test_reset_usage_keeps_cache(self, service: LLMService):
        service.complete(PROMPT)
        service.reset_usage()
        assert service.usage().total_calls == 0
        service.complete(PROMPT)
        assert service.cached_calls == 1  # cache survived

    def test_records_tag_skill(self, service: LLMService):
        service.complete(PROMPT)
        assert service.records[0].skill == "langdetect"

    def test_usage_text_rendering(self, service: LLMService):
        service.complete(PROMPT)
        text = service.usage().to_text()
        assert "calls=1" in text and "cost=$" in text


class TestSimulatedProviderDeterminism:
    def test_same_prompt_same_answer(self):
        a = SimulatedProvider().complete(LLMRequest(prompt=PROMPT))
        b = SimulatedProvider().complete(LLMRequest(prompt=PROMPT))
        assert a.text == b.text

    def test_latency_model_positive(self):
        response = SimulatedProvider().complete(LLMRequest(prompt=PROMPT))
        assert response.latency_seconds > 0
