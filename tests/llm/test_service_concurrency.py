"""Concurrency stress tests for :class:`LLMService`.

Many threads hammer one service at once; the assertions pin down the
thread-safety contract: no lost counter updates, no duplicate provider
calls for coalesced identical prompts, consistent ledger/usage accounting,
and a breaker that trips exactly like its sequential counterpart.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.llm.errors import LLMError, ProviderError
from repro.llm.providers import (
    LLMProvider,
    LLMRequest,
    LLMResponse,
    SimulatedProvider,
)
from repro.llm.service import LLMService

THREADS = 16


class BlockingProvider(LLMProvider):
    """Deterministic provider that can hold calls open on an event.

    Holding the first call open while follower threads arrive makes the
    coalescing window explicit instead of racing the scheduler for it.
    """

    model_name = "blocking-sim"

    def __init__(self, release: threading.Event | None = None):
        self.release = release
        self._lock = threading.Lock()
        self.calls_served = 0
        self.prompts: list[str] = []

    def complete(self, request: LLMRequest) -> LLMResponse:
        if self.release is not None and not self.release.wait(timeout=10):
            # Fail loud instead of silently proceeding after the deadline:
            # a gate that never opened is a test bug, and continuing would
            # let a broken coalescing window pass as a slow success.
            raise RuntimeError("BlockingProvider release gate never opened")
        with self._lock:
            self.calls_served += 1
            self.prompts.append(request.prompt)
        return LLMResponse(
            text=f"answer:{request.prompt}",
            prompt_tokens=len(request.prompt.split()),
            completion_tokens=2,
            model=self.model_name,
            latency_seconds=0.5,
        )


class FailingProvider(LLMProvider):
    model_name = "failing-sim"

    def __init__(self):
        self._lock = threading.Lock()
        self.attempts = 0

    def complete(self, request: LLMRequest) -> LLMResponse:
        with self._lock:
            self.attempts += 1
        raise ProviderError("always down")


def _hammer(work, n_threads: int = THREADS, per_thread: int = 1):
    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        futures = [
            pool.submit(work, thread_index)
            for thread_index in range(n_threads)
            for _ in range(per_thread)
        ]
        return [f.result() for f in futures]


class TestCoalescing:
    def test_identical_prompts_share_one_provider_call(self):
        provider = BlockingProvider(release=threading.Event())
        service = LLMService(provider)
        barrier = threading.Barrier(THREADS)

        def work(_):
            barrier.wait()
            if barrier.n_waiting == 0:  # all arrived; let the leader through
                provider.release.set()
            return service.complete("same prompt")

        results = _hammer(work)
        assert set(results) == {"answer:same prompt"}
        assert provider.calls_served == 1
        usage = service.usage()
        assert usage.served_calls == 1
        assert usage.cached_calls == THREADS - 1
        assert usage.total_calls == THREADS

    def test_distinct_prompts_are_not_coalesced(self):
        provider = BlockingProvider()
        service = LLMService(provider)
        results = _hammer(lambda i: service.complete(f"prompt {i}"))
        assert sorted(results) == sorted(f"answer:prompt {i}" for i in range(THREADS))
        assert provider.calls_served == THREADS
        assert service.usage().cached_calls == 0

    def test_mixed_load_serves_each_distinct_prompt_once(self):
        provider = BlockingProvider()
        service = LLMService(provider)
        distinct = 4

        def work(i):
            return service.complete(f"prompt {i % distinct}")

        _hammer(work, n_threads=THREADS, per_thread=4)
        assert provider.calls_served == distinct
        assert sorted(set(provider.prompts)) == [
            f"prompt {i}" for i in range(distinct)
        ]
        usage = service.usage()
        assert usage.total_calls == THREADS * 4
        assert usage.served_calls == distinct

    def test_coalescing_disabled_without_cache(self):
        provider = BlockingProvider()
        service = LLMService(provider, cache_enabled=False)
        _hammer(lambda i: service.complete("same prompt"), n_threads=8)
        assert provider.calls_served == 8

    def test_leader_failure_releases_followers(self):
        service = LLMService(FailingProvider())

        def work(_):
            try:
                service.complete("doomed prompt")
                return "ok"
            except LLMError:
                return "failed"

        results = _hammer(work, n_threads=8)
        # Every caller must terminate (no deadlock on the leader's gate)
        # and see the failure rather than hang or get a bogus answer.
        assert results == ["failed"] * 8


class TestCounterIntegrity:
    def test_no_lost_usage_updates(self):
        provider = SimulatedProvider()
        service = LLMService(provider)
        per_thread = 8

        def work(i):
            for j in range(per_thread):
                service.complete(f"prompt {i}/{j}")

        _hammer(work)
        usage = service.usage()
        assert usage.total_calls == THREADS * per_thread
        assert usage.served_calls == THREADS * per_thread
        assert len(service.records) == THREADS * per_thread
        assert usage.cost == pytest.approx(
            sum(r.cost for r in service.records), abs=1e-12
        )

    def test_ledger_totals_match_usage_under_cache_hits(self):
        service = LLMService(SimulatedProvider())

        def work(i):
            service.complete(f"prompt {i % 3}")

        _hammer(work, per_thread=4)
        usage = service.usage()
        assert usage.served_calls == 3
        assert usage.total_calls == THREADS * 4
        assert usage.cached_calls == usage.total_calls - usage.served_calls

    def test_reset_usage_is_atomic(self):
        service = LLMService(SimulatedProvider())
        _hammer(lambda i: service.complete(f"prompt {i}"))
        service.reset_usage()
        assert service.usage().total_calls == 0
        assert service.records == []


class TestBreakerUnderConcurrency:
    def test_breaker_absorbs_concurrent_failures(self):
        from repro.resilience.breaker import CircuitBreaker
        from repro.resilience.policy import ResiliencePolicy

        provider = FailingProvider()
        service = LLMService(
            provider,
            policy=ResiliencePolicy(
                breaker=CircuitBreaker(min_calls=4, failure_threshold=0.5)
            ),
        )

        def work(i):
            try:
                service.complete(f"prompt {i}")
            except LLMError:
                pass

        _hammer(work)
        usage = service.usage()
        # Every call must be accounted as failed; none lost, none served.
        assert usage.failed_calls == THREADS
        assert usage.served_calls == 0
        # The breaker must have tripped, and once open each call probes
        # instead of burning the full retry budget, so provider attempts
        # stay well below the unprotected worst case.
        breaker = service.policy.breaker
        assert breaker is not None and breaker.opens >= 1
        retry_attempts = service.policy.retry.max_retries + 1
        assert provider.attempts < THREADS * retry_attempts


class TestScopedIsolation:
    def test_scopes_keep_private_ledgers(self):
        service = LLMService(SimulatedProvider())
        base = service.clock.now
        scopes = {}
        barrier = threading.Barrier(4)

        def work(i):
            barrier.wait()
            with service.scoped(base) as scope:
                service.complete(f"scoped prompt {i}")
            scopes[i] = scope

        _hammer(work, n_threads=4)
        # Nothing lands on the shared ledger until scopes are merged.
        assert service.records == []
        for i in range(4):
            service.merge_scope(scopes[i])
        assert [r.prompt for r in service.records] == [
            f"scoped prompt {i}" for i in range(4)
        ]

    def test_merge_accumulates_elapsed_virtual_time(self):
        service = LLMService(SimulatedProvider())
        base = service.clock.now
        with service.scoped(base) as scope:
            service.complete("timed prompt")
        before = service.clock.now
        service.merge_scope(scope)
        assert service.clock.now == pytest.approx(before + scope.elapsed)


class TestHubPrimeNoHoldAndWait:
    """Regression: ``_prime_via_hub`` must publish led slots before waiting.

    Two services whose prime batches overlapped in different prompt orders
    used to deadlock permanently: each led one hub slot and blocked inline
    on the other's, so neither ever published.  The fix pays for and
    publishes every led slot *before* waiting on contested ones; this test
    pins that ordering deterministically by acting as the foreign leader
    of the contested slot itself.
    """

    class _SignalProvider(BlockingProvider):
        """BlockingProvider that also signals when its first call arrives."""

        def __init__(self):
            super().__init__()
            self.first_call = threading.Event()

        def complete(self, request: LLMRequest) -> LLMResponse:
            self.first_call.set()
            return super().complete(request)

    def test_led_slot_settles_while_contested_slot_still_held(self):
        from repro.llm.service import CoalesceHub

        provider = self._SignalProvider()
        hub = CoalesceHub(provider)
        service = LLMService(provider, coalesce_hub=hub)

        # The test leads slot Y, standing in for another service that is
        # still mid-provider-call when our prime arrives.
        contested = LLMRequest(prompt="Y", max_tokens=256)
        status, _ = hub.claim(contested)
        assert status == "lead"

        done = threading.Event()

        def run_prime():
            service.prime(["X", "Y"])
            done.set()

        thread = threading.Thread(target=run_prime, daemon=True)
        thread.start()

        # The prime reaching the provider proves it got *past* the claim
        # loop with Y still contested (pre-fix it parked on Y's gate there
        # and X never reached the provider at all).
        assert provider.first_call.wait(timeout=30)

        # X must then be published — settled into the hub — while Y is
        # still held by the foreign leader.
        led = LLMRequest(prompt="X", max_tokens=256)
        status, settled = hub.claim(led)
        if status == "wait":
            assert settled.wait(timeout=30)
            status, settled = hub.claim(led)
        assert status == "hit"
        assert settled[0].text == "answer:X"
        assert not done.is_set()  # prime is (correctly) parked on Y now

        # Release Y unsettled: the prime re-claims, leads and pays for it.
        hub.publish(contested, None)
        assert done.wait(timeout=30)
        thread.join(timeout=30)
        assert sorted(provider.prompts) == ["X", "Y"]
