"""Tests for the simulated LLM's skills and prompt routing."""

from __future__ import annotations

import json

import pytest

from repro.llm.knowledge import KnowledgeBase
from repro.llm.providers import LLMRequest, SimulatedProvider
from repro.llm.skills import default_skills
from repro.llm.skills.base import count_examples, extract_json_field, extract_text_field
from repro.llm.skills.entity_matching import EntityMatchingSkill, match_score


@pytest.fixture()
def kb() -> KnowledgeBase:
    return KnowledgeBase()


class TestPromptParsing:
    def test_extract_json_field(self):
        prompt = 'Record A: {"name": "x", "n": 1}\nmore text'
        assert extract_json_field(prompt, "Record A") == {"name": "x", "n": 1}

    def test_extract_json_takes_last_occurrence(self):
        prompt = 'Record A: {"name": "example"}\nRecord A: {"name": "payload"}'
        assert extract_json_field(prompt, "Record A") == {"name": "payload"}

    def test_extract_json_nested_braces(self):
        prompt = 'Data: {"outer": {"inner": 2}}'
        assert extract_json_field(prompt, "Data") == {"outer": {"inner": 2}}

    def test_extract_json_missing(self):
        assert extract_json_field("no json here", "Record A") is None

    def test_extract_json_string_with_brace(self):
        prompt = 'Data: {"text": "a } inside"}'
        assert extract_json_field(prompt, "Data") == {"text": "a } inside"}

    def test_extract_text_field(self):
        assert extract_text_field("Phrase: John Smith\n", "Phrase") == "John Smith"

    def test_extract_text_takes_last(self):
        prompt = "Phrase: example\nPhrase: payload"
        assert extract_text_field(prompt, "Phrase") == "payload"

    def test_count_examples(self):
        prompt = "Task: t\nExample 1:\nInput: a\nExample 2:\nInput: b\nInput: c"
        assert count_examples(prompt) == 2


class TestRouting:
    def prompt_for(self, text: str) -> str:
        provider = SimulatedProvider()
        return provider.complete(LLMRequest(prompt=text)).skill

    def test_entity_matching_routed(self):
        prompt = (
            "Determine if the following entities are equivalent.\n"
            'Record A: {"name": "a"}\nRecord B: {"name": "b"}'
        )
        assert self.prompt_for(prompt) == "entity_matching"

    def test_imputation_routed(self):
        assert self.prompt_for('Who makes this? manufacturer\nProduct: {"name": "Walkman"}') == "imputation"

    def test_tagging_routed(self):
        assert self.prompt_for("Is this a person name?\nPhrase: John Smith") == "tagging"

    def test_langdetect_routed(self):
        assert self.prompt_for("Detect the language of the text.\nText: hola amigo") == "langdetect"

    def test_codegen_routed(self):
        assert self.prompt_for("Please write a python code for this.\nTask: tokenize text") == "codegen"

    def test_nl2sql_routed(self):
        assert self.prompt_for(
            "Write SQL for this schema. Schema: TABLE t (a INT)\nQuestion: how many rows?"
        ) == "nl2sql"

    def test_fallback_always_answers(self):
        assert self.prompt_for("completely unrelated request") == "chat"


class TestEntityMatchingSkill:
    def test_clear_match_answers_yes(self, kb: KnowledgeBase):
        skill = EntityMatchingSkill()
        prompt = (
            "Task: Entity resolution: determine if the records refer to the same entity.\n"
            "Example 1:\nPair: ...\nOutput: Yes\n"
            'Record A: {"name": "Stone IPA", "brewery": "Stone Brewing"}\n'
            'Record B: {"name": "Stone IPA", "brewery": "Stone Brewing"}'
        )
        assert skill.respond(prompt, kb).startswith("Yes")

    def test_clear_nonmatch_answers_no(self, kb: KnowledgeBase):
        skill = EntityMatchingSkill()
        prompt = (
            "Task: Entity resolution task with a long description of what to do "
            "when comparing records for equivalence judgement purposes.\n"
            "Example 1:\nPair: ...\nOutput: No\n"
            'Record A: {"name": "Alpha Centauri Lager"}\n'
            'Record B: {"name": "Zeta Reticuli Stout"}'
        )
        assert skill.respond(prompt, kb).startswith("No")

    def test_missing_record_asks_for_it(self, kb: KnowledgeBase):
        skill = EntityMatchingSkill()
        response = skill.respond("Are these the same entity? Record A: not-json", kb)
        assert "Record" in response

    def test_match_score_identity(self):
        record = {"name": "Stone IPA", "abv": 6.9}
        assert match_score(record, record) == pytest.approx(1.0)

    def test_match_score_symmetric(self):
        a = {"name": "Stone IPA"}
        b = {"name": "Stone India Pale Ale"}
        assert match_score(a, b) == pytest.approx(match_score(b, a))

    def test_match_score_ignores_ids(self):
        a = {"name": "x", "id": 1}
        b = {"name": "x", "id": 999}
        assert match_score(a, b) == pytest.approx(1.0)

    def test_suffix_tolerance(self):
        a = {"song": "Midnight Dreams"}
        b = {"song": "Midnight Dreams (Album Version)"}
        assert match_score(a, b) > 0.9

    def test_distinctive_token_mismatch_sinks_score(self):
        a = {"beer_name": "Wild Bastard IPA"}
        b = {"beer_name": "Wild Otter IPA"}
        assert match_score(a, b) < 0.71


class TestImputationSkill:
    def test_known_product_line(self, kb: KnowledgeBase):
        provider = SimulatedProvider(kb)
        response = provider.complete(
            LLMRequest(
                prompt=(
                    "Which company is the manufacturer of this product? Answer "
                    'with the company name only.\nProduct: {"name": "PlayStation 2 Memory Card"}'
                )
            )
        )
        assert response.text.startswith("Sony")

    def test_unknown_product(self, kb: KnowledgeBase):
        provider = SimulatedProvider(kb)
        response = provider.complete(
            LLMRequest(
                prompt=(
                    "Which company is the manufacturer of this product? Answer "
                    'with the company name only.\nProduct: {"name": "Generic Widget 3000"}'
                )
            )
        )
        assert response.text.startswith("Unknown")


class TestTaggingSkill:
    def test_language_hint_improves_foreign_names(self, kb: KnowledgeBase):
        provider = SimulatedProvider(kb)
        hinted = provider.complete(
            LLMRequest(prompt="Is this a person name?\nPhrase: Hans Müller\nLanguage: de")
        )
        assert hinted.text.startswith("Yes")

    def test_rejects_company(self, kb: KnowledgeBase):
        provider = SimulatedProvider(kb)
        response = provider.complete(
            LLMRequest(prompt="Is this a person name?\nPhrase: Acme Corporation")
        )
        assert response.text.startswith("No")


class TestNL2SQL:
    def respond(self, question: str) -> str:
        provider = SimulatedProvider()
        prompt = (
            "Translate the question into a single SQL SELECT statement for this schema. "
            "Answer with SQL only.\n"
            "Schema: TABLE products (id INT, name TEXT, price FLOAT)\n"
            f"Question: {question}"
        )
        return provider.complete(LLMRequest(prompt=prompt)).text

    def test_count_question(self):
        sql = self.respond("How many products have price over 20?")
        assert sql.startswith("SELECT COUNT(*)")
        assert "price > 20" in sql

    def test_average_question(self):
        assert "AVG(price)" in self.respond("What is the average of price?")

    def test_max_question(self):
        sql = self.respond("Which product has the highest price?")
        assert "ORDER BY price DESC LIMIT 1" in sql

    def test_listing_question(self):
        sql = self.respond("Show the name of products under 10")
        assert sql.startswith("SELECT name")


class TestClassification:
    def test_classify_picks_overlapping_choice(self):
        provider = SimulatedProvider()
        prompt = (
            "Classify the input into exactly one of the choices.\n"
            "Choices: beverage | furniture | music\n"
            "Input: a hoppy beverage from the brewery"
        )
        assert provider.complete(LLMRequest(prompt=prompt)).text == "beverage"


class TestSkillStackOrder:
    def test_fallback_is_last(self):
        skills = default_skills()
        assert skills[-1].name == "chat"

    def test_all_skills_have_unique_names(self):
        names = [s.name for s in default_skills()]
        assert len(names) == len(set(names))
