"""Tests for TableQA, summarisation, schema matching and the codegen skills."""

from __future__ import annotations

import json

import pytest

from repro.llm.knowledge import KnowledgeBase
from repro.llm.providers import LLMRequest, SimulatedProvider
from repro.llm.skills.table_qa import TableQASkill


@pytest.fixture()
def kb() -> KnowledgeBase:
    return KnowledgeBase()


def ask(prompt: str) -> str:
    return SimulatedProvider().complete(LLMRequest(prompt=prompt)).text


ROWS = json.dumps(
    [
        {"id": 1, "price": 10.0, "stock": 5},
        {"id": 2, "price": 30.0, "stock": 0},
        {"id": 3, "price": 50.0, "stock": 2},
    ]
)


class TestTableQA:
    def prompt(self, question: str, rows: str = ROWS) -> str:
        return f"Answer from the rows.\nRows: {rows}\nQuestion: {question}"

    def test_count_with_filter(self, kb):
        answer = TableQASkill().respond(self.prompt("How many rows have price over 20?"), kb)
        assert answer.startswith("2")

    def test_count_under_filter(self, kb):
        answer = TableQASkill().respond(self.prompt("How many rows have price under 20?"), kb)
        assert answer.startswith("1")

    def test_average(self, kb):
        answer = TableQASkill().respond(self.prompt("What is the average of price?"), kb)
        assert answer.startswith("30")

    def test_max_min_sum(self, kb):
        skill = TableQASkill()
        assert skill.respond(self.prompt("What is the highest price?"), kb).startswith("50")
        assert skill.respond(self.prompt("What is the lowest price?"), kb).startswith("10")
        assert skill.respond(self.prompt("What is the total of price?"), kb).startswith("90")

    def test_truncated_rows_give_wrong_count(self, kb):
        # The whole point of the connector: answers computed over truncated
        # uploads are silently wrong.
        truncated = json.dumps([{"id": 1, "price": 10.0}])
        answer = TableQASkill().respond(
            self.prompt("How many rows have price over 5?", rows=truncated), kb
        )
        assert answer.startswith("1")  # true table had 3

    def test_invalid_json_flagged(self, kb):
        answer = TableQASkill().respond(
            "Rows: [not json\nQuestion: how many rows?", kb
        )
        assert "JSON" in answer or "rows" in answer.lower()

    def test_routed_by_provider(self):
        response = SimulatedProvider().complete(
            LLMRequest(prompt=f"Rows: {ROWS}\nQuestion: how many rows have price over 20?")
        )
        assert response.skill == "table_qa"


class TestSummarization:
    def test_summarize_takes_lead_sentences(self):
        text = "First sentence here. Second one follows. Third is dropped maybe."
        answer = ask(f"Summarize the text.\nText: {text}")
        assert answer.startswith("First sentence here.")

    def test_summary_shorter_than_long_input(self):
        text = " ".join(f"Sentence number {i} is here." for i in range(30))
        answer = ask(f"Summarize the text.\nText: {text}")
        assert len(answer) < len(text) / 3


class TestSchemaMatching:
    def test_matches_similar_columns(self):
        answer = ask(
            "Schema matching: match the columns of the two schemas.\n"
            "Left columns: name, phone_number, city\n"
            "Right columns: full_name, phone, town"
        )
        pairs = json.loads(answer)
        assert ["phone_number", "phone"] in pairs

    def test_unmatched_columns_absent(self):
        answer = ask(
            "Schema matching: match the columns.\n"
            "Left columns: abv\n"
            "Right columns: zzz_unrelated"
        )
        assert json.loads(answer) == []


class TestCodegenViaProvider:
    def test_fresh_generation_is_revision_zero(self):
        answer = ask("Please write a python code for this.\nTask: tokenize text")
        assert "revision=0" in answer
        assert "```python" in answer

    def test_repair_advances_revision(self):
        answer = ask(
            "Please write a python code for this.\nTask: tokenize text\nRevision: 0"
        )
        assert "revision=1" in answer

    def test_unknown_task_lists_supported(self):
        answer = ask("Please write a python code for this.\nTask: paint a fresco")
        assert "Supported tasks" in answer

    def test_suggestion_for_failing_revision(self):
        answer = ask(
            "Why does this code fail the test cases? Read the code and the "
            "failures, then suggest a fix.\nTask: tokenize text\nRevision: 0\n"
            "Code: ...\nFailures: ..."
        )
        assert "regular expression" in answer.lower() or "punctuation" in answer.lower()
