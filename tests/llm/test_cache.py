"""The multi-tier prompt cache: keys, LRU, journal, near-duplicate tier."""

from __future__ import annotations

import json

import pytest

from repro.llm.cache import CacheJournal, CacheKey, NearDuplicateIndex, PromptCache
from repro.llm.providers import LLMResponse, SimulatedProvider
from repro.llm.service import LLMService


def key(prompt: str, version: str = "", provider: str = "sim", max_tokens: int = 64):
    return CacheKey(provider=provider, version=version, prompt=prompt, max_tokens=max_tokens)


def response(text: str) -> LLMResponse:
    return LLMResponse(text=text, prompt_tokens=3, completion_tokens=2, model="sim")


class TestCacheKey:
    def test_same_prompt_different_version_does_not_collide(self):
        cache = PromptCache()
        cache.put(key("p", version="v1"), response("one"))
        assert cache.get(key("p", version="v2")) is None
        assert cache.get(key("p", version="v1")).text == "one"

    def test_same_prompt_different_provider_does_not_collide(self):
        cache = PromptCache()
        cache.put(key("p", provider="a"), response("one"))
        assert cache.get(key("p", provider="b")) is None

    def test_same_prompt_different_max_tokens_does_not_collide(self):
        cache = PromptCache()
        cache.put(key("p", max_tokens=8), response("short"))
        assert cache.get(key("p", max_tokens=256)) is None


class TestLRUEviction:
    def test_oldest_entry_evicted_first(self):
        cache = PromptCache(max_entries=3)
        for name in ("a", "b", "c"):
            cache.put(key(name), response(name))
        cache.put(key("d"), response("d"))
        assert cache.get(key("a")) is None
        assert cache.get(key("b")).text == "b"
        assert cache.stats.evictions == 1

    def test_get_refreshes_recency(self):
        cache = PromptCache(max_entries=3)
        for name in ("a", "b", "c"):
            cache.put(key(name), response(name))
        cache.get(key("a"))  # now "b" is the LRU entry
        cache.put(key("d"), response("d"))
        assert cache.get(key("a")).text == "a"
        assert cache.get(key("b")) is None

    def test_reput_refreshes_recency(self):
        cache = PromptCache(max_entries=2)
        cache.put(key("a"), response("a"))
        cache.put(key("b"), response("b"))
        cache.put(key("a"), response("a2"))  # refresh, not duplicate
        cache.put(key("c"), response("c"))
        assert cache.get(key("b")) is None
        assert cache.get(key("a")).text == "a2"

    def test_hit_miss_counters(self):
        cache = PromptCache()
        cache.put(key("a"), response("a"))
        cache.get(key("a"))
        cache.get(key("missing"))
        assert cache.stats.exact_hits == 1
        assert cache.stats.misses == 1


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = PromptCache(path=path)
        cache.put(key("p1", version="v1"), response("one"))
        cache.put(key("p2"), response("two"))

        reloaded = PromptCache(path=path)
        assert reloaded.stats.loaded == 2
        assert reloaded.get(key("p1", version="v1")).text == "one"
        assert reloaded.get(key("p2")).text == "two"

    def test_later_lines_win(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = PromptCache(path=path)
        cache.put(key("p"), response("old"))
        cache.put(key("p"), response("new"))
        assert PromptCache(path=path).get(key("p")).text == "new"

    def test_truncated_line_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = PromptCache(path=path)
        cache.put(key("good"), response("kept"))
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"provider": "sim", "version": "", "prom')  # crash mid-append

        reloaded = PromptCache(path=path)
        assert reloaded.get(key("good")).text == "kept"
        assert reloaded.journal.corrupt_lines == 1

    def test_wrong_shape_line_is_skipped(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        path.write_text(json.dumps({"not": "a cache entry"}) + "\n", encoding="utf-8")
        reloaded = PromptCache(path=path)
        assert len(reloaded) == 0
        assert reloaded.journal.corrupt_lines == 1

    def test_compaction_drops_dead_lines(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = PromptCache(path=path)
        for round_ in range(5):
            cache.put(key("p"), response(f"v{round_}"))  # 5 lines, 1 live entry
        assert cache.compact() == 1
        assert len(path.read_text(encoding="utf-8").strip().splitlines()) == 1
        assert PromptCache(path=path).get(key("p")).text == "v4"

    def test_auto_compaction_bounds_journal_growth(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = PromptCache(path=path, compact_factor=2)
        for i in range(300):  # one live key, 300 appends
            cache.put(key("p"), response(f"v{i}"))
        lines = len(path.read_text(encoding="utf-8").strip().splitlines())
        assert lines < 300  # compaction kicked in at least once

    def test_journal_load_respects_max_entries(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = PromptCache(path=path)
        for name in ("a", "b", "c", "d"):
            cache.put(key(name), response(name))
        trimmed = PromptCache(path=path, max_entries=2)
        assert len(trimmed) == 2
        assert trimmed.get(key("d")).text == "d"  # most recent survive
        assert trimmed.get(key("a")) is None


class TestNearDuplicateIndex:
    def donor_key(self):
        return key("Match the records: Sierra Nevada Pale Ale vs Sierra Nevada Pale Ale.")

    def test_canonically_equal_prompt_hits(self):
        index = NearDuplicateIndex(threshold=0.92)
        index.build([(self.donor_key(), response("yes"))])
        probe = key("match  the records:  sierra nevada pale ale VS sierra nevada pale ale.")
        found = index.lookup(probe)
        assert found is not None
        assert found[0].text == "yes"
        assert found[1] == 1.0

    def test_near_identical_prompt_hits_below_threshold_misses(self):
        index = NearDuplicateIndex(threshold=0.92)
        index.build([(self.donor_key(), response("yes"))])
        near = key("Match the records: Sierra Nevada Pale Ales vs Sierra Nevada Pale Ale.")
        assert index.lookup(near) is not None
        far = key("Summarise the quarterly revenue table for the board meeting.")
        assert index.lookup(far) is None

    def test_hits_never_cross_version_or_provider_scope(self):
        index = NearDuplicateIndex(threshold=0.92)
        index.build([(self.donor_key(), response("yes"))])
        assert index.lookup(key(self.donor_key().prompt, version="v2")) is None
        assert index.lookup(key(self.donor_key().prompt, provider="other")) is None
        assert index.lookup(key(self.donor_key().prompt, max_tokens=999)) is None

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            NearDuplicateIndex(threshold=0.0)

    def test_snapshot_is_sealed_against_midrun_puts(self):
        cache = PromptCache()
        cache.put(self.donor_key(), response("yes"))
        # Not sealed yet: tier 2 cannot see the entry...
        assert cache.get_near(self.donor_key()) is None
        # ...until a seal() snapshots it.
        cache.seal()
        found = cache.get_near(self.donor_key())
        assert found is not None and found[0].text == "yes"
        assert cache.stats.near_hits == 1

    def test_near_tier_can_be_disabled(self):
        cache = PromptCache(near_enabled=False)
        cache.put(self.donor_key(), response("yes"))
        cache.seal()
        assert cache.get_near(self.donor_key()) is None

    def test_has_any_covers_both_tiers(self):
        cache = PromptCache()
        cache.put(self.donor_key(), response("yes"))
        cache.seal()
        probe = key("match  the records:  sierra nevada pale ale VS sierra nevada pale ale.")
        assert cache.has_any(self.donor_key())  # exact
        assert cache.has_any(probe)  # near
        assert not cache.has_any(key("completely unrelated prompt"))


class TestJournalDirect:
    def test_append_then_load(self, tmp_path):
        journal = CacheJournal(tmp_path / "j.jsonl")
        journal.append(key("p"), response("one"))
        entries = journal.load()
        assert len(entries) == 1
        assert entries[0][0] == key("p")
        assert entries[0][1].text == "one"

    def test_missing_file_loads_empty(self, tmp_path):
        assert CacheJournal(tmp_path / "absent.jsonl").load() == []

    def test_compact_is_atomic_replacement(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CacheJournal(path)
        journal.append(key("a"), response("a"))
        journal.append(key("b"), response("b"))
        written = journal.compact([(key("b"), response("b"))])
        assert written == 1
        assert journal.lines_appended == 0
        assert [k for k, _ in journal.load()] == [key("b")]


class TestServiceCacheLifecycle:
    def test_clear_cache_bumps_epoch_and_empties_cache(self):
        service = LLMService(SimulatedProvider())
        service.complete("Extract all person names from: John met Mary.")
        assert len(service.cache) == 1
        epoch = service._cache_epoch
        service.clear_cache()
        assert service._cache_epoch == epoch + 1
        assert len(service.cache) == 0

    def test_stale_epoch_put_is_dropped(self):
        """An in-flight call that started before clear_cache() must not
        resurrect its answer into the cleared cache."""
        service = LLMService(SimulatedProvider())
        stale_epoch = service._cache_epoch
        service.clear_cache()
        service._cache_put(
            service._cache_key("p", 64, ""), response("stale"), stale_epoch
        )
        assert len(service.cache) == 0
        service._cache_put(
            service._cache_key("p", 64, ""), response("fresh"), service._cache_epoch
        )
        assert len(service.cache) == 1

    def test_reset_usage_keeps_cache(self):
        service = LLMService(SimulatedProvider())
        service.complete("Extract all person names from: John met Mary.")
        service.reset_usage()
        assert len(service.cache) == 1
        assert service.usage().total_calls == 0


class TestCompactionCrashRecovery:
    """A kill between compaction's tmp-write and its atomic rename must
    never lose acknowledged entries: recover() reconciles the two files."""

    def _crashing_journal(self, path):
        from repro.llm.faults import CrashInjected, CrashPoint

        journal = CacheJournal(path)
        journal.append(key("a"), response("a"))
        journal.append(key("b"), response("b"))
        crash = CrashPoint("compaction:tmp-written")
        journal.crash_hook = crash.reached
        with pytest.raises(CrashInjected):
            journal.compact([(key("b"), response("b"))])
        assert crash.fired
        return journal

    def test_crash_mid_compaction_leaves_both_files(self, tmp_path):
        journal = self._crashing_journal(tmp_path / "cache.jsonl")
        assert journal.path.exists()
        assert journal._compact_tmp.exists()

    def test_recover_prefers_the_uncompacted_journal(self, tmp_path):
        # The main journal is a superset of the tmp's live entries, so
        # keeping it loses nothing; the orphaned tmp is dropped.
        journal = self._crashing_journal(tmp_path / "cache.jsonl")
        fresh = CacheJournal(journal.path)
        assert fresh.recover() == "dropped-orphan-tmp"
        assert not fresh._compact_tmp.exists()
        assert [k for k, _ in fresh.load()] == [key("a"), key("b")]

    def test_load_runs_recovery_implicitly(self, tmp_path):
        journal = self._crashing_journal(tmp_path / "cache.jsonl")
        entries = CacheJournal(journal.path).load()
        assert [k for k, _ in entries] == [key("a"), key("b")]
        assert not journal._compact_tmp.exists()

    def test_recover_promotes_tmp_when_rename_was_interrupted(self, tmp_path):
        # Simulate death *during* the rename's visible effect: the main
        # journal is gone but the fully written tmp survives.
        journal = self._crashing_journal(tmp_path / "cache.jsonl")
        journal.path.unlink()
        fresh = CacheJournal(journal.path)
        assert fresh.recover() == "promoted-tmp"
        assert fresh.path.exists()
        assert not fresh._compact_tmp.exists()
        assert [k for k, _ in fresh.load()] == [key("b")]

    def test_recover_is_a_noop_without_leftovers(self, tmp_path):
        journal = CacheJournal(tmp_path / "cache.jsonl")
        journal.append(key("a"), response("a"))
        assert journal.recover() is None

    def test_warm_start_after_mid_compaction_crash(self, tmp_path):
        # End to end: a PromptCache constructed over the crashed journal
        # warm-starts with every acknowledged answer intact.
        journal = self._crashing_journal(tmp_path / "cache.jsonl")
        cache = PromptCache(path=journal.path)
        assert cache.stats.loaded == 2
        assert cache.get(key("a")).text == "a"
        assert cache.get(key("b")).text == "b"

    def test_interrupted_compaction_can_rerun_cleanly(self, tmp_path):
        journal = self._crashing_journal(tmp_path / "cache.jsonl")
        fresh = CacheJournal(journal.path)
        live = fresh.load()
        assert fresh.compact(live) == 2  # no crash hook armed this time
        assert not fresh._compact_tmp.exists()
        assert [k for k, _ in fresh.load()] == [key("a"), key("b")]
