"""Tests for the code-generation engine and knowledge base."""

from __future__ import annotations

import pytest

from repro.llm import codegen
from repro.llm.knowledge import KnowledgeBase


class TestRouting:
    @pytest.mark.parametrize(
        ("description", "task"),
        [
            ("impute the missing manufacturer of products", "impute_manufacturer"),
            ("extract noun phrases from text", "noun_phrases"),
            ("tokenize a sentence into words", "tokenize"),
            ("detect the language of a passage", "detect_language"),
            ("remove duplicate records", "dedupe"),
            ("normalise messy strings", "clean_text"),
            ("match columns of two schemas", "schema_match"),
        ],
    )
    def test_routes(self, description: str, task: str):
        assert codegen.route_task(description) == task

    def test_unknown_task_returns_none(self):
        assert codegen.route_task("paint a watercolor") is None


class TestCandidates:
    def test_revisions_ascend(self):
        for task in codegen.KNOWN_TASKS:
            for revision in range(codegen.max_revision(task) + 1):
                candidate = codegen.candidate_for(task, revision)
                assert candidate.revision == revision
                assert "def run(" in candidate.source

    def test_revision_clamped_to_best(self):
        best = codegen.max_revision("tokenize")
        assert codegen.candidate_for("tokenize", 99).revision == best

    def test_negative_revision_clamped_to_zero(self):
        assert codegen.candidate_for("tokenize", -3).revision == 0

    def test_unknown_task_raises(self):
        with pytest.raises(KeyError):
            codegen.candidate_for("nope", 0)

    def test_suggestions_exist_for_non_final_revisions(self):
        for task in codegen.KNOWN_TASKS:
            for revision in range(codegen.max_revision(task)):
                assert len(codegen.suggestion_for(task, revision)) > 10


class TestKnowledgeBase:
    def test_manufacturer_deterministic(self):
        kb = KnowledgeBase()
        a = kb.manufacturer_for("PlayStation 2 Memory Card")
        b = kb.manufacturer_for("PlayStation 2 Memory Card")
        assert a == b

    def test_line_keyed_gaps_are_phrasing_invariant(self):
        kb = KnowledgeBase()
        a, _ = kb.manufacturer_for("PlayStation 2 Memory Card")
        b, _ = kb.manufacturer_for("Memory Card for PlayStation 2 consoles")
        assert a == b

    def test_unknown_product_gives_none(self):
        kb = KnowledgeBase()
        brand, confidence = kb.manufacturer_for("Mystery Gadget 9000")
        assert brand is None and confidence == 0.0

    def test_gap_rate_close_to_configured(self):
        from repro.datasets.catalog import BRANDS

        kb = KnowledgeBase(brand_gap=0.3, brand_confusion=0.0)
        lines = [line for brand in BRANDS for line in brand.lines]
        unknowns = sum(
            1 for line in lines if kb.manufacturer_for(f"{line} Widget")[0] is None
        )
        assert 0.15 < unknowns / len(lines) < 0.45

    def test_name_judgement_accent_insensitive(self):
        kb = KnowledgeBase(name_noise_native=0.0, name_noise_foreign=0.0)
        with_accents, _ = kb.is_person_name("José García", language_hint="es")
        without, _ = kb.is_person_name("Jose Garcia", language_hint="es")
        assert with_accents is True and without is True

    def test_foreign_names_fail_without_hint(self):
        kb = KnowledgeBase(name_noise_native=0.0, name_noise_foreign=0.0)
        verdict, _ = kb.is_person_name("Wolfgang Schröder")
        assert verdict is False  # not in the English-only gazetteer

    def test_match_flip_rate_grows_with_hardness(self):
        kb = KnowledgeBase()
        easy = sum(kb.match_flip(f"k{i}", margin=0.5) for i in range(500))
        hard = sum(kb.match_flip(f"k{i}", margin=0.01) for i in range(500))
        assert hard > easy

    def test_extra_noise_increases_flips(self):
        kb = KnowledgeBase()
        base = sum(kb.match_flip(f"x{i}", 0.05, 0.0) for i in range(500))
        noisy = sum(kb.match_flip(f"x{i}", 0.05, 0.3) for i in range(500))
        assert noisy > base
