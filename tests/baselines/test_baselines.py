"""Tests for the paper's comparison baselines."""

from __future__ import annotations

import pytest

from repro.baselines.ditto import DittoMatcher, evaluate_ditto
from repro.baselines.fms import evaluate_fms_imputation
from repro.baselines.holoclean import HoloCleanImputer, evaluate_holoclean
from repro.baselines.imp import IMPImputer, evaluate_imp
from repro.baselines.magellan import MagellanMatcher, evaluate_magellan
from repro.datasets.entity_resolution import generate_er_dataset
from repro.datasets.imputation import generate_buy_dataset


@pytest.fixture(scope="module")
def beer():
    return generate_er_dataset("beer", n_entities=300)


@pytest.fixture(scope="module")
def buy():
    return generate_buy_dataset(n_train=1500, n_test=200)


class TestMagellan:
    def test_learns_something(self, beer):
        f1 = evaluate_magellan(beer)
        assert f1 > 0.5

    def test_requires_training_data(self):
        with pytest.raises(ValueError):
            MagellanMatcher().fit(["name"], [])

    def test_predict_before_fit_raises(self, beer):
        with pytest.raises(RuntimeError):
            MagellanMatcher().predict(beer.test)


class TestDitto:
    def test_beats_chance(self, beer):
        assert evaluate_ditto(beer) > 0.5

    def test_normalization_advantage_over_magellan(self):
        # On the full-size beer benchmark with its test-time format drift,
        # the normalisation-based matcher is at least as good.
        ds = generate_er_dataset("beer")
        assert evaluate_ditto(ds) >= evaluate_magellan(ds) - 0.02

    def test_requires_training_data(self):
        with pytest.raises(ValueError):
            DittoMatcher().fit(["name"], [])


class TestFMs:
    def test_matching_runs_and_scores(self, service, beer):
        small = beer.test[:40]
        from repro.ml.metrics import f1_score
        from repro.baselines.fms import fms_match_pair

        y_pred = [int(fms_match_pair(service, p)) for p in small]
        y_true = [p.label for p in small]
        assert 0.0 <= f1_score(y_true, y_pred) <= 1.0
        assert service.served_calls == len(small)

    def test_imputation_accuracy_reasonable(self, service, buy):
        accuracy = evaluate_fms_imputation(service, buy.test[:100])
        assert 0.6 < accuracy < 0.95  # clearly worse than the tuned system


class TestHoloClean:
    def test_signal_starved_on_buy(self, buy):
        accuracy = evaluate_holoclean(buy.train, buy.test)
        assert accuracy < 0.4  # the paper's point: classical repair fails here

    def test_exact_name_fd_still_works(self, buy):
        imputer = HoloCleanImputer().fit(buy.train)
        record = buy.train[0]
        assert imputer.predict_one({"name": record.name}) == record.manufacturer

    def test_majority_prior_fallback(self, buy):
        imputer = HoloCleanImputer().fit(buy.train)
        prediction = imputer.predict_one({"name": "zzz qqq completely unseen"})
        assert isinstance(prediction, str) and prediction

    def test_requires_observed_data(self):
        with pytest.raises(ValueError):
            HoloCleanImputer().fit([])


class TestIMP:
    def test_supervised_ceiling(self, buy):
        accuracy = evaluate_imp(buy.train, buy.test)
        assert accuracy > 0.85

    def test_beats_holoclean(self, buy):
        assert evaluate_imp(buy.train, buy.test) > evaluate_holoclean(buy.train, buy.test)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            IMPImputer().predict_one({"name": "x"})

    def test_requires_training_data(self):
        with pytest.raises(ValueError):
            IMPImputer().fit([])


class TestColumnarBaselines:
    """Scalar vs columnar toggles on the classical baselines.

    The columnar feature path must be *bitwise* identical (the random
    forest goldens are sensitive to any float drift), so fitted models and
    predictions match exactly; HoloClean's vote matrix is integer-exact.
    """

    def test_magellan_features_and_predictions_identical(self, beer):
        import numpy as np

        pairs = beer.train[:200]
        scalar = MagellanMatcher(columnar=False).fit(["name", "abv"], pairs)
        columnar = MagellanMatcher(columnar=True).fit(["name", "abv"], pairs)
        test = beer.test[:100]
        sx = scalar._extractor.transform([(p.left, p.right) for p in test])
        cx = columnar._extractor.transform([(p.left, p.right) for p in test])
        assert np.array_equal(sx, cx)
        assert scalar.predict(test) == columnar.predict(test)

    def test_ditto_predictions_identical(self, beer):
        pairs = beer.train[:200]
        test = beer.test[:100]
        scalar = DittoMatcher(columnar=False).fit(["name", "abv"], pairs)
        columnar = DittoMatcher(columnar=True).fit(["name", "abv"], pairs)
        assert scalar._threshold == columnar._threshold
        assert scalar.predict(test) == columnar.predict(test)

    def test_holoclean_predictions_identical(self, buy):
        imputer = HoloCleanImputer().fit(buy.train)
        records = [r.visible() for r in buy.test] + [
            {"name": ""},
            {"name": "zzz qqq completely unseen"},
            {"name": buy.train[0].name},
        ]
        imputer.columnar = False
        scalar = imputer.predict(records)
        imputer.columnar = True
        columnar = imputer.predict(records)
        assert scalar == columnar
