"""Tests for the packaged demo tasks (paper sections 4.1-4.3)."""

from __future__ import annotations

import pytest

from repro.core.runtime.system import LinguaManga
from repro.datasets.entity_resolution import generate_er_dataset
from repro.datasets.imputation import generate_buy_dataset
from repro.datasets.names import generate_name_dataset
from repro.tasks.entity_resolution import pick_examples, run_lingua_manga_er
from repro.tasks.imputation import run_hybrid_imputation, run_llm_imputation
from repro.tasks.name_extraction import run_name_extraction, score_extractions


class TestPickExamples:
    def test_balanced_selection(self):
        ds = generate_er_dataset("beer", n_entities=200)
        examples = pick_examples(ds.train, 4)
        labels = [label for _, label in examples]
        assert labels.count(True) == 2 and labels.count(False) == 2

    def test_k_larger_than_available(self):
        ds = generate_er_dataset("beer", n_entities=200)
        few = [p for p in ds.train[:3]]
        examples = pick_examples(few, 10)
        assert len(examples) <= 10


class TestEntityResolutionTask:
    def test_end_to_end_f1(self, system):
        ds = generate_er_dataset("beer", n_entities=250)
        result = run_lingua_manga_er(system, ds)
        assert result.f1 > 0.6
        assert result.llm_calls == len(ds.test)
        assert result.cost > 0

    def test_few_shot_label_efficiency(self, system):
        """The paper's claim: a handful of examples rivals supervised training."""
        ds = generate_er_dataset("restaurants", n_entities=300)
        result = run_lingua_manga_er(system, ds, n_examples=4)
        assert result.f1 > 0.85


class TestImputationTask:
    @pytest.fixture(scope="class")
    def results(self):
        system = LinguaManga()
        buy = generate_buy_dataset(n_test=180)
        pure = run_llm_imputation(system, buy.test)
        hybrid = run_hybrid_imputation(system, buy.test)
        return pure, hybrid

    def test_both_methods_accurate(self, results):
        pure, hybrid = results
        assert pure.accuracy > 0.85
        assert hybrid.accuracy > 0.85

    def test_hybrid_uses_far_fewer_llm_calls(self, results):
        pure, hybrid = results
        # Paper: "only 1/6 LLM calls".  Allow a band around it.
        ratio = hybrid.llm_calls / pure.llm_calls
        assert ratio < 0.35

    def test_hybrid_cost_lower(self, results):
        pure, hybrid = results
        assert hybrid.cost < pure.cost


class TestNameExtractionTask:
    def test_score_extractions_exact(self):
        from repro.datasets.names import NameDocument

        docs = [NameDocument("x", ("A B",), "en"), NameDocument("y", ("C D",), "en")]
        precision, recall, f1 = score_extractions(docs, [["A B"], ["C D", "E F"]])
        assert recall == 1.0
        assert precision == pytest.approx(2 / 3)
        assert 0 < f1 < 1

    def test_score_alignment_required(self):
        with pytest.raises(ValueError):
            score_extractions([], [["x"]])

    def test_multilingual_beats_monolingual(self, system):
        documents = generate_name_dataset(n_documents=70).documents
        mono = run_name_extraction(system, documents, multilingual=False)
        multi = run_name_extraction(system, documents, multilingual=True)
        assert multi.f1 > mono.f1 + 0.1

    def test_monolingual_fine_on_english(self, system):
        documents = generate_name_dataset(
            n_documents=40, language_mix={"en": 1.0}
        ).documents
        mono = run_name_extraction(system, documents, multilingual=False)
        assert mono.f1 > 0.8

    def test_simulator_reduces_calls_on_second_pass(self):
        system = LinguaManga()
        documents = generate_name_dataset(n_documents=120).documents
        plain = run_name_extraction(system, documents, multilingual=True)
        simulated = run_name_extraction(
            system, documents, multilingual=True, simulate_tagging=True
        )
        # The caching layer already absorbs repeats; the simulator must cut
        # provider traffic further on top of that.
        assert simulated.llm_calls <= plain.llm_calls

    def test_per_language_breakdown_present(self, system):
        documents = generate_name_dataset(n_documents=50).documents
        result = run_name_extraction(system, documents, multilingual=True)
        assert set(result.per_language_f1) == {d.language for d in documents}
