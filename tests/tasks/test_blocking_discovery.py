"""Tests for the blocking and table-discovery task stages."""

from __future__ import annotations

import pytest

from repro._util import seeded_rng
from repro.datasets.entity_resolution import _beer_corrupt, _beer_entities
from repro.storage.database import Database
from repro.storage.table import Table
from repro.tasks.blocking import block_records
from repro.tasks.discovery import search_tables


class TestBlocking:
    @pytest.fixture(scope="class")
    def two_views(self):
        rng = seeded_rng("blocking-test")
        entities = _beer_entities(rng, 100)
        left = [_beer_corrupt(e, rng, 0.6) for e in entities]
        right = [_beer_corrupt(e, rng, 1.0) for e in entities]
        return left, right

    def test_recall_of_true_matches(self, two_views):
        left, right = two_views
        result = block_records(left, right, key="beer_name")
        found = set(result.pairs)
        recall = sum(1 for i in range(len(left)) if (i, i) in found) / len(left)
        assert recall > 0.85

    def test_reduction_ratio_substantial(self, two_views):
        left, right = two_views
        result = block_records(left, right, key="beer_name")
        assert result.reduction_ratio > 0.9

    def test_candidate_cap_respected(self, two_views):
        left, right = two_views
        result = block_records(left, right, key="beer_name", max_candidates_per_record=2)
        from collections import Counter

        per_left = Counter(i for i, _ in result.pairs)
        assert max(per_left.values()) <= 2

    def test_empty_inputs(self):
        result = block_records([], [{"beer_name": "x"}], key="beer_name")
        assert result.pairs == []
        assert result.reduction_ratio == 1.0

    def test_disjoint_vocabularies_produce_nothing(self):
        left = [{"k": "alpha beta"}]
        right = [{"k": "gamma delta"}]
        assert block_records(left, right, key="k").pairs == []

    def test_summary_text(self, two_views):
        left, right = two_views
        assert "candidate pairs" in block_records(left, right, key="beer_name").summary()


class TestSortedNeighborhoodFallback:
    """Left records with zero token overlap get one edit-gated rescue pass."""

    def test_typo_in_every_token_is_rescued(self):
        left = [{"k": "sierr nevda pal alee"}]  # no token matches exactly
        right = [{"k": "sierra nevada pale ale"}, {"k": "gamma delta epsilon"}]
        result = block_records(left, right, key="k")
        assert result.pairs == [(0, 0)]

    def test_fallback_never_bridges_disjoint_vocabularies(self):
        # Lexicographic neighbours, but far beyond the edit-similarity gate.
        left = [{"k": "alpha beta"}]
        right = [{"k": "gamma delta"}, {"k": "almost anything"}]
        assert block_records(left, right, key="k").pairs == []

    def test_fallback_can_be_disabled(self):
        left = [{"k": "sierr nevda pal alee"}]
        right = [{"k": "sierra nevada pale ale"}]
        result = block_records(left, right, key="k", neighborhood_window=0)
        assert result.pairs == []

    def test_token_overlap_records_never_take_the_fallback(self):
        # The fallback only fires on empty candidate sets, so disabling it
        # must not change results for records the index already covers.
        left = [{"k": "stone ipa"}, {"k": "lucky otter pilsner"}]
        right = [{"k": "stone ipa beer"}, {"k": "lucky otter pilsner ale"}]
        with_fallback = block_records(left, right, key="k")
        index_only = block_records(left, right, key="k", neighborhood_window=0)
        assert with_fallback.pairs == index_only.pairs

    def test_fallback_respects_candidate_cap(self):
        left = [{"k": "stone ipa"}]
        right = [{"k": f"stone ipa{suffix}"} for suffix in ("", "s", "x")]
        result = block_records(left, right, key="k", max_candidates_per_record=1)
        # "stone ipa" shares tokens with right[0] only; cap still holds if
        # more than one neighbour clears the gate.
        assert len(result.pairs) <= 1


class TestColumnarBlocking:
    """The array-join path must agree with the dict-probe oracle exactly."""

    @pytest.fixture(scope="class")
    def two_views(self):
        rng = seeded_rng("columnar-blocking-test")
        entities = _beer_entities(rng, 80)
        left = [_beer_corrupt(e, rng, 0.6) for e in entities]
        right = [_beer_corrupt(e, rng, 1.0) for e in entities]
        return left, right

    def _both(self, left, right, **kwargs):
        return (
            block_records(left, right, key="beer_name", columnar=False, **kwargs),
            block_records(left, right, key="beer_name", columnar=True, **kwargs),
        )

    def test_identical_on_corrupted_views(self, two_views):
        scalar, columnar = self._both(*two_views)
        assert scalar.pairs == columnar.pairs
        assert scalar.candidates_considered == columnar.candidates_considered
        assert scalar.reduction_ratio == columnar.reduction_ratio

    def test_identical_across_parameter_grid(self, two_views):
        left, right = two_views
        for cap in (1, 3):
            for min_shared in (1, 2):
                for window in (0, 3):
                    scalar, columnar = self._both(
                        left,
                        right,
                        max_candidates_per_record=cap,
                        min_shared_tokens=min_shared,
                        neighborhood_window=window,
                    )
                    key = (cap, min_shared, window)
                    assert scalar.pairs == columnar.pairs, key
                    assert (
                        scalar.candidates_considered == columnar.candidates_considered
                    ), key

    def test_identical_on_fallback_heavy_input(self):
        # Every left record needs the sorted-neighborhood rescue.
        left = [{"k": "sierr nevda pal alee"}, {"k": "lucki otterr pilsner"}]
        right = [
            {"k": "sierra nevada pale ale"},
            {"k": "lucky otter pilsners"},
            {"k": ""},
            {"k": None},
        ]
        scalar = block_records(left, right, key="k", columnar=False)
        columnar = block_records(left, right, key="k", columnar=True)
        assert scalar.pairs == columnar.pairs
        assert scalar.candidates_considered == columnar.candidates_considered

    def test_ambient_mode_is_honoured(self, two_views):
        from repro.storage.columnar import columnar_mode

        left, right = two_views
        explicit = block_records(left, right, key="beer_name", columnar=True)
        with columnar_mode(True):
            ambient = block_records(left, right, key="beer_name")
        assert explicit.pairs == ambient.pairs


class TestDiscovery:
    @pytest.fixture()
    def db(self) -> Database:
        database = Database()
        database.register(
            Table.from_records(
                "customers",
                [{"first_name": "John", "last_name": "Smith", "city": "Boston"}],
            )
        )
        database.register(
            Table.from_records(
                "orders", [{"order_id": 1, "total": 20.0, "status": "shipped"}]
            )
        )
        database.register(
            Table.from_records("beers", [{"beer_name": "Stone IPA", "abv": 6.9}])
        )
        return database

    def test_finds_table_by_column_concepts(self, db):
        hits = search_tables(db, "customer names and cities")
        assert hits[0].table == "customers"

    def test_finds_table_by_values(self, db):
        hits = search_tables(db, "records about Boston")
        assert hits[0].table == "customers"

    def test_finds_table_by_domain_word(self, db):
        hits = search_tables(db, "beer abv strength")
        assert hits[0].table == "beers"

    def test_singular_plural_robust(self, db):
        singular = search_tables(db, "order status")
        assert singular and singular[0].table == "orders"

    def test_no_match_returns_empty(self, db):
        assert search_tables(db, "zzz qqq vvv") == []

    def test_limit_respected(self, db):
        assert len(search_tables(db, "name", limit=1)) <= 1

    def test_empty_database(self):
        assert search_tables(Database(), "anything") == []

    def test_matched_terms_reported(self, db):
        hits = search_tables(db, "customer city")
        assert "city" in hits[0].matched_terms
