"""Tier-2 chaos arm: large-corpus streamed dedup under crash/resume.

The big-corpus guarantees the curation family adds on top of the PR 6
streaming matrix:

- a streamed dedup verification run killed mid-shard and resumed from its
  ledger is byte-identical to an uninterrupted run (the candidate stream
  is re-derived deterministically from the corpus, so resume never needs
  the original generator);
- the two-pass external candidate scan stays memory-flat: the peak
  resident posting slice is a small fraction of the full posting volume,
  while emitting exactly the in-memory kernel's pair stream.

Heavier than the tier-1 suites (hundreds of documents, several
crash/resume cycles), so it runs in its own CI job on main.
"""

from __future__ import annotations

import pytest

from repro.core.compiler.curation import dedup_candidate_pairs
from repro.core.runtime.system import LinguaManga
from repro.core.templates import get_template
from repro.datasets.curation import CurationCorpus
from repro.llm.faults import CrashInjected, CrashPoint, WorkerKillPoint
from repro.tasks.curation import iter_dedup_candidate_ids, iter_dedup_candidates
from tests.conftest import assert_reports_identical

pytestmark = pytest.mark.tier2

CORPUS = CurationCorpus(n_docs=400, seed=17)
CHUNK = 32


def stream_dedup(workers, **stream_kwargs):
    system = LinguaManga()
    pipeline = get_template("document_dedup").instantiate(
        mode="pairs", examples=CORPUS.dedup_examples()
    )
    report = system.run_stream(
        pipeline,
        {"pairs": iter_dedup_candidates(CORPUS)},
        workers=workers,
        chunk_size=CHUNK,
        source_id=f"{CORPUS.fingerprint}|dedup-pairs",
        **stream_kwargs,
    )
    return report


@pytest.fixture(scope="module")
def baseline():
    """The uninterrupted run every chaos arm must reproduce byte for byte."""
    return stream_dedup(workers=2).canonical_json()


@pytest.fixture(scope="module")
def n_shards(baseline):
    pairs = sum(1 for _ in iter_dedup_candidate_ids(CORPUS.inputs()))
    return -(-pairs // CHUNK)


class TestCrashResumeAtScale:
    def test_crash_mid_run_then_resume_is_byte_identical(
        self, baseline, n_shards, tmp_path
    ):
        # First, middle and last journaled shard — the cheap probe of the
        # full boundary sweep the PR 6 matrix already runs exhaustively.
        for hit in sorted({1, n_shards // 2, n_shards}):
            wal = tmp_path / f"crash-{hit}.wal"
            crash = CrashPoint("shard:journaled", hits=hit)
            with pytest.raises(CrashInjected):
                stream_dedup(workers=2, ledger_path=wal, crash=crash)
            assert crash.fired
            resumed = stream_dedup(workers=2, ledger_path=wal)
            assert_reports_identical(baseline, resumed)
            assert resumed.recovery["resumed"]
            assert resumed.recovery["replayed_shards"] >= hit

    def test_resume_at_different_worker_count(self, baseline, tmp_path):
        wal = tmp_path / "switch.wal"
        crash = CrashPoint("shard:journaled", hits=2)
        with pytest.raises(CrashInjected):
            stream_dedup(workers=8, ledger_path=wal, crash=crash)
        resumed = stream_dedup(workers=1, ledger_path=wal)
        assert_reports_identical(baseline, resumed)

    def test_worker_kill_is_survivable_without_resume(self, baseline):
        kill = WorkerKillPoint("shard:executed", hits=2)
        report = stream_dedup(workers=4, kill=kill)
        assert kill.fired
        assert_reports_identical(baseline, report)
        assert report.recovery["lease_expiries"] >= 1


class TestMemoryFlatAtScale:
    def test_external_scan_matches_kernel_on_large_corpus(self):
        records = [doc.record() for doc in CORPUS]
        stats: dict = {}
        streamed = list(
            iter_dedup_candidate_ids(CORPUS.inputs(), partitions=32, stats=stats)
        )
        assert streamed == dedup_candidate_pairs(records)
        assert stats["docs"] == len(records)

    def test_peak_resident_slice_is_a_fraction_of_the_posting_volume(self):
        # 32 partitions: the resident slice must stay near 1/32 of the
        # postings — the "corpus larger than RAM" budget in miniature.
        stats: dict = {}
        list(iter_dedup_candidate_ids(CORPUS.inputs(), partitions=32, stats=stats))
        assert stats["peak_partition_postings"] <= stats["postings"] / 8
        assert stats["spilled_bytes"] > 0
