"""Pipeline invariants of the corpus-curation workload family.

The locked invariants:

- **Dedup is idempotent** — deduplicating an already-deduplicated corpus
  flags nothing (every verified pair removed one endpoint, and candidate
  generation is a per-document property, so no surviving pair can flip).
- **Dedup is order-insensitive** — shuffling the input records changes
  neither the candidate pair set nor the flagged duplicate ids.
- **Batch ≡ stream** — ``run`` and ``run_stream`` produce identical
  predictions for every template, and streamed reports are byte-identical
  across worker counts 1/2/8, cold and warm.
- **Warm reruns are free** — a second run on the same system serves every
  verdict from the exact cache: zero provider calls.
- **The LLM pipelines earn their cost** — each template beats its fixed
  non-LLM baseline on F1 while calling the model for only the gray zone.
"""

from __future__ import annotations

import pytest

from repro.core.compiler.curation import dedup_candidate_pairs
from repro.core.runtime.system import LinguaManga
from repro.core.templates import get_template
from repro.datasets.curation import CurationCorpus
from repro.baselines.curation import (
    evaluate_hard_scan_decontamination,
    evaluate_rules_quality,
    evaluate_threshold_dedup,
    threshold_dedup_flags,
)
from repro.tasks.curation import (
    iter_dedup_candidate_ids,
    run_decontamination,
    run_dedup,
    run_quality_filter,
)

from ..conftest import assert_reports_identical

N_DOCS = 160


@pytest.fixture(scope="module")
def corpus() -> CurationCorpus:
    return CurationCorpus(n_docs=N_DOCS, seed=7)


@pytest.fixture(scope="module")
def dedup_result(corpus):
    return run_dedup(LinguaManga(), corpus)


@pytest.fixture(scope="module")
def quality_result(corpus):
    return run_quality_filter(LinguaManga(), corpus)


@pytest.fixture(scope="module")
def decontam_result(corpus):
    return run_decontamination(LinguaManga(), corpus)


class TestDedupInvariants:
    def test_beats_threshold_baseline(self, corpus, dedup_result):
        baseline = evaluate_threshold_dedup(corpus)
        assert dedup_result.f1 > baseline.f1

    def test_llm_sees_only_the_gray_zone(self, corpus, dedup_result):
        pairs = dedup_candidate_pairs([d.record() for d in corpus])
        assert 0 < dedup_result.llm_calls < len(pairs) / 2

    def test_idempotent(self, corpus, dedup_result):
        """Re-deduplicating the survivors flags nothing."""
        survivors = [
            doc.record()
            for doc, flagged in zip(corpus, dedup_result.predictions)
            if not flagged
        ]
        pipeline = get_template("document_dedup").instantiate(
            mode="docs", examples=corpus.dedup_examples(4)
        )
        report = LinguaManga().run(pipeline, {"documents": survivors})
        verdicts = next(iter(report.outputs.values()))
        assert not any(verdicts)

    def test_order_insensitive(self, corpus, dedup_result):
        records = [d.record() for d in corpus]
        shuffled = records[::-1]
        pipeline = get_template("document_dedup").instantiate(
            mode="docs", examples=corpus.dedup_examples(4)
        )
        report = LinguaManga().run(pipeline, {"documents": shuffled})
        verdicts = next(iter(report.outputs.values()))
        pairs = dedup_candidate_pairs(shuffled)
        flagged = {max(a, b) for (a, b), yes in zip(pairs, verdicts) if yes}
        original = {
            doc.doc_id
            for doc, hit in zip(corpus, dedup_result.predictions)
            if hit
        }
        assert flagged == original

    def test_stream_matches_batch(self, corpus, dedup_result):
        streamed = run_dedup(LinguaManga(), corpus, stream=True, workers=2)
        assert streamed.predictions == dedup_result.predictions

    def test_warm_rerun_serves_from_cache(self, corpus):
        system = LinguaManga()
        first = run_dedup(system, corpus)
        again = run_dedup(system, corpus)
        assert again.llm_calls == 0
        assert again.predictions == first.predictions

    def test_stream_reports_identical_across_workers(self, corpus, tmp_path):
        def streamed(workers: int, ledger):
            return run_dedup(
                LinguaManga(), corpus, stream=True, workers=workers,
                chunk_size=16, ledger_path=ledger,
            ).report

        cold = [streamed(w, tmp_path / f"w{w}.wal") for w in (1, 2, 8)]
        warm = [streamed(w, tmp_path / f"w{w}.wal") for w in (1, 2, 8)]
        assert_reports_identical(*cold, *warm)


class TestMemoryFlatCandidateScan:
    def test_external_scan_equals_kernel(self, corpus):
        records = [d.record() for d in corpus]
        stats: dict = {}
        streamed = list(
            iter_dedup_candidate_ids(corpus.inputs(), partitions=8, stats=stats)
        )
        assert streamed == dedup_candidate_pairs(records)
        assert stats["docs"] == len(records)
        assert stats["spilled_bytes"] > 0

    def test_partitioning_bounds_resident_postings(self, corpus):
        stats: dict = {}
        list(iter_dedup_candidate_ids(corpus.inputs(), partitions=16, stats=stats))
        # The scan holds one partition at a time; with 16 partitions the
        # peak resident slice must be far below the full posting count.
        assert stats["peak_partition_postings"] <= stats["postings"] / 4

    def test_partition_count_does_not_change_pairs(self, corpus):
        one = list(iter_dedup_candidate_ids(corpus.inputs(), partitions=1))
        many = list(iter_dedup_candidate_ids(corpus.inputs(), partitions=32))
        assert one == many


class TestQualityFilter:
    def test_beats_rules_baseline(self, corpus, quality_result):
        baseline = evaluate_rules_quality(corpus)
        assert quality_result.f1 > baseline.f1

    def test_cascade_skips_confident_tails(self, corpus, quality_result):
        assert 0 < quality_result.llm_calls < len(corpus)

    def test_stream_matches_batch(self, corpus, quality_result):
        streamed = run_quality_filter(LinguaManga(), corpus, stream=True, workers=2)
        assert streamed.predictions == quality_result.predictions

    def test_distillation_takes_over_on_rerun(self, corpus):
        system = LinguaManga()
        first = run_quality_filter(system, corpus, distill=True)
        again = run_quality_filter(system, corpus, distill=True)
        assert again.predictions == first.predictions
        assert again.llm_calls == 0


class TestDecontamination:
    def test_beats_hard_scan_baseline(self, corpus, decontam_result):
        baseline = evaluate_hard_scan_decontamination(corpus)
        assert decontam_result.f1 > baseline.f1

    def test_scan_clears_most_documents_for_free(self, corpus, decontam_result):
        assert 0 < decontam_result.llm_calls < len(corpus) / 4

    def test_stream_matches_batch(self, corpus, decontam_result):
        streamed = run_decontamination(LinguaManga(), corpus, stream=True, workers=2)
        assert streamed.predictions == decontam_result.predictions

    def test_catches_disguised_splices(self, corpus, decontam_result):
        """The hard scan alone misses disguised splices; the cascade must not."""
        baseline = evaluate_hard_scan_decontamination(corpus)
        labels = [int(d.contaminated) for d in corpus]
        missed_by_scan = [
            i for i, (label, flag) in enumerate(zip(labels, baseline.predictions))
            if label and not flag
        ]
        assert missed_by_scan, "corpus should plant disguised splices"
        caught = sum(decontam_result.predictions[i] for i in missed_by_scan)
        assert caught > len(missed_by_scan) / 2

    def test_template_requires_eval_items(self):
        # The template guards with ValueError; the factory itself raises
        # CompileError (a ValueError subclass) when bypassed.
        with pytest.raises(ValueError):
            LinguaManga().run(
                get_template("decontamination").instantiate(eval_items=[]),
                {"documents": []},
            )


class TestBaselineFlags:
    def test_threshold_dedup_flags_shape(self, corpus):
        records = [d.record() for d in corpus]
        flags = threshold_dedup_flags(records)
        assert len(flags) == len(records)
        assert set(flags) <= {0, 1}
