"""Tests for profiling, anomaly detection and the LLM-spend ledger table."""

from __future__ import annotations

import pytest

from repro.llm.service import LLMService
from repro.storage.database import Database
from repro.storage.table import Table
from repro.tasks.profiling import detect_anomalies, profile_table, summarize_table


def make_orders(extra_rows=()) -> Table:
    rows = [
        {"price": 10.0 + i * 0.1, "status": "ok", "note": None} for i in range(30)
    ]
    rows.extend(extra_rows)
    return Table.from_records("orders", rows)


class TestProfile:
    def test_row_and_column_counts(self):
        profile = profile_table(make_orders())
        assert profile.row_count == 30
        assert [c.name for c in profile.columns] == ["price", "status", "note"]

    def test_numeric_stats(self):
        profile = profile_table(make_orders())
        price = profile.column("price")
        assert price.minimum == pytest.approx(10.0)
        assert price.maximum == pytest.approx(12.9)
        assert price.null_count == 0

    def test_null_counting(self):
        profile = profile_table(make_orders())
        assert profile.column("note").null_count == 30

    def test_top_values_for_text(self):
        profile = profile_table(make_orders())
        status = profile.column("status")
        assert status.top_values[0] == ("ok", 30)

    def test_unknown_column_raises(self):
        with pytest.raises(KeyError):
            profile_table(make_orders()).column("ghost")

    def test_text_rendering(self):
        text = profile_table(make_orders()).to_text()
        assert "orders" in text and "price" in text


class TestAnomalies:
    def test_numeric_outlier_found(self):
        table = make_orders([{"price": 900.0, "status": "ok", "note": None}])
        anomalies = detect_anomalies(table)
        assert any(
            a.kind == "numeric_outlier" and a.value == 900.0 for a in anomalies
        )

    def test_rare_category_found(self):
        table = make_orders([{"price": 11.0, "status": "CORRUPT", "note": None}])
        anomalies = detect_anomalies(table)
        assert any(
            a.kind == "rare_category" and a.value == "CORRUPT" for a in anomalies
        )

    def test_clean_table_has_no_anomalies(self):
        assert detect_anomalies(make_orders()) == []

    def test_small_tables_skipped(self):
        tiny = Table.from_records("t", [{"x": 1.0}, {"x": 99999.0}])
        assert detect_anomalies(tiny) == []

    def test_free_text_columns_not_flagged(self):
        rows = [{"comment": f"unique comment {i}"} for i in range(30)]
        table = Table.from_records("c", rows)
        assert detect_anomalies(table) == []

    def test_ranked_by_score(self):
        table = make_orders(
            [
                {"price": 500.0, "status": "ok", "note": None},
                {"price": 900.0, "status": "ok", "note": None},
            ]
        )
        anomalies = [a for a in detect_anomalies(table) if a.kind == "numeric_outlier"]
        assert anomalies[0].value == 900.0

    def test_describe_mentions_location(self):
        table = make_orders([{"price": 900.0, "status": "ok", "note": None}])
        description = detect_anomalies(table)[0].describe()
        assert "price[30]" in description


class TestSummarizeAndLedger:
    def test_summary_comes_from_profile_not_rows(self):
        service = LLMService()
        summary = summarize_table(make_orders(), service)
        assert summary
        # Only one (aggregate) prompt was sent, and no cell row dump.
        assert service.served_calls == 1
        assert "10.1" not in service.records[0].prompt  # raw cells absent

    def test_ledger_table_queryable_with_sql(self):
        service = LLMService()
        service.complete("summarize alpha", purpose="a")
        service.complete("summarize beta", purpose="b")
        service.complete("summarize alpha", purpose="a")  # cache hit
        db = Database()
        db.register(service.ledger_table())
        result = db.query(
            "SELECT purpose, COUNT(*) AS n FROM llm_ledger GROUP BY purpose ORDER BY purpose"
        )
        assert result.records() == [{"purpose": "a", "n": 2}, {"purpose": "b", "n": 1}]
        cached = db.query("SELECT COUNT(*) AS n FROM llm_ledger WHERE cached = TRUE")
        assert cached.records() == [{"n": 1}]
