"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.compiler.context import CompilerContext
from repro.core.runtime.system import LinguaManga
from repro.llm.providers import SimulatedProvider
from repro.llm.service import LLMService


@pytest.fixture()
def service() -> LLMService:
    """A fresh simulated LLM service."""
    return LLMService(SimulatedProvider())


@pytest.fixture()
def context(service: LLMService) -> CompilerContext:
    """A compiler context bound to a fresh service."""
    return CompilerContext(service=service)


@pytest.fixture()
def system() -> LinguaManga:
    """A fresh Lingua Manga system."""
    return LinguaManga()
