"""Shared fixtures for the test suite."""

from __future__ import annotations

import difflib
import json

import pytest

from repro.core.compiler.context import CompilerContext
from repro.core.runtime.system import LinguaManga
from repro.llm.providers import SimulatedProvider
from repro.llm.service import LLMService
from repro.resilience.clock import VirtualClock


@pytest.fixture()
def virtual_clock() -> VirtualClock:
    """A fresh deterministic clock starting at t=0.

    Tests that need time to pass call ``virtual_clock.advance(seconds)``
    instead of sleeping: logical time is exact, instant and immune to
    scheduler jitter, so timing-sensitive assertions never flake.
    """
    return VirtualClock()


@pytest.fixture()
def service() -> LLMService:
    """A fresh simulated LLM service."""
    return LLMService(SimulatedProvider())


@pytest.fixture()
def context(service: LLMService) -> CompilerContext:
    """A compiler context bound to a fresh service."""
    return CompilerContext(service=service)


@pytest.fixture()
def system() -> LinguaManga:
    """A fresh Lingua Manga system."""
    return LinguaManga()


@pytest.fixture()
def checkpoint_dir(tmp_path):
    """A per-test directory for run and cache journals.

    Crash/resume tests put the write-ahead run journal and the prompt-cache
    journal side by side, the way a real deployment does; giving them one
    fixture keeps the layout consistent across suites.
    """
    path = tmp_path / "checkpoints"
    path.mkdir()
    return path


@pytest.fixture()
def crash_clock() -> VirtualClock:
    """A deterministic clock for crash-injection tests.

    Separate from ``virtual_clock`` so a test can hold one clock for the
    crashing run and a fresh one for the resumed run without the fixtures
    aliasing each other.
    """
    return VirtualClock()


def canonical_report(report) -> str:
    """One canonical byte string for a run report (or pass a string through)."""
    return report if isinstance(report, str) else report.canonical_json()


def assert_reports_identical(*reports, ignore: tuple[str, ...] = ()) -> None:
    """Assert every report is byte-identical, with a readable diff on failure.

    Accepts :class:`RunReport` objects or pre-rendered canonical-JSON
    strings interchangeably.  ``ignore`` drops top-level keys (e.g.
    ``("cost", "profile")``) before comparing, for warm-vs-cold checks
    where the declared cost fields legitimately differ.
    """
    assert len(reports) >= 2, "need at least two reports to compare"
    texts = [canonical_report(report) for report in reports]
    if ignore:
        texts = [
            json.dumps(
                {k: v for k, v in json.loads(text).items() if k not in ignore},
                sort_keys=True,
            )
            for text in texts
        ]
    baseline = texts[0]
    for position, text in enumerate(texts[1:], start=1):
        if text == baseline:
            continue
        a = json.dumps(json.loads(baseline), indent=2, sort_keys=True).splitlines()
        b = json.dumps(json.loads(text), indent=2, sort_keys=True).splitlines()
        diff = "\n".join(
            difflib.unified_diff(a, b, "report[0]", f"report[{position}]", lineterm="")
        )
        raise AssertionError(f"run reports diverge:\n{diff[:4000]}")
