"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.compiler.context import CompilerContext
from repro.core.runtime.system import LinguaManga
from repro.llm.providers import SimulatedProvider
from repro.llm.service import LLMService
from repro.resilience.clock import VirtualClock


@pytest.fixture()
def virtual_clock() -> VirtualClock:
    """A fresh deterministic clock starting at t=0.

    Tests that need time to pass call ``virtual_clock.advance(seconds)``
    instead of sleeping: logical time is exact, instant and immune to
    scheduler jitter, so timing-sensitive assertions never flake.
    """
    return VirtualClock()


@pytest.fixture()
def service() -> LLMService:
    """A fresh simulated LLM service."""
    return LLMService(SimulatedProvider())


@pytest.fixture()
def context(service: LLMService) -> CompilerContext:
    """A compiler context bound to a fresh service."""
    return CompilerContext(service=service)


@pytest.fixture()
def system() -> LinguaManga:
    """A fresh Lingua Manga system."""
    return LinguaManga()
