"""Tests for the index-addressable streaming ER corpus."""

from __future__ import annotations

import pytest

from repro.datasets import StreamingERCorpus


class TestDeterminism:
    def test_pair_is_pure_function_of_index(self):
        corpus = StreamingERCorpus(100, seed=7)
        again = StreamingERCorpus(100, seed=7)
        for index in (0, 1, 50, 99):
            assert corpus.pair(index) == again.pair(index)

    def test_iteration_matches_random_access(self):
        corpus = StreamingERCorpus(20, seed=3)
        assert list(corpus) == [corpus.pair(i) for i in range(20)]

    def test_seed_and_name_change_content(self):
        base = StreamingERCorpus(10, seed=7)
        assert list(StreamingERCorpus(10, seed=8)) != list(base)
        assert list(StreamingERCorpus(10, seed=7, name="other")) != list(base)

    def test_reiteration_is_byte_identical(self):
        corpus = StreamingERCorpus(25, seed=11)
        assert list(corpus.inputs()) == list(corpus.inputs())


class TestShape:
    def test_len_and_bounds(self):
        corpus = StreamingERCorpus(5)
        assert len(corpus) == 5
        with pytest.raises(IndexError):
            corpus.pair(5)
        with pytest.raises(IndexError):
            corpus.pair(-1)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            StreamingERCorpus(-1)
        with pytest.raises(ValueError):
            StreamingERCorpus(10, match_fraction=1.5)

    def test_match_fraction_roughly_holds(self):
        corpus = StreamingERCorpus(400, seed=5, match_fraction=0.4)
        rate = sum(corpus.labels()) / 400
        assert 0.3 < rate < 0.5

    def test_labels_align_with_pairs(self):
        corpus = StreamingERCorpus(30, seed=9)
        assert list(corpus.labels()) == [corpus.pair(i).label for i in range(30)]

    def test_fingerprint_identifies_corpus(self):
        a = StreamingERCorpus(100, seed=7)
        assert a.fingerprint == StreamingERCorpus(100, seed=7).fingerprint
        assert a.fingerprint != StreamingERCorpus(101, seed=7).fingerprint
        assert a.fingerprint != StreamingERCorpus(100, seed=8).fingerprint


class TestPromptUniqueness:
    def test_lots_are_corpus_unique(self):
        # The streaming executor's worker-kill byte-identity relies on
        # rendered prompts being unique across the corpus; the lot
        # attribute is what enforces that.
        corpus = StreamingERCorpus(200, seed=7)
        lots = set()
        for pair in corpus:
            lots.add((pair.left["lot"], pair.right["lot"]))
        assert len(lots) == 200

    def test_negative_pairs_use_distinct_lot(self):
        corpus = StreamingERCorpus(100, seed=7)
        for pair in corpus:
            if pair.label == 0:
                assert pair.left["lot"] != pair.right["lot"]
            else:
                assert pair.left["lot"] == pair.right["lot"]


class TestExamples:
    def test_examples_are_balanced(self):
        corpus = StreamingERCorpus(600, seed=7)
        examples = corpus.examples(k=4)
        assert len(examples) == 4
        labels = [label for _, label in examples]
        assert labels == [True, False, True, False]

    def test_examples_bounded_scan(self):
        # examples() must not materialize the corpus: a tiny scan bound
        # still returns whatever it found inside the bound.
        corpus = StreamingERCorpus(1_000_000, seed=7)
        examples = corpus.examples(k=4, scan=64)
        assert 0 < len(examples) <= 4
