"""Tests for the synthetic dataset generators."""

from __future__ import annotations

import pytest

from repro.datasets.catalog import BRANDS, brand_and_line_of_product, brand_of_product
from repro.datasets.entity_resolution import ER_DATASET_NAMES, generate_er_dataset
from repro.datasets.imputation import generate_buy_dataset
from repro.datasets.names import generate_name_dataset


class TestCatalog:
    def test_line_lookup(self):
        assert brand_of_product("PlayStation 2 Memory Card 8MB") == "Sony"

    def test_longest_line_wins(self):
        assert brand_of_product("Memory Stick Pro Duo") == "SanDisk"

    def test_brand_mention_fallback(self):
        assert brand_of_product("a genuine Bose product") == "Bose"

    def test_short_brand_needs_word_boundary(self):
        assert brand_of_product("Generic Gadget 9000") is None

    def test_no_match(self):
        assert brand_of_product("completely unknown thing") is None

    def test_line_reported(self):
        brand, line = brand_and_line_of_product("Walkman portable player")
        assert brand == "Sony" and line == "walkman"

    def test_many_brands_exist(self):
        assert len(BRANDS) >= 80
        assert len({b.name for b in BRANDS}) == len(BRANDS)


class TestERGenerator:
    @pytest.mark.parametrize("name", ER_DATASET_NAMES)
    def test_splits_populated_and_balanced(self, name: str):
        ds = generate_er_dataset(name)
        for split in (ds.train, ds.valid, ds.test):
            assert len(split) > 30
            positives = sum(p.label for p in split)
            assert 0 < positives < len(split)

    def test_deterministic_given_seed(self):
        a = generate_er_dataset("beer", seed=5)
        b = generate_er_dataset("beer", seed=5)
        assert [p.pair_id for p in a.test] == [p.pair_id for p in b.test]
        assert [p.left for p in a.test] == [p.left for p in b.test]

    def test_seed_changes_data(self):
        a = generate_er_dataset("beer", seed=1)
        b = generate_er_dataset("beer", seed=2)
        assert [p.left for p in a.test] != [p.left for p in b.test]

    def test_positive_pairs_share_identity_traces(self):
        ds = generate_er_dataset("restaurants")
        positives = [p for p in ds.test if p.label == 1]
        # A positive pair is two corruptions of one entity: the city is never
        # corrupted, so it must agree.
        assert all(p.left["city"] == p.right["city"] for p in positives)

    def test_attributes_consistent(self):
        ds = generate_er_dataset("music")
        for pair in ds.test[:20]:
            assert set(pair.left) == set(ds.attributes)
            assert set(pair.right) == set(ds.attributes)

    def test_unknown_dataset_raises(self):
        with pytest.raises(ValueError):
            generate_er_dataset("nope")

    def test_summary_mentions_counts(self):
        assert "train=" in generate_er_dataset("beer").summary()


class TestBuyGenerator:
    def test_hard_fraction_respected(self):
        buy = generate_buy_dataset(n_test=600, hard_fraction=0.25)
        hard = sum(1 for r in buy.test if r.hard)
        assert abs(hard / 600 - 0.25) < 0.03

    def test_hard_records_never_mention_brand(self):
        buy = generate_buy_dataset()
        for record in buy.test:
            if record.hard:
                text = (record.name + " " + record.description).lower()
                assert record.manufacturer.lower() not in text

    def test_easy_records_mention_brand(self):
        buy = generate_buy_dataset()
        for record in buy.test:
            if not record.hard:
                text = (record.name + " " + record.description).lower()
                assert record.manufacturer.lower() in text

    def test_ground_truth_is_recoverable_from_line(self):
        buy = generate_buy_dataset(n_test=200)
        hits = sum(
            1
            for r in buy.test
            if brand_of_product(r.name) == r.manufacturer
        )
        assert hits / 200 > 0.95

    def test_visible_record_hides_manufacturer(self):
        record = generate_buy_dataset(n_test=10).test[0]
        assert record.visible()["manufacturer"] is None

    def test_invalid_fraction_raises(self):
        with pytest.raises(ValueError):
            generate_buy_dataset(hard_fraction=2.0)

    def test_deterministic(self):
        a = generate_buy_dataset(seed=3, n_test=50)
        b = generate_buy_dataset(seed=3, n_test=50)
        assert [r.name for r in a.test] == [r.name for r in b.test]


class TestNamesGenerator:
    def test_language_mix_roughly_respected(self):
        ds = generate_name_dataset(n_documents=400)
        english = len(ds.by_language("en"))
        assert 0.3 < english / 400 < 0.5

    def test_names_appear_in_text(self):
        ds = generate_name_dataset(n_documents=100)
        for doc in ds.documents:
            for name in doc.names:
                assert name in doc.text

    def test_each_doc_has_at_least_one_name(self):
        ds = generate_name_dataset(n_documents=100)
        assert all(doc.names for doc in ds.documents)

    def test_unknown_language_rejected(self):
        with pytest.raises(ValueError):
            generate_name_dataset(language_mix={"xx": 1.0})

    def test_deterministic(self):
        a = generate_name_dataset(seed=9, n_documents=40)
        b = generate_name_dataset(seed=9, n_documents=40)
        assert [d.text for d in a.documents] == [d.text for d in b.documents]

    def test_summary_counts_names(self):
        summary = generate_name_dataset(n_documents=20).summary()
        assert "20 docs" in summary
