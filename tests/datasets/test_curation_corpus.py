"""Determinism and ground-truth structure of the synthetic curation corpus.

Every document is a pure function of ``(seed, name, index)``: the suite
checks that random access, iteration order and construction order cannot
change a single byte of any document, that the planted ground truth
(duplicate clusters, quality tiers, contamination splices) is internally
consistent, and that the paired eval set is disjoint from corpus prose at
the vocabulary level the decontamination scan relies on.
"""

from __future__ import annotations

import re

import pytest

from repro.datasets.curation import (
    CurationCorpus,
    CurationEvalSet,
    curation_vocabulary,
)


@pytest.fixture(scope="module")
def corpus() -> CurationCorpus:
    return CurationCorpus(n_docs=160, seed=7)


class TestDeterminism:
    def test_rebuild_is_byte_identical(self, corpus):
        rebuilt = CurationCorpus(n_docs=160, seed=7)
        assert [d.record() for d in rebuilt] == [d.record() for d in corpus]

    def test_access_order_does_not_matter(self, corpus):
        fresh = CurationCorpus(n_docs=160, seed=7)
        # Touch documents in reverse and shuffled-ish order first.
        backwards = [fresh.doc(i).text for i in reversed(range(len(fresh)))]
        assert backwards[::-1] == [d.text for d in corpus]
        assert fresh.doc(31).text == corpus.doc(31).text

    def test_prefix_stability(self, corpus):
        """A longer corpus extends, never rewrites, a shorter one."""
        longer = CurationCorpus(n_docs=220, seed=7)
        assert [longer.doc(i).text for i in range(160)] == [d.text for d in corpus]

    def test_seeds_diverge(self, corpus):
        other = CurationCorpus(n_docs=160, seed=11)
        assert [d.text for d in other] != [d.text for d in corpus]

    def test_examples_deterministic(self, corpus):
        assert corpus.dedup_examples(4) == corpus.dedup_examples(4)
        assert corpus.quality_examples(4) == corpus.quality_examples(4)
        assert corpus.decontamination_examples(4) == corpus.decontamination_examples(4)

    def test_eval_set_deterministic(self, corpus):
        again = CurationCorpus(n_docs=160, seed=7).eval_set
        assert list(again.items()) == list(corpus.eval_set.items())


class TestGroundTruth:
    def test_duplicates_reference_earlier_canonicals(self, corpus):
        for doc in corpus:
            if doc.is_duplicate:
                canonical = corpus.doc(doc.cluster)
                assert doc.cluster < doc.index
                assert not canonical.is_duplicate
                assert canonical.cluster == canonical.index
            else:
                assert doc.cluster == doc.index

    def test_dup_floor_has_no_duplicates(self, corpus):
        for index in range(corpus.dup_floor):
            assert not corpus.doc(index).is_duplicate

    def test_cluster_shares_quality_label(self, corpus):
        for doc in corpus:
            assert doc.keep == (doc.quality >= 0.5)
            if doc.is_duplicate:
                assert doc.keep == corpus.doc(doc.cluster).keep

    def test_contamination_matches_eval_index(self, corpus):
        eval_set = corpus.eval_set
        planted = 0
        for doc in corpus:
            if doc.contaminated:
                planted += 1
                assert 0 <= doc.eval_index < len(eval_set)
            else:
                assert doc.eval_index == -1
        assert planted > 0

    def test_label_populations_present(self, corpus):
        docs = corpus.materialize()
        assert any(d.is_duplicate for d in docs)
        assert any(not d.is_duplicate for d in docs)
        assert any(d.keep for d in docs)
        assert any(not d.keep for d in docs)

    def test_records_leak_no_labels(self, corpus):
        assert set(corpus.doc(0).record()) == {"id", "text"}

    def test_inputs_match_records(self, corpus):
        assert list(corpus.inputs()) == [d.record() for d in corpus]


class TestEvalSet:
    def test_items_drawn_from_curation_vocabulary(self):
        """Alphabetic eval-item words are in-vocabulary (never gibberish).

        The quality skill flags long out-of-vocabulary words as junk; a
        contamination splice must not trip that detector, so eval items
        may only use legitimate domain words (digits/ids aside).
        """
        vocabulary = curation_vocabulary()
        eval_set = CurationEvalSet(size=16, seed=3, name="probe-eval")
        for item in eval_set.items():
            words = re.findall(r"[^\W\d_]+", item.lower())
            long_words = [word for word in words if len(word) >= 3]
            assert long_words, "empty eval item"
            assert all(word in vocabulary for word in long_words)

    def test_fingerprint_tracks_identity(self):
        a = CurationEvalSet(size=16, seed=3, name="x")
        b = CurationEvalSet(size=16, seed=4, name="x")
        assert a.fingerprint != b.fingerprint
        assert a.fingerprint == CurationEvalSet(size=16, seed=3, name="x").fingerprint


def test_validation_rejects_bad_fractions():
    with pytest.raises(ValueError):
        CurationCorpus(n_docs=10, dup_fraction=1.5)
    with pytest.raises(ValueError):
        CurationCorpus(n_docs=-1)
