"""Tests for repro.ml.metrics."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml.metrics import (
    accuracy,
    classification_report,
    confusion_matrix,
    f1_score,
    precision_recall_f1,
)

LABELS = st.lists(st.integers(0, 1), min_size=1, max_size=40)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy([1, 0, 1], [1, 0, 1]) == 1.0

    def test_half(self):
        assert accuracy([1, 0], [1, 1]) == 0.5

    def test_empty_is_zero(self):
        assert accuracy([], []) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy([1], [1, 0])

    def test_works_with_string_labels(self):
        assert accuracy(["a", "b"], ["a", "c"]) == 0.5


class TestPrecisionRecallF1:
    def test_known_values(self):
        # tp=2 fp=1 fn=1
        p, r, f1 = precision_recall_f1([1, 1, 1, 0], [1, 1, 0, 1])
        assert p == pytest.approx(2 / 3)
        assert r == pytest.approx(2 / 3)
        assert f1 == pytest.approx(2 / 3)

    def test_no_predicted_positives(self):
        p, r, f1 = precision_recall_f1([1, 1], [0, 0])
        assert (p, r, f1) == (0.0, 0.0, 0.0)

    def test_no_actual_positives(self):
        p, _, _ = precision_recall_f1([0, 0], [1, 0])
        assert p == 0.0

    def test_custom_positive_label(self):
        _, recall, _ = precision_recall_f1(["y", "n"], ["y", "y"], positive="y")
        assert recall == 1.0

    @given(LABELS)
    def test_perfect_predictions_give_perfect_f1(self, y: list[int]):
        if 1 in y:
            assert f1_score(y, y) == 1.0

    @given(LABELS, LABELS)
    def test_f1_in_unit_range(self, a: list[int], b: list[int]):
        n = min(len(a), len(b))
        assert 0.0 <= f1_score(a[:n], b[:n]) <= 1.0


class TestConfusionMatrix:
    def test_counts(self):
        cm = confusion_matrix([1, 1, 0], [1, 0, 0])
        assert cm == {(1, 1): 1, (1, 0): 1, (0, 0): 1}

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            confusion_matrix([1], [])


class TestClassificationReport:
    def test_macro_f1_and_accuracy(self):
        report = classification_report(["a", "a", "b"], ["a", "b", "b"])
        assert report.accuracy == pytest.approx(2 / 3)
        assert 0.0 < report.macro_f1() <= 1.0

    def test_support_counts(self):
        report = classification_report(["a", "a", "b"], ["a", "a", "b"])
        assert report.support == {"a": 2, "b": 1}

    def test_text_rendering_mentions_all_classes(self):
        report = classification_report(["x", "y"], ["x", "y"])
        text = report.to_text()
        assert "'x'" in text and "'y'" in text
