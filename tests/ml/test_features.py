"""Tests for repro.ml.features."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml.features import PAIR_FEATURE_NAMES, HashingVectorizer, PairFeatureExtractor


class TestHashingVectorizer:
    def test_deterministic(self):
        v = HashingVectorizer(n_features=64)
        a = v.transform_one("stone ipa beer")
        b = v.transform_one("stone ipa beer")
        assert np.array_equal(a, b)

    def test_unit_norm(self):
        v = HashingVectorizer(n_features=64)
        assert np.linalg.norm(v.transform_one("hello world")) == pytest.approx(1.0)

    def test_empty_text_is_zero_vector(self):
        v = HashingVectorizer(n_features=32)
        assert np.linalg.norm(v.transform_one("")) == 0.0

    def test_similar_texts_closer_than_different(self):
        v = HashingVectorizer(n_features=512)
        a = v.transform_one("sony playstation memory card")
        b = v.transform_one("sony playstation memory stick")
        c = v.transform_one("garden salad recipe ideas")
        assert a @ b > a @ c

    def test_batch_shape(self):
        v = HashingVectorizer(n_features=128)
        X = v.transform(["a", "b", "c"])
        assert X.shape == (3, 128)

    def test_empty_batch(self):
        v = HashingVectorizer(n_features=128)
        assert v.transform([]).shape == (0, 128)

    def test_binary_mode(self):
        v = HashingVectorizer(n_features=64, binary=True)
        vec = v.transform_one("a a a b")
        nonzero = vec[vec > 0]
        assert np.allclose(nonzero, nonzero[0])

    @given(st.text(max_size=40))
    def test_never_crashes_and_finite(self, text: str):
        v = HashingVectorizer(n_features=32)
        vec = v.transform_one(text)
        assert np.isfinite(vec).all()


class TestPairFeatureExtractor:
    LEFT = {"name": "Stone IPA", "abv": "5.5"}
    RIGHT = {"name": "Stone India Pale Ale", "abv": "5.5"}

    def test_feature_width(self):
        ex = PairFeatureExtractor(["name", "abv"])
        assert ex.n_features == 2 * len(PAIR_FEATURE_NAMES)

    def test_metric_subset(self):
        ex = PairFeatureExtractor(["name"], metrics=("jaccard", "numeric"))
        assert ex.n_features == 2
        assert ex.feature_names() == ["name.jaccard", "name.numeric"]

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            PairFeatureExtractor(["name"], metrics=("nope",))

    def test_identical_records_score_high(self):
        ex = PairFeatureExtractor(["name"])
        vec = ex.transform_pair({"name": "abc def"}, {"name": "abc def"})
        assert vec.min() >= 0.99

    def test_missing_both_gives_neutral(self):
        ex = PairFeatureExtractor(["name"], metrics=("jaccard", "both_present"))
        vec = ex.transform_pair({"name": None}, {"name": None})
        assert list(vec) == [0.5, 0.0]

    def test_normalization_helps_abbreviations(self):
        raw = PairFeatureExtractor(["name"], normalize=False)
        norm = PairFeatureExtractor(["name"], normalize=True)
        left, right = {"name": "12 Main St."}, {"name": "12 Main Street"}
        assert norm.transform_pair(left, right).mean() > raw.transform_pair(left, right).mean()

    def test_batch_shape(self):
        ex = PairFeatureExtractor(["name"])
        X = ex.transform([(self.LEFT, self.RIGHT)] * 3)
        assert X.shape == (3, ex.n_features)

    def test_values_in_unit_range(self):
        ex = PairFeatureExtractor(["name", "abv"])
        vec = ex.transform_pair(self.LEFT, self.RIGHT)
        assert (vec >= 0).all() and (vec <= 1).all()
