"""Tests for the learners: logistic, softmax, NB, tree, forest, kNN."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import seeded_rng
from repro.ml.forest import RandomForest
from repro.ml.knn import KNNClassifier
from repro.ml.logistic import LogisticRegression, SoftmaxRegression
from repro.ml.naive_bayes import MultinomialNaiveBayes
from repro.ml.tree import DecisionTree


def linearly_separable(n: int = 120, seed: int = 0):
    rng = seeded_rng(seed)
    X, y = [], []
    for _ in range(n):
        x0, x1 = rng.uniform(-1, 1), rng.uniform(-1, 1)
        X.append([x0, x1])
        y.append(1 if x0 + x1 > 0 else 0)
    return np.array(X), y


def xor_data(n: int = 200, seed: int = 1):
    rng = seeded_rng(seed)
    X, y = [], []
    for _ in range(n):
        x0, x1 = rng.uniform(-1, 1), rng.uniform(-1, 1)
        X.append([x0, x1])
        y.append(1 if (x0 > 0) != (x1 > 0) else 0)
    return np.array(X), y


class TestLogisticRegression:
    def test_learns_separable_data(self):
        X, y = linearly_separable()
        model = LogisticRegression(epochs=500, lr=1.0).fit(X, y)
        assert (model.predict(X) == np.array(y)).mean() > 0.95

    def test_probabilities_in_range(self):
        X, y = linearly_separable()
        model = LogisticRegression().fit(X, y)
        probs = model.predict_proba(X)
        assert (probs >= 0).all() and (probs <= 1).all()

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict(np.zeros((1, 2)))

    def test_empty_fit_raises(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros((0, 2)), [])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros((3, 2)), [0, 1])

    def test_threshold_changes_predictions(self):
        X, y = linearly_separable()
        model = LogisticRegression(epochs=300).fit(X, y)
        strict = model.predict(X, threshold=0.95).sum()
        lenient = model.predict(X, threshold=0.05).sum()
        assert lenient >= strict


class TestSoftmaxRegression:
    def test_learns_three_classes(self):
        rng = seeded_rng(5)
        X, y = [], []
        centers = {(2, 0): "a", (-2, 0): "b", (0, 2): "c"}
        for (cx, cy), label in centers.items():
            for _ in range(40):
                X.append([cx + rng.gauss(0, 0.3), cy + rng.gauss(0, 0.3)])
                y.append(label)
        model = SoftmaxRegression(epochs=400, lr=1.0).fit(np.array(X), y)
        predictions = model.predict(np.array(X))
        assert sum(p == t for p, t in zip(predictions, y)) / len(y) > 0.95

    def test_probabilities_sum_to_one(self):
        X, y = linearly_separable(60)
        model = SoftmaxRegression(epochs=100).fit(X, y)
        probs = model.predict_proba(X)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_confidence_matches_argmax(self):
        X, y = linearly_separable(60)
        model = SoftmaxRegression(epochs=100).fit(X, y)
        for (label, confidence), row in zip(
            model.predict_with_confidence(X[:5]), model.predict_proba(X[:5])
        ):
            assert confidence == pytest.approx(row.max())
            assert label == model.classes_[row.argmax()]

    def test_classes_sorted_deterministically(self):
        X, y = linearly_separable(60)
        model = SoftmaxRegression(epochs=10).fit(X, y)
        assert model.classes_ == sorted(set(y), key=repr)


class TestNaiveBayes:
    def test_learns_topic_separation(self):
        texts = ["beer ale stout hops"] * 10 + ["guitar drums song music"] * 10
        labels = ["drink"] * 10 + ["music"] * 10
        model = MultinomialNaiveBayes().fit(texts, labels)
        assert model.predict_one("hoppy ale with stout notes") == "drink"
        assert model.predict_one("a song with loud drums") == "music"

    def test_partial_fit_updates(self):
        model = MultinomialNaiveBayes()
        model.partial_fit("alpha beta", "x")
        model.partial_fit("gamma delta", "y")
        assert model.predict_one("alpha") == "x"

    def test_confidence_in_unit_range(self):
        model = MultinomialNaiveBayes().fit(["a b", "c d"], ["x", "y"])
        _, confidence = model.predict_with_confidence("a b")
        assert 0.0 < confidence <= 1.0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MultinomialNaiveBayes().predict_one("hello")

    def test_empty_fit_raises(self):
        with pytest.raises(ValueError):
            MultinomialNaiveBayes().fit([], [])


class TestDecisionTree:
    def test_solves_xor(self):
        X, y = xor_data()
        tree = DecisionTree(max_depth=4).fit(X, y)
        assert (tree.predict(X) == np.array(y)).mean() > 0.9

    def test_depth_respects_limit(self):
        X, y = xor_data()
        tree = DecisionTree(max_depth=3).fit(X, y)
        assert tree.depth() <= 3

    def test_pure_leaf_short_circuits(self):
        X = np.array([[0.0], [1.0], [2.0]])
        tree = DecisionTree().fit(X, [1, 1, 1])
        assert tree.depth() == 0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTree().predict(np.zeros((1, 1)))


class TestRandomForest:
    def test_solves_xor_better_than_chance(self):
        X, y = xor_data()
        forest = RandomForest(n_trees=15, max_depth=5, seed=2).fit(X, y)
        assert (forest.predict(X) == np.array(y)).mean() > 0.9

    def test_deterministic_given_seed(self):
        X, y = xor_data(80)
        a = RandomForest(n_trees=5, seed=7).fit(X, y).predict_proba(X)
        b = RandomForest(n_trees=5, seed=7).fit(X, y).predict_proba(X)
        assert np.array_equal(a, b)

    def test_probabilities_in_range(self):
        X, y = xor_data(80)
        probs = RandomForest(n_trees=5, seed=0).fit(X, y).predict_proba(X)
        assert (probs >= 0).all() and (probs <= 1).all()


class TestKNN:
    def test_nearest_neighbour_recall(self):
        X = np.eye(4)
        y = ["a", "b", "c", "d"]
        model = KNNClassifier(k=1).fit(X, y)
        assert model.predict(X) == y

    def test_majority_vote(self):
        X = np.array([[1, 0], [1, 0.1], [0, 1.0]])
        model = KNNClassifier(k=3).fit(X, ["x", "x", "y"])
        label, confidence = model.predict_with_confidence(np.array([1, 0.05]))
        assert label == "x"
        assert confidence > 0.5

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            KNNClassifier().predict_one(np.zeros(2))
