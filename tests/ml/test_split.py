"""Tests for repro.ml.split."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml.split import kfold_indices, stratified_split, train_test_split


class TestTrainTestSplit:
    def test_partition_is_complete(self):
        items = list(range(20))
        train, test = train_test_split(items, 0.25, seed=1)
        assert sorted(train + test) == items

    def test_fraction_respected(self):
        train, test = train_test_split(list(range(100)), 0.25, seed=1)
        assert len(test) == 25

    def test_deterministic_given_seed(self):
        a = train_test_split(list(range(50)), 0.2, seed=3)
        b = train_test_split(list(range(50)), 0.2, seed=3)
        assert a == b

    def test_different_seeds_shuffle_differently(self):
        a, _ = train_test_split(list(range(50)), 0.2, seed=1)
        b, _ = train_test_split(list(range(50)), 0.2, seed=2)
        assert a != b

    def test_invalid_fraction_raises(self):
        with pytest.raises(ValueError):
            train_test_split([1, 2], 1.5)

    @given(st.floats(0.0, 1.0))
    def test_sizes_add_up(self, fraction: float):
        train, test = train_test_split(list(range(30)), fraction, seed=0)
        assert len(train) + len(test) == 30


class TestStratifiedSplit:
    def test_label_ratio_preserved(self):
        items = list(range(100))
        labels = [i % 2 for i in items]
        _, _, train_labels, test_labels = stratified_split(items, labels, 0.2, seed=0)
        assert abs(sum(train_labels) / len(train_labels) - 0.5) < 0.05
        assert abs(sum(test_labels) / len(test_labels) - 0.5) < 0.1

    def test_partition_is_complete(self):
        items = list(range(30))
        labels = [i % 3 for i in items]
        train, test, _, _ = stratified_split(items, labels, 0.3, seed=0)
        assert sorted(train + test) == items

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            stratified_split([1, 2], [0])


class TestKFold:
    def test_folds_partition_everything(self):
        folds = kfold_indices(20, 4, seed=0)
        assert len(folds) == 4
        all_test = sorted(i for _, test in folds for i in test)
        assert all_test == list(range(20))

    def test_train_test_disjoint(self):
        for train, test in kfold_indices(15, 3, seed=1):
            assert not set(train) & set(test)
            assert sorted(train + test) == list(range(15))

    def test_k_less_than_two_raises(self):
        with pytest.raises(ValueError):
            kfold_indices(10, 1)

    def test_n_less_than_k_raises(self):
        with pytest.raises(ValueError):
            kfold_indices(2, 3)
