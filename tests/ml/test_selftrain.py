"""Tests for self-training with confidence filters (paper section 3.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import seeded_rng
from repro.ml.selftrain import SelfTrainingClassifier


def make_noisy_teacher_data(n_seed: int = 60, n_pool: int = 200, noise: float = 0.2):
    """Two Gaussian blobs; the teacher labels the seed set with noise."""
    rng = seeded_rng(42)

    def sample(n):
        X, truth = [], []
        for _ in range(n):
            label = rng.random() < 0.5
            center = 1.5 if label else -1.5
            X.append([center + rng.gauss(0, 0.8), center + rng.gauss(0, 0.8)])
            truth.append("pos" if label else "neg")
        return np.array(X), truth

    X_seed, seed_truth = sample(n_seed)
    noisy = [
        ("neg" if t == "pos" else "pos") if rng.random() < noise else t
        for t in seed_truth
    ]
    X_pool, pool_truth = sample(n_pool)
    X_test, test_truth = sample(300)
    return X_seed, noisy, X_pool, X_test, test_truth


class TestSelfTraining:
    def test_fits_and_predicts(self):
        X_seed, noisy, X_pool, X_test, truth = make_noisy_teacher_data()
        model = SelfTrainingClassifier(rounds=2).fit(X_seed, noisy, X_pool)
        predictions = model.predict(X_test)
        accuracy = sum(p == t for p, t in zip(predictions, truth)) / len(truth)
        assert accuracy > 0.8

    def test_student_can_beat_noisy_teacher(self):
        """The paper's claim: self-training with filters can exceed the teacher."""
        X_seed, noisy, X_pool, X_test, truth = make_noisy_teacher_data(noise=0.25)
        teacher_accuracy = 0.75  # by construction of the label noise
        model = SelfTrainingClassifier(rounds=3, confidence_threshold=0.9).fit(
            X_seed, noisy, X_pool
        )
        predictions = model.predict(X_test)
        accuracy = sum(p == t for p, t in zip(predictions, truth)) / len(truth)
        assert accuracy > teacher_accuracy

    def test_adoption_tracking(self):
        X_seed, noisy, X_pool, _, _ = make_noisy_teacher_data()
        model = SelfTrainingClassifier(rounds=2).fit(X_seed, noisy, X_pool)
        assert model.adopted_per_round is not None
        assert len(model.adopted_per_round) >= 1

    def test_no_pool_is_plain_supervised(self):
        X_seed, noisy, _, X_test, _ = make_noisy_teacher_data()
        model = SelfTrainingClassifier().fit(X_seed, noisy)
        assert model.adopted_per_round == []
        assert len(model.predict(X_test)) == len(X_test)

    def test_confidences_in_unit_range(self):
        X_seed, noisy, X_pool, X_test, _ = make_noisy_teacher_data()
        model = SelfTrainingClassifier(rounds=1).fit(X_seed, noisy, X_pool)
        for _, confidence in model.predict_with_confidence(X_test[:20]):
            assert 0.0 <= confidence <= 1.0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SelfTrainingClassifier().predict(np.zeros((1, 2)))
