"""Property-based tests for the MinHash / LSH / shingling substrate.

Hypothesis locks the three guarantees the dedup template leans on:

- **Estimator accuracy** — the MinHash Jaccard estimate stays inside the
  analytic bound ``sigmas * sqrt(J(1-J)/k) + 1/k`` of the exact Jaccard
  (:func:`repro.text.minhash.minhash_error_bound`); the permutation family
  is a real universal-hash family, not a biased stand-in.
- **LSH no-drop (pigeonhole form)** — a pair whose signatures disagree in
  fewer than ``bands`` positions always shares at least one complete band,
  so above-threshold pairs can never be silently dropped by banding.
- **Canonicalization algebra** — both canonical forms are idempotent and
  shingling is invariant under re-canonicalization, which is what makes
  the dedup pipeline idempotent end to end.

The scalar ≡ columnar bitwise equivalence of the batch kernels is locked
here too (skipped where numpy is absent, like the other columnar suites).
"""

from __future__ import annotations

import os

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.text.minhash import (  # noqa: E402
    EMPTY_SLOT,
    LSHIndex,
    band_keys,
    estimate_jaccard,
    minhash_error_bound,
    minhash_params,
    minhash_signature,
)
from repro.text.shingle import (  # noqa: E402
    SHINGLE_SPACE,
    exact_jaccard,
    knowledge_canonical,
    shingle_ids,
    simple_canonical,
)

MAX_EXAMPLES = int(os.environ.get("MINHASH_PROP_EXAMPLES", "60"))

SHINGLE_ID = st.integers(min_value=0, max_value=SHINGLE_SPACE - 1)
ID_SET = st.frozensets(SHINGLE_ID, min_size=0, max_size=60)
TEXT = st.text(
    alphabet=st.characters(
        codec="utf-8", exclude_categories=("Cs",), max_codepoint=0x2FFF
    ),
    max_size=120,
)

PARAMS_128 = minhash_params(128)


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(a=ID_SET, b=ID_SET)
def test_minhash_estimate_within_analytic_bound(a, b):
    ids_a, ids_b = tuple(sorted(a)), tuple(sorted(b))
    sig_a = minhash_signature(ids_a, PARAMS_128)
    sig_b = minhash_signature(ids_b, PARAMS_128)
    jaccard = exact_jaccard(ids_a, ids_b)
    estimate = estimate_jaccard(sig_a, sig_b)
    bound = minhash_error_bound(jaccard, PARAMS_128.num_perm, sigmas=5.0)
    assert abs(estimate - jaccard) <= bound


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(ids=ID_SET)
def test_identical_sets_estimate_one(ids):
    signature = minhash_signature(tuple(sorted(ids)), PARAMS_128)
    assert estimate_jaccard(signature, signature) == 1.0


def test_empty_set_gets_sentinel_signature():
    signature = minhash_signature((), PARAMS_128)
    assert set(signature) == {EMPTY_SLOT}


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(
    ids=st.frozensets(SHINGLE_ID, min_size=1, max_size=60),
    bands=st.sampled_from([8, 16, 32]),
    rows=st.sampled_from([2, 4]),
    data=st.data(),
)
def test_lsh_pigeonhole_never_drops_close_pairs(ids, bands, rows, data):
    """< ``bands`` signature mismatches ⇒ at least one shared full band."""
    params = minhash_params(bands * rows, seed=f"prop-{bands}x{rows}")
    sig_a = list(minhash_signature(tuple(sorted(ids)), params))
    n_flips = data.draw(st.integers(min_value=0, max_value=bands - 1))
    positions = data.draw(
        st.lists(
            st.integers(0, len(sig_a) - 1),
            min_size=n_flips,
            max_size=n_flips,
            unique=True,
        )
    )
    sig_b = list(sig_a)
    for position in positions:
        sig_b[position] = (sig_b[position] + 1) % EMPTY_SLOT
    keys_a = band_keys(tuple(sig_a), bands, rows)
    keys_b = band_keys(tuple(sig_b), bands, rows)
    assert set(keys_a) & set(keys_b), "pigeonhole guarantee violated"
    index = LSHIndex(bands, rows)
    index.add("a", tuple(sig_a))
    index.add("b", tuple(sig_b))
    assert ("a", "b") in index.candidate_pairs()


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(text=TEXT)
def test_canonicalizers_idempotent(text):
    simple = simple_canonical(text)
    knowledge = knowledge_canonical(text)
    assert simple_canonical(simple) == simple
    assert knowledge_canonical(knowledge) == knowledge


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(text=TEXT, n=st.integers(min_value=1, max_value=4))
def test_shingling_stable_under_recanonicalization(text, n):
    canonical = simple_canonical(text)
    assert shingle_ids(canonical, n) == shingle_ids(simple_canonical(canonical), n)


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(a=ID_SET, b=ID_SET)
def test_exact_jaccard_symmetric_and_bounded(a, b):
    ids_a, ids_b = tuple(sorted(a)), tuple(sorted(b))
    j = exact_jaccard(ids_a, ids_b)
    assert j == exact_jaccard(ids_b, ids_a)
    assert 0.0 <= j <= 1.0
    assert exact_jaccard(ids_a, ids_a) == (1.0 if ids_a else 1.0)


# -- scalar ≡ columnar bitwise equivalence ----------------------------------

np = pytest.importorskip("numpy")

from repro.storage.columnar import (  # noqa: E402
    band_keys_many,
    minhash_signatures_many,
)


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(rows_of_ids=st.lists(ID_SET, min_size=0, max_size=8))
def test_columnar_signatures_bitwise_equal_scalar(rows_of_ids):
    id_rows = [tuple(sorted(ids)) for ids in rows_of_ids]
    batch = minhash_signatures_many(id_rows, PARAMS_128.a, PARAMS_128.b)
    assert batch.shape == (len(id_rows), PARAMS_128.num_perm)
    for row_index, ids in enumerate(id_rows):
        scalar = minhash_signature(ids, PARAMS_128)
        assert tuple(int(v) for v in batch[row_index]) == scalar


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(
    rows_of_ids=st.lists(st.frozensets(SHINGLE_ID, min_size=1, max_size=30), min_size=1, max_size=6),
    bands=st.sampled_from([8, 32]),
)
def test_columnar_band_keys_bitwise_equal_scalar(rows_of_ids, bands):
    rows = 128 // bands
    id_rows = [tuple(sorted(ids)) for ids in rows_of_ids]
    batch = minhash_signatures_many(id_rows, PARAMS_128.a, PARAMS_128.b)
    batch_keys = band_keys_many(batch, bands, rows)
    for row_index, ids in enumerate(id_rows):
        scalar = band_keys(minhash_signature(ids, PARAMS_128), bands, rows)
        assert batch_keys[row_index] == scalar
