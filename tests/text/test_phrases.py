"""Tests for the noun-phrase chunkers (naive vs refined)."""

from __future__ import annotations

from repro.text.phrases import naive_noun_phrases, noun_phrases


def texts(spans):
    return [s.text for s in spans]


class TestNaiveChunker:
    def test_keeps_sentence_initial_function_words(self):
        assert "Yesterday" in " ".join(texts(naive_noun_phrases("Yesterday John arrived.")))

    def test_splits_on_particles(self):
        found = texts(naive_noun_phrases("Maria de la Cruz spoke."))
        assert "Maria de la Cruz" not in found

    def test_finds_simple_runs_and_overtriggers(self):
        # The naive draft keeps sentence-initial pronouns — that is the bug
        # the validator's repair loop later fixes.
        assert texts(naive_noun_phrases("He met John Smith there.")) == ["He", "John Smith"]


class TestRefinedChunker:
    def test_drops_sentence_initial_function_word(self):
        assert texts(noun_phrases("Yesterday John Smith arrived.")) == ["John Smith"]

    def test_bridges_single_particle(self):
        assert "Ludwig van Beethoven" in texts(
            noun_phrases("Ludwig van Beethoven composed.")
        )

    def test_bridges_consecutive_particles(self):
        assert "Maria de la Cruz" in texts(noun_phrases("Maria de la Cruz spoke."))

    def test_strips_honorifics(self):
        found = texts(noun_phrases("Dr. Chen presented the results."))
        assert "Chen" in found
        assert all("Dr" != phrase for phrase in found)

    def test_plain_sentence_yields_nothing(self):
        assert texts(noun_phrases("The report was fine.")) == []

    def test_multiple_phrases_in_order(self):
        found = texts(noun_phrases("John Smith met Jane Doe in Boston."))
        assert found == ["John Smith", "Jane Doe", "Boston"]

    def test_spanish_sentence_initial_word_dropped(self):
        found = texts(noun_phrases("Ayer María García habló."))
        assert "Ayer" not in " ".join(found)
        assert any("García" in phrase for phrase in found)

    def test_spans_point_into_text(self):
        text = "He saw Anna Schmidt yesterday."
        for span in noun_phrases(text):
            assert text[span.start : span.end].startswith(span.tokens[0])

    def test_empty_text(self):
        assert noun_phrases("") == []

    def test_particle_at_end_not_bridged(self):
        # "de" with nothing capitalised after it must not extend the phrase.
        found = texts(noun_phrases("Maria de que hablaba."))
        assert found == ["Maria"]


class TestChunkerContrast:
    def test_refined_beats_naive_on_particles(self):
        text = "Yesterday Vincent van Gogh met Maria de la Cruz."
        naive = set(texts(naive_noun_phrases(text)))
        refined = set(texts(noun_phrases(text)))
        assert "Vincent van Gogh" in refined
        assert "Maria de la Cruz" in refined
        assert "Vincent van Gogh" not in naive
