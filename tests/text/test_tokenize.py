"""Tests for repro.text.tokenize."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.tokenize import (
    char_ngrams,
    ngrams,
    sentence_split,
    tokens_with_spans,
    word_tokenize,
)


class TestWordTokenize:
    def test_simple_sentence(self):
        assert word_tokenize("John met Mary") == ["John", "met", "Mary"]

    def test_punctuation_separated(self):
        assert word_tokenize("John met Mary.") == ["John", "met", "Mary", "."]

    def test_apostrophes_kept_inside_words(self):
        assert word_tokenize("O'Brien's book") == ["O'Brien's", "book"]

    def test_hyphenated_words_kept_together(self):
        assert word_tokenize("Jean-Luc spoke") == ["Jean-Luc", "spoke"]

    def test_numbers_with_separators(self):
        assert word_tokenize("costs 1,000.50 dollars") == ["costs", "1,000.50", "dollars"]

    def test_time_like_number(self):
        assert word_tokenize("runs 3:45 long") == ["runs", "3:45", "long"]

    def test_empty_string(self):
        assert word_tokenize("") == []

    def test_only_whitespace(self):
        assert word_tokenize("   \t\n ") == []

    def test_unicode_words(self):
        assert word_tokenize("José García") == ["José", "García"]

    def test_symbols_become_single_tokens(self):
        assert word_tokenize("a & b") == ["a", "&", "b"]


class TestTokensWithSpans:
    def test_spans_recover_source_text(self):
        text = "Dr. Chen arrived."
        for token in tokens_with_spans(text):
            assert text[token.start : token.end] == token.text

    def test_spans_are_ordered(self):
        spans = tokens_with_spans("one two three")
        starts = [t.start for t in spans]
        assert starts == sorted(starts)

    @given(st.text(max_size=80))
    def test_spans_match_word_tokenize(self, text: str):
        assert [t.text for t in tokens_with_spans(text)] == word_tokenize(text)


class TestSentenceSplit:
    def test_splits_on_periods(self):
        assert sentence_split("One. Two. Three.") == ["One.", "Two.", "Three."]

    def test_splits_on_question_and_exclamation(self):
        assert sentence_split("Really? Yes! Fine.") == ["Really?", "Yes!", "Fine."]

    def test_no_terminal_punctuation(self):
        assert sentence_split("no punctuation here") == ["no punctuation here"]

    def test_empty_input(self):
        assert sentence_split("") == []

    def test_cjk_full_stop(self):
        assert sentence_split("你好。 再见。") == ["你好。", "再见。"]


class TestNgrams:
    def test_bigrams(self):
        assert ngrams(["a", "b", "c"], 2) == [("a", "b"), ("b", "c")]

    def test_n_longer_than_input(self):
        assert ngrams(["a"], 2) == []

    def test_unigrams_identity(self):
        assert ngrams(["x", "y"], 1) == [("x",), ("y",)]

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            ngrams(["a"], 0)

    @given(st.lists(st.text(max_size=4), max_size=12), st.integers(1, 5))
    def test_count_formula(self, tokens: list[str], n: int):
        assert len(ngrams(tokens, n)) == max(0, len(tokens) - n + 1)


class TestCharNgrams:
    def test_padded_trigrams(self):
        grams = char_ngrams("ab", 3)
        assert grams == ["#ab", "ab#"]

    def test_unpadded(self):
        assert char_ngrams("abcd", 2, pad=False) == ["ab", "bc", "cd"]

    def test_short_input_returns_whole(self):
        assert char_ngrams("a", 5, pad=False) == ["a"]

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            char_ngrams("abc", 0)
