"""Tests for the language identifier."""

from __future__ import annotations

import pytest

from repro.text.language import SUPPORTED_LANGUAGES, detect_language


class TestDetectLanguage:
    @pytest.mark.parametrize(
        ("text", "expected"),
        [
            ("The report was written by the committee yesterday.", "en"),
            ("El informe fue presentado ayer por la empresa.", "es"),
            ("Der Bericht wurde gestern von der Firma vorgelegt.", "de"),
            ("Le rapport a été rédigé hier par l'équipe selon les sources.", "fr"),
            ("Zuotian Wei Zhang zai Beijing xuanbu le xin jihua.", "zh"),
        ],
    )
    def test_detects_each_language(self, text: str, expected: str):
        assert detect_language(text).language == expected

    def test_empty_text_defaults_to_english(self):
        guess = detect_language("")
        assert guess.language == "en"
        assert guess.confidence == 0.0

    def test_no_evidence_defaults_to_english(self):
        assert detect_language("xyzzy plugh 42").language == "en"

    def test_confidence_in_unit_range(self):
        guess = detect_language("El informe fue presentado ayer.")
        assert 0.0 <= guess.confidence <= 1.0

    def test_scores_cover_all_languages(self):
        guess = detect_language("hello world")
        assert set(guess.scores) == set(SUPPORTED_LANGUAGES)

    def test_pinyin_needs_distinctive_cue(self):
        # "de" alone is shared with Romance languages and must not flag zh.
        assert detect_language("la casa de mi madre es grande").language != "zh"

    def test_accented_characters_add_evidence(self):
        assert detect_language("señor año mañana").language == "es"
