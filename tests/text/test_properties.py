"""Property-based tests for the text substrate.

Hypothesis drives the normaliser, the similarity measures and the
tokenizers across arbitrary inputs, checking the algebraic properties the
matchers rely on: idempotency, symmetry, identity, unit-interval bounds and
span round-trips.  The module is skipped wholesale where hypothesis is not
installed (it is an optional dev dependency).
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.text.normalize import (  # noqa: E402
    extract_numbers,
    normalize_text,
    normalize_whitespace,
    strip_accents,
)
from repro.text.similarity import (  # noqa: E402
    cosine_similarity,
    dice_similarity,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    monge_elkan_similarity,
    qgram_similarity,
)
from repro.text.tokenize import (  # noqa: E402
    char_ngrams,
    ngrams,
    tokens_with_spans,
    word_tokenize,
)

# Mixed scripts and accents, bounded so the quadratic measures stay fast.
TEXT = st.text(
    alphabet=st.characters(
        codec="utf-8", exclude_categories=("Cs",), max_codepoint=0x2FFF
    ),
    max_size=40,
)
SHORT_TEXT = st.text(
    alphabet=st.characters(codec="utf-8", exclude_categories=("Cs",), max_codepoint=0x2FFF),
    max_size=16,
)

SIMILARITIES = [
    jaccard_similarity,
    dice_similarity,
    cosine_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_similarity,
    qgram_similarity,
    monge_elkan_similarity,
]


class TestNormalizeProperties:
    @given(TEXT)
    @settings(max_examples=200)
    def test_normalize_text_is_idempotent(self, text):
        once = normalize_text(text)
        assert normalize_text(once) == once

    @given(TEXT)
    def test_normalize_text_output_shape(self, text):
        normalized = normalize_text(text)
        assert normalized == normalized.strip()
        assert "  " not in normalized
        assert normalized == normalized.lower()

    @given(TEXT)
    def test_strip_accents_is_idempotent(self, text):
        once = strip_accents(text)
        assert strip_accents(once) == once

    @given(TEXT)
    def test_normalize_whitespace_is_idempotent(self, text):
        once = normalize_whitespace(text)
        assert normalize_whitespace(once) == once

    @given(TEXT)
    def test_extract_numbers_returns_floats(self, text):
        numbers = extract_numbers(text)
        assert all(isinstance(n, float) for n in numbers)


class TestSimilarityProperties:
    @pytest.mark.parametrize("measure", SIMILARITIES)
    @given(a=SHORT_TEXT, b=SHORT_TEXT)
    @settings(max_examples=60)
    def test_symmetry(self, measure, a, b):
        assert measure(a, b) == pytest.approx(measure(b, a), abs=1e-12)

    @pytest.mark.parametrize("measure", SIMILARITIES)
    @given(a=SHORT_TEXT, b=SHORT_TEXT)
    @settings(max_examples=60)
    def test_unit_interval(self, measure, a, b):
        assert 0.0 <= measure(a, b) <= 1.0

    @pytest.mark.parametrize("measure", SIMILARITIES)
    @given(a=SHORT_TEXT)
    @settings(max_examples=60)
    def test_identity(self, measure, a):
        assert measure(a, a) == pytest.approx(1.0)

    @given(a=SHORT_TEXT, b=SHORT_TEXT)
    @settings(max_examples=100)
    def test_levenshtein_is_a_metric(self, a, b):
        distance = levenshtein_distance(a, b)
        assert distance == levenshtein_distance(b, a)
        assert (distance == 0) == (a == b)
        assert distance <= max(len(a), len(b))

    @given(a=SHORT_TEXT, b=SHORT_TEXT, c=SHORT_TEXT)
    @settings(max_examples=60)
    def test_levenshtein_triangle_inequality(self, a, b, c):
        assert levenshtein_distance(a, c) <= (
            levenshtein_distance(a, b) + levenshtein_distance(b, c)
        )


class TestTokenizeProperties:
    @given(TEXT)
    def test_spans_round_trip_to_source(self, text):
        for token in tokens_with_spans(text):
            assert text[token.start : token.end] == token.text

    @given(TEXT)
    def test_spans_agree_with_word_tokenize(self, text):
        assert [t.text for t in tokens_with_spans(text)] == word_tokenize(text)

    @given(TEXT)
    def test_spans_are_ordered_and_disjoint(self, text):
        tokens = tokens_with_spans(text)
        for left, right in zip(tokens, tokens[1:]):
            assert left.end <= right.start

    @given(st.lists(st.text(min_size=1, max_size=6), max_size=12), st.integers(1, 5))
    def test_ngram_count(self, tokens, n):
        grams = ngrams(tokens, n)
        assert len(grams) == max(0, len(tokens) - n + 1)
        assert all(len(g) == n for g in grams)

    @given(SHORT_TEXT, st.integers(1, 4))
    def test_char_ngrams_reconstruct_padded_text(self, text, n):
        grams = char_ngrams(text, n, pad=True)
        padded = "#" + text + "#"
        if len(padded) < n:
            assert grams == [padded]
        else:
            assert grams[0] + "".join(g[-1] for g in grams[1:]) == padded
