"""Tests for repro.text.similarity, including metric-property checks."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.similarity import (
    TfIdfModel,
    cosine_similarity,
    dice_similarity,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    levenshtein_within,
    monge_elkan_similarity,
    numeric_similarity,
    overlap_coefficient,
    qgram_similarity,
)

WORDS = st.text(alphabet=st.characters(whitelist_categories=("Ll", "Lu")), max_size=12)


class TestLevenshtein:
    def test_known_distance(self):
        assert levenshtein_distance("kitten", "sitting") == 3

    def test_identity(self):
        assert levenshtein_distance("abc", "abc") == 0

    def test_empty_versus_word(self):
        assert levenshtein_distance("", "abc") == 3

    @given(WORDS, WORDS)
    def test_symmetry(self, a: str, b: str):
        assert levenshtein_distance(a, b) == levenshtein_distance(b, a)

    @given(WORDS, WORDS)
    def test_bounded_by_longer_length(self, a: str, b: str):
        assert levenshtein_distance(a, b) <= max(len(a), len(b))

    @given(WORDS, WORDS, WORDS)
    def test_triangle_inequality(self, a: str, b: str, c: str):
        assert levenshtein_distance(a, c) <= (
            levenshtein_distance(a, b) + levenshtein_distance(b, c)
        )


class TestBandedLevenshtein:
    @given(WORDS, WORDS)
    def test_band_is_exact_when_distance_fits(self, a: str, b: str):
        true_distance = levenshtein_distance(a, b)
        assert levenshtein_distance(a, b, max_distance=true_distance) == true_distance
        assert levenshtein_distance(a, b, max_distance=true_distance + 3) == true_distance

    @given(WORDS, WORDS)
    def test_exceeding_band_returns_sentinel(self, a: str, b: str):
        true_distance = levenshtein_distance(a, b)
        for budget in range(true_distance):
            assert levenshtein_distance(a, b, max_distance=budget) == budget + 1

    def test_length_gap_short_circuits(self):
        # |len(a) - len(b)| alone already exceeds the budget.
        assert levenshtein_distance("ab", "abcdefgh", max_distance=3) == 4

    def test_zero_budget_is_equality_check(self):
        assert levenshtein_distance("same", "same", max_distance=0) == 0
        assert levenshtein_distance("same", "sane", max_distance=0) == 1

    @given(WORDS, WORDS)
    def test_within_agrees_with_distance(self, a: str, b: str):
        true_distance = levenshtein_distance(a, b)
        assert levenshtein_within(a, b, true_distance)
        if true_distance > 0:
            assert not levenshtein_within(a, b, true_distance - 1)


class TestJaro:
    def test_classic_martha_example(self):
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_winkler_boosts_shared_prefix(self):
        plain = jaro_similarity("martha", "marhta")
        boosted = jaro_winkler_similarity("martha", "marhta")
        assert boosted > plain

    def test_disjoint_strings_zero(self):
        assert jaro_similarity("abc", "xyz") == 0.0

    @given(WORDS, WORDS)
    def test_range_and_symmetry(self, a: str, b: str):
        score = jaro_winkler_similarity(a, b)
        assert 0.0 <= score <= 1.0
        assert score == pytest.approx(jaro_winkler_similarity(b, a))

    @given(WORDS)
    def test_identity_is_one(self, a: str):
        assert jaro_winkler_similarity(a, a) == 1.0


class TestSetSimilarities:
    def test_jaccard_known_value(self):
        assert jaccard_similarity("a b c", "b c d") == pytest.approx(0.5)

    def test_overlap_subset_is_one(self):
        assert overlap_coefficient("a b", "a b c d") == 1.0

    def test_dice_known_value(self):
        assert dice_similarity("a b", "b c") == pytest.approx(0.5)

    def test_empty_inputs_equal(self):
        assert jaccard_similarity("", "") == 1.0

    def test_cosine_orthogonal(self):
        assert cosine_similarity("a a", "b b") == 0.0

    @given(st.lists(WORDS, max_size=6), st.lists(WORDS, max_size=6))
    def test_all_in_unit_range(self, a: list[str], b: list[str]):
        for fn in (jaccard_similarity, overlap_coefficient, dice_similarity, cosine_similarity):
            assert 0.0 <= fn(a, b) <= 1.0


class TestMongeElkanAndQgram:
    def test_monge_elkan_tolerates_reorder(self):
        assert monge_elkan_similarity("john smith", "smith john") > 0.95

    def test_qgram_tolerates_typo(self):
        assert qgram_similarity("playstation", "playstaton") > 0.5

    @given(WORDS, WORDS)
    def test_ranges(self, a: str, b: str):
        assert 0.0 <= monge_elkan_similarity(a, b) <= 1.0
        assert 0.0 <= qgram_similarity(a, b) <= 1.0


class TestNumericSimilarity:
    def test_equal_numbers(self):
        assert numeric_similarity(5.0, 5.0) == 1.0

    def test_both_missing(self):
        assert numeric_similarity(None, None) == 1.0

    def test_one_missing(self):
        assert numeric_similarity(1.0, None) == 0.0

    def test_relative_closeness(self):
        assert numeric_similarity(90, 100) == pytest.approx(0.9)

    def test_zero_pair(self):
        assert numeric_similarity(0.0, 0.0) == 1.0


class TestTfIdf:
    CORPUS = ["stone ipa beer", "stone porter beer", "lucky otter pilsner"]

    def test_rare_token_weighs_more(self):
        model = TfIdfModel(self.CORPUS)
        assert model.idf("pilsner") > model.idf("beer")

    def test_self_similarity_is_one(self):
        model = TfIdfModel(self.CORPUS)
        assert model.similarity("stone ipa", "stone ipa") == pytest.approx(1.0)

    def test_similarity_prefers_shared_rare_tokens(self):
        model = TfIdfModel(self.CORPUS)
        assert model.similarity("stone ipa", "stone porter") < 1.0
        assert model.similarity("stone ipa", "otter pilsner") < model.similarity(
            "stone ipa", "stone porter"
        )

    def test_unseen_tokens_get_default_idf(self):
        model = TfIdfModel(self.CORPUS)
        assert model.idf("zzzunseen") >= model.idf("pilsner")

    def test_vocabulary_order_is_pinned_sorted(self):
        """Regression: idf ties used to surface in corpus/hash order.

        The vocabulary must come out in sorted token order regardless of
        document order, so every derived array (and every float summed in
        vocabulary order) is identical across platforms and processes.
        """
        model = TfIdfModel(self.CORPUS)
        assert model.vocabulary() == (
            "beer", "ipa", "lucky", "otter", "pilsner", "porter", "stone"
        )
        reversed_model = TfIdfModel(list(reversed(self.CORPUS)))
        assert reversed_model.vocabulary() == model.vocabulary()
        assert [reversed_model.idf(t) for t in model.vocabulary()] == [
            model.idf(t) for t in model.vocabulary()
        ]

    def test_vector_is_memoized_and_copies(self):
        """Regression: ``vector`` retokenized + reweighed on every call."""
        model = TfIdfModel(self.CORPUS)
        first = model._vector("stone ipa beer")
        assert model._vector("stone ipa beer") is first  # cached, not rebuilt
        public = model.vector("stone ipa beer")
        assert public == first
        public["stone"] = -1.0  # mutating the copy must not poison the cache
        assert model.vector("stone ipa beer") == first

    def test_similarity_many_matches_scalar(self):
        model = TfIdfModel(self.CORPUS)
        a = ["stone ipa", "lucky otter", "", "stone ipa beer"]
        b = ["stone porter", "otter pilsner", "stone", "stone ipa beer"]
        batch = model.similarity_many(a, b)
        for value, (x, y) in zip(batch, zip(a, b)):
            assert value == pytest.approx(model.similarity(x, y), abs=1e-12)
