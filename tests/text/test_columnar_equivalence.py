"""Scalar ≡ columnar equivalence: the vectorized batch against its oracle.

Every ``*_many`` kernel in :mod:`repro.text.similarity` is property-tested
against the scalar implementation it replaces.  Set metrics and Levenshtein
distances must match *exactly* (they are integer-derived); the float
metrics must match within ``1e-12`` — though most of them are engineered to
accumulate in the scalar's addition order and are asserted bit-equal by the
feature-extractor tests.  Inputs include mixed-script unicode, empty
strings and ``max_distance`` band edges (0, exact distance, distance ± 1,
per-pair bands).

``COLUMNAR_EQ_EXAMPLES`` narrows the hypothesis example budget for CI
smoke runs (matching the crash-matrix narrowing pattern).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.text.similarity import (  # noqa: E402
    TfIdfModel,
    cosine_similarity,
    cosine_similarity_many,
    dice_similarity,
    dice_similarity_many,
    jaccard_similarity,
    jaccard_similarity_many,
    jaro_similarity,
    jaro_similarity_many,
    jaro_winkler_similarity,
    jaro_winkler_similarity_many,
    levenshtein_distance,
    levenshtein_distance_many,
    levenshtein_similarity,
    levenshtein_similarity_many,
    monge_elkan_similarity,
    monge_elkan_similarity_many,
    numeric_similarity,
    numeric_similarity_many,
    overlap_coefficient,
    overlap_coefficient_many,
    qgram_similarity,
    qgram_similarity_many,
)

MAX_EXAMPLES = int(os.environ.get("COLUMNAR_EQ_EXAMPLES", "60"))

# Mixed scripts and accents; bounded so quadratic oracles stay fast.
TEXT = st.text(
    alphabet=st.characters(
        codec="utf-8", exclude_categories=("Cs",), max_codepoint=0x2FFF
    ),
    max_size=24,
)
PAIRS = st.lists(st.tuples(TEXT, TEXT), min_size=0, max_size=12)

ATOL = 1e-12


def _sides(pairs):
    a = [p[0] for p in pairs]
    b = [p[1] for p in pairs]
    return a, b


class TestLevenshteinEquivalence:
    @given(PAIRS)
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_unbanded_exact(self, pairs):
        a, b = _sides(pairs)
        batch = levenshtein_distance_many(a, b)
        oracle = [levenshtein_distance(x, y) for x, y in pairs]
        assert batch.tolist() == oracle

    @given(PAIRS, st.integers(min_value=0, max_value=6))
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_uniform_band_exact(self, pairs, band):
        a, b = _sides(pairs)
        batch = levenshtein_distance_many(a, b, max_distance=band)
        oracle = [levenshtein_distance(x, y, max_distance=band) for x, y in pairs]
        assert batch.tolist() == oracle

    @given(st.lists(st.tuples(TEXT, TEXT, st.integers(0, 8)), max_size=12))
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_per_pair_band_exact(self, rows):
        a = [r[0] for r in rows]
        b = [r[1] for r in rows]
        bands = np.array([r[2] for r in rows], dtype=np.int64)
        batch = levenshtein_distance_many(a, b, max_distance=bands)
        oracle = [
            levenshtein_distance(x, y, max_distance=int(d))
            for x, y, d in rows
        ]
        assert batch.tolist() == oracle

    @given(TEXT, TEXT)
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_band_edges(self, a, b):
        """Bands at 0, D-1, D and D+1 all honour the sentinel contract."""
        exact = levenshtein_distance(a, b)
        for band in sorted({0, max(0, exact - 1), exact, exact + 1}):
            got = levenshtein_distance_many([a], [b], max_distance=band)[0]
            assert got == levenshtein_distance(a, b, max_distance=band)
            assert got == min(exact, band + 1)

    def test_negative_band_rejected(self):
        with pytest.raises(ValueError):
            levenshtein_distance_many(["a"], ["b"], max_distance=-1)

    @given(PAIRS)
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_similarity(self, pairs):
        a, b = _sides(pairs)
        batch = levenshtein_similarity_many(a, b)
        oracle = [levenshtein_similarity(x, y) for x, y in pairs]
        assert np.allclose(batch, oracle, rtol=0, atol=ATOL)
        assert batch.tolist() == oracle  # integer-derived: exact


class TestFloatMetricEquivalence:
    CASES = [
        (jaro_similarity_many, jaro_similarity),
        (jaro_winkler_similarity_many, jaro_winkler_similarity),
        (monge_elkan_similarity_many, monge_elkan_similarity),
        (cosine_similarity_many, cosine_similarity),
    ]

    @given(PAIRS)
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_batch_matches_oracle(self, pairs):
        a, b = _sides(pairs)
        for batch_fn, scalar_fn in self.CASES:
            batch = batch_fn(a, b)
            oracle = [scalar_fn(x, y) for x, y in pairs]
            assert np.allclose(batch, oracle, rtol=0, atol=ATOL), batch_fn.__name__

    @given(TEXT)
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_identity_rows(self, text):
        assert jaro_similarity_many([text], [text])[0] == jaro_similarity(text, text)
        assert (
            jaro_winkler_similarity_many([text], [text])[0]
            == jaro_winkler_similarity(text, text)
        )


class TestSetMetricEquivalence:
    CASES = [
        (jaccard_similarity_many, jaccard_similarity),
        (overlap_coefficient_many, overlap_coefficient),
        (dice_similarity_many, dice_similarity),
    ]

    @given(PAIRS)
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_string_inputs_exact(self, pairs):
        a, b = _sides(pairs)
        for batch_fn, scalar_fn in self.CASES:
            batch = batch_fn(a, b)
            oracle = [scalar_fn(x, y) for x, y in pairs]
            assert batch.tolist() == oracle, batch_fn.__name__

    @given(
        st.lists(
            st.tuples(
                st.lists(st.text(max_size=6), max_size=6),
                st.lists(st.text(max_size=6), max_size=6),
            ),
            max_size=10,
        )
    )
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_token_list_inputs_exact(self, pairs):
        a, b = _sides(pairs)
        for batch_fn, scalar_fn in self.CASES:
            batch = batch_fn(a, b)
            oracle = [scalar_fn(x, y) for x, y in pairs]
            assert batch.tolist() == oracle, batch_fn.__name__

    @given(PAIRS, st.integers(min_value=1, max_value=4))
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_qgram_exact(self, pairs, q):
        a, b = _sides(pairs)
        batch = qgram_similarity_many(a, b, q=q)
        oracle = [qgram_similarity(x, y, q=q) for x, y in pairs]
        assert batch.tolist() == oracle


class TestNumericEquivalence:
    @given(
        st.lists(
            st.tuples(
                st.one_of(st.none(), st.floats(-1e6, 1e6, allow_nan=False)),
                st.one_of(st.none(), st.floats(-1e6, 1e6, allow_nan=False)),
            ),
            max_size=12,
        )
    )
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_batch_matches_oracle(self, pairs):
        a, b = _sides(pairs)
        batch = numeric_similarity_many(a, b)
        oracle = [numeric_similarity(x, y) for x, y in pairs]
        assert batch.tolist() == oracle  # same expression order: exact


class TestTfIdfEquivalence:
    @given(
        st.lists(TEXT, min_size=1, max_size=10),
        st.lists(st.tuples(TEXT, TEXT), min_size=0, max_size=8),
    )
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_similarity_many(self, corpus, pairs):
        model = TfIdfModel(corpus)
        a, b = _sides(pairs)
        batch = model.similarity_many(a, b)
        oracle = [model.similarity(x, y) for x, y in pairs]
        assert np.allclose(batch, oracle, rtol=0, atol=ATOL)
