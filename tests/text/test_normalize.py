"""Tests for repro.text.normalize."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.text.normalize import (
    expand_abbreviations,
    extract_numbers,
    normalize_text,
    normalize_units,
    normalize_whitespace,
    strip_accents,
)


class TestStripAccents:
    def test_common_accents(self):
        assert strip_accents("Köln café") == "Koln cafe"

    def test_spanish_names(self):
        assert strip_accents("José García") == "Jose Garcia"

    def test_plain_ascii_unchanged(self):
        assert strip_accents("plain text") == "plain text"


class TestWhitespace:
    def test_collapses_runs(self):
        assert normalize_whitespace("a   b\t\nc ") == "a b c"

    @given(st.text(max_size=60))
    def test_idempotent(self, text: str):
        once = normalize_whitespace(text)
        assert normalize_whitespace(once) == once


class TestAbbreviations:
    def test_street_forms(self):
        assert expand_abbreviations("12 Main St.") == "12 Main street"

    def test_company_forms(self):
        assert expand_abbreviations("Acme Inc.") == "Acme incorporated"

    def test_featuring(self):
        assert expand_abbreviations("song feat. artist") == "song featuring artist"

    def test_ipa_expands(self):
        assert "india pale ale" in expand_abbreviations("stone ipa")


class TestUnits:
    def test_fluid_ounces(self):
        assert normalize_units("12 fl oz bottle") == "12oz bottle"

    def test_gigabytes(self):
        assert normalize_units("8 GB card") == "8gb card"

    def test_duration_mmss(self):
        assert normalize_units("3:45") == "225s"

    def test_duration_seconds(self):
        assert normalize_units("225 sec") == "225s"

    def test_durations_canonicalise_equal(self):
        assert normalize_units("3:45") == normalize_units("225 seconds")

    def test_percent(self):
        assert normalize_units("5.5 %") == "5.5pct"


class TestNormalizeText:
    def test_full_pipeline(self):
        assert normalize_text("Stone Brewing Co.") == "stone brewery company"

    def test_equates_known_variants(self):
        a = normalize_text("12 Main St.")
        b = normalize_text("12 main street")
        assert a == b

    @given(st.text(max_size=60))
    def test_idempotent(self, text: str):
        once = normalize_text(text)
        assert normalize_text(once) == once

    @given(st.text(max_size=60))
    def test_output_is_lowercase(self, text: str):
        assert normalize_text(text) == normalize_text(text).lower()


class TestExtractNumbers:
    def test_integers_and_decimals(self):
        assert extract_numbers("8 cards at 5.5 each") == [8.0, 5.5]

    def test_no_numbers(self):
        assert extract_numbers("no digits") == []

    def test_order_preserved(self):
        assert extract_numbers("3 then 1 then 2") == [3.0, 1.0, 2.0]
