"""Golden end-to-end fixtures for the three curation templates.

Each template runs on a small fixed corpus against the simulated provider
and must reproduce the committed fixture byte for byte: per-document
predictions, verdict counts, F1 and provider-call counts.  Any drift in
the candidate kernels, cascade thresholds, prompt text, skills or corpus
generator shows up here as a diff.

Regenerate after a *deliberate* behaviour change with:

    REGEN_GOLDEN_CURATION=1 PYTHONPATH=src python -m pytest \
        tests/integration/test_golden_curation.py -q
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.core.runtime.system import LinguaManga
from repro.datasets.curation import CurationCorpus
from repro.tasks.curation import run_decontamination, run_dedup, run_quality_filter

GOLDEN_DIR = Path(__file__).parent / "golden_curation"
_REGEN = os.environ.get("REGEN_GOLDEN_CURATION") == "1"

RUNNERS = {
    "document_dedup": run_dedup,
    "quality_filter": run_quality_filter,
    "decontamination": run_decontamination,
}


@pytest.fixture(scope="module")
def corpus() -> CurationCorpus:
    return CurationCorpus(n_docs=120, seed=13)


def _snapshot(result) -> dict:
    return {
        "task": result.task,
        "corpus": result.corpus,
        "f1": round(result.f1, 6),
        "llm_calls": result.llm_calls,
        "predictions": result.predictions,
    }


def _assert_matches(name: str, snapshot: dict) -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    path = GOLDEN_DIR / f"{name}.json"
    text = json.dumps(snapshot, indent=1, sort_keys=True) + "\n"
    if _REGEN or not path.exists():
        path.write_text(text, encoding="utf-8")
    assert path.read_text(encoding="utf-8") == text, (
        f"curation run drifted from fixture {path.name}; if the change is "
        f"deliberate, regenerate with REGEN_GOLDEN_CURATION=1"
    )


@pytest.mark.parametrize("name", sorted(RUNNERS))
def test_golden_run(name, corpus):
    result = RUNNERS[name](LinguaManga(), corpus)
    _assert_matches(name, _snapshot(result))


@pytest.mark.parametrize("name", sorted(RUNNERS))
def test_golden_run_streaming(name, corpus):
    """The streamed runs must match the same fixtures as the batch runs."""
    result = RUNNERS[name](LinguaManga(), corpus, stream=True, workers=2)
    _assert_matches(name, _snapshot(result))
