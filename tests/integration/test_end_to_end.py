"""Integration tests: full system flows matching the paper's demonstration."""

from __future__ import annotations

import pytest

from repro.core.runtime.system import LinguaManga
from repro.core.templates.library import get_template
from repro.storage.table import Table
from repro.ui.views import render_screen


class TestNoviceFlow:
    """Section 4.1: template search -> instantiate -> run, zero code."""

    def test_search_instantiate_run(self, system):
        hits = system.search_templates("find records that are the same entity")
        assert hits
        pipeline = hits[0][0].instantiate()
        pairs = [
            {
                "left": {"name": "Stone IPA", "brewery": "Stone Brewing"},
                "right": {"name": "Stone IPA", "brewery": "Stone Brewing Co."},
            }
        ]
        report = system.run(pipeline, {"pairs": pairs})
        verdicts = next(iter(report.outputs.values()))
        assert verdicts == [True]


class TestAdeptFlow:
    """Section 4.2: the Figure 3 pipeline with validator-repaired LLMGC."""

    def test_pipeline_enriches_documents(self, system):
        pipeline = get_template("name_extraction").instantiate()
        docs = [{"text": "Yesterday John Smith met Maria de la Cruz in Boston."}]
        report = system.run(pipeline, {"documents": docs})
        enriched = next(iter(report.outputs.values()))[0]
        assert set(enriched) >= {"text", "tokens", "language", "phrases", "names"}
        assert "John Smith" in enriched["names"]
        assert "Boston" not in enriched["names"]

    def test_validator_repaired_chunker_during_compile(self, system):
        pipeline = get_template("name_extraction").instantiate()
        system.compile(pipeline)
        reports = system.compiler.validation_reports
        assert any(r.rounds > 0 and r.passed for r in reports)


class TestExpertFlow:
    """Section 4.3: hybrid imputation via the template."""

    def test_hybrid_escalates_only_hard_records(self, system):
        pipeline = get_template("data_imputation").instantiate()
        # Compile first: the validator's compile-time test cases also make
        # one escalation call, which must not be confused with run traffic.
        plan = system.compile(pipeline)
        before = system.usage("impute_2-escalation").served_calls
        records = [
            {"name": "Sony Walkman Player X1", "description": "player", "manufacturer": None},
            {"name": "PlayStation Controller Y2", "description": "pad", "manufacturer": None},
        ]
        report = plan.execute({"records": records})
        imputed = next(iter(report.outputs.values()))
        assert imputed == ["Sony", "Sony"]
        after = system.usage("impute_2-escalation").served_calls
        assert after - before == 1  # only the brand-less record escalated


class TestDslRoundTrip:
    def test_parse_compile_execute(self, system):
        dsl = '''
        pipeline "cleanup":
          raw = load(source="values")
          c   = clean_text(input=raw, impl="custom")
          d   = dedupe(input=c, impl="custom")
          save(input=d, key="out")
        '''
        pipeline = system.parse(dsl)
        report = system.run(pipeline, {"values": ["A", " a", "b"]})
        assert report.outputs["save_1"] == ["a", "b"]


class TestConnectorFlow:
    def test_nl_question_answered_without_data_upload(self, system):
        system.register_table(
            Table.from_records(
                "sales",
                [{"region": "east", "amount": 10.0}, {"region": "west", "amount": 30.0}],
            )
        )
        connector = system.connector()
        answer = connector.ask("How many sales have amount over 20?")
        assert answer.result.records()[0]["n"] == 1
        # Only the schema and one result row ever reached the prompt side.
        assert connector.report.values_uploaded <= 2


class TestUsageAccounting:
    def test_system_usage_reflects_runs(self, system):
        pipeline = get_template("entity_resolution").instantiate()
        system.run(
            pipeline,
            {"pairs": [{"left": {"name": "a"}, "right": {"name": "a"}}]},
        )
        assert system.usage().served_calls >= 1
        system.reset_usage()
        assert system.usage().total_calls == 0


class TestUiIntegration:
    def test_full_screen_after_run(self, system):
        pipeline = get_template("entity_resolution").instantiate()
        plan = system.compile(pipeline)
        report = plan.execute(
            {"pairs": [{"left": {"name": "x"}, "right": {"name": "y"}}]}
        )
        screen = render_screen(plan, report)
        assert "entity_resolution_template" in screen
        assert "LLM usage" in screen


class TestFreshSystemsAreIndependent:
    def test_no_shared_state_between_instances(self):
        a = LinguaManga()
        b = LinguaManga()
        a.service.complete("summarize something")
        assert b.usage().total_calls == 0
