"""Golden end-to-end regressions for the three demo applications.

Every value here was observed on the seed datasets with the simulated
provider and is pinned **exactly**: the provider, the prompt builders, the
dataset generators and the execution engine are all deterministic, so any
drift in these numbers is a behaviour change that must be deliberate.
The parallel variants additionally pin that the scheduler reproduces the
sequential task metrics bit for bit.
"""

from __future__ import annotations

import pytest

from repro.core.runtime.system import LinguaManga
from repro.datasets.entity_resolution import generate_er_dataset
from repro.datasets.imputation import generate_buy_dataset
from repro.datasets.names import generate_name_dataset
from repro.tasks.entity_resolution import run_lingua_manga_er
from repro.tasks.imputation import run_hybrid_imputation, run_llm_imputation
from repro.tasks.name_extraction import run_name_extraction


@pytest.fixture(scope="module")
def er_dataset():
    return generate_er_dataset("beer", seed=7)


@pytest.fixture(scope="module")
def name_documents():
    return generate_name_dataset(seed=3, n_documents=80).documents


@pytest.fixture(scope="module")
def buy_dataset():
    return generate_buy_dataset(seed=11, n_train=60, n_test=120)


class TestEntityResolutionGolden:
    F1 = 0.9090909090909091
    CALLS = 175
    COST = 0.08776000000000005

    def test_sequential(self, er_dataset):
        result = run_lingua_manga_er(LinguaManga(), er_dataset)
        assert result.f1 == self.F1
        assert result.llm_calls == self.CALLS
        assert result.cost == pytest.approx(self.COST, abs=1e-12)

    def test_parallel_matches_golden(self, er_dataset):
        result = run_lingua_manga_er(LinguaManga(), er_dataset, workers=8)
        assert result.f1 == self.F1
        assert result.llm_calls == self.CALLS
        assert result.cost == pytest.approx(self.COST, abs=1e-12)


class TestNameExtractionGolden:
    PRECISION = 0.864406779661017
    RECALL = 0.9272727272727272
    F1 = 0.8947368421052632
    CALLS = 189
    COST = 0.015868999999999963

    def test_sequential(self, name_documents):
        result = run_name_extraction(LinguaManga(), name_documents)
        assert result.precision == self.PRECISION
        assert result.recall == self.RECALL
        assert result.f1 == self.F1
        assert result.llm_calls == self.CALLS
        assert result.cost == pytest.approx(self.COST, abs=1e-12)

    def test_parallel_matches_golden(self, name_documents):
        result = run_name_extraction(LinguaManga(), name_documents, workers=4)
        assert result.f1 == self.F1
        assert result.llm_calls == self.CALLS
        assert result.cost == pytest.approx(self.COST, abs=1e-12)

    def test_multilingual_beats_monolingual(self, name_documents):
        multilingual = run_name_extraction(LinguaManga(), name_documents)
        monolingual = run_name_extraction(
            LinguaManga(), name_documents, multilingual=False
        )
        assert multilingual.f1 > monolingual.f1


class TestImputationGolden:
    PURE_ACCURACY = 0.9416666666666667
    PURE_CALLS = 120
    PURE_COST = 0.014065000000000003
    HYBRID_ACCURACY = 0.9583333333333334
    HYBRID_CALLS = 25
    HYBRID_COST = 0.0038775000000000007

    def test_pure_llm(self, buy_dataset):
        result = run_llm_imputation(LinguaManga(), buy_dataset.test)
        assert result.accuracy == self.PURE_ACCURACY
        assert result.llm_calls == self.PURE_CALLS
        assert result.cost == pytest.approx(self.PURE_COST, abs=1e-12)

    def test_pure_llm_parallel_matches_golden(self, buy_dataset):
        result = run_llm_imputation(LinguaManga(), buy_dataset.test, workers=8)
        assert result.accuracy == self.PURE_ACCURACY
        assert result.llm_calls == self.PURE_CALLS
        assert result.cost == pytest.approx(self.PURE_COST, abs=1e-12)

    def test_hybrid(self, buy_dataset):
        result = run_hybrid_imputation(LinguaManga(), buy_dataset.test)
        assert result.accuracy == self.HYBRID_ACCURACY
        assert result.llm_calls == self.HYBRID_CALLS
        assert result.cost == pytest.approx(self.HYBRID_COST, abs=1e-12)

    def test_hybrid_is_cheaper_and_no_worse(self, buy_dataset):
        # The paper's headline: the optimized hybrid uses a fraction of
        # the LLM calls while matching or beating pure-LLM accuracy.
        pure = run_llm_imputation(LinguaManga(), buy_dataset.test)
        hybrid = run_hybrid_imputation(LinguaManga(), buy_dataset.test)
        assert hybrid.llm_calls < pure.llm_calls / 3
        assert hybrid.accuracy >= pure.accuracy
