"""Golden end-to-end regressions for the three demo applications.

Every value here was observed on the seed datasets with the simulated
provider and is pinned **exactly**: the provider, the prompt builders, the
dataset generators and the execution engine are all deterministic, so any
drift in these numbers is a behaviour change that must be deliberate.
The parallel variants additionally pin that the scheduler reproduces the
sequential task metrics bit for bit.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.core.runtime.system import LinguaManga
from repro.datasets.entity_resolution import generate_er_dataset
from repro.datasets.imputation import generate_buy_dataset
from repro.datasets.names import generate_name_dataset
from repro.obs import Observability, provenance_counts, span_tree_problems
from repro.tasks.entity_resolution import run_lingua_manga_er
from repro.tasks.imputation import run_hybrid_imputation, run_llm_imputation
from repro.tasks.name_extraction import run_name_extraction


@pytest.fixture(scope="module")
def er_dataset():
    return generate_er_dataset("beer", seed=7)


@pytest.fixture(scope="module")
def name_documents():
    return generate_name_dataset(seed=3, n_documents=80).documents


@pytest.fixture(scope="module")
def buy_dataset():
    return generate_buy_dataset(seed=11, n_train=60, n_test=120)


class TestEntityResolutionGolden:
    F1 = 0.9090909090909091
    CALLS = 175
    COST = 0.08776000000000005

    def test_sequential(self, er_dataset):
        result = run_lingua_manga_er(LinguaManga(), er_dataset)
        assert result.f1 == self.F1
        assert result.llm_calls == self.CALLS
        assert result.cost == pytest.approx(self.COST, abs=1e-12)

    def test_parallel_matches_golden(self, er_dataset):
        result = run_lingua_manga_er(LinguaManga(), er_dataset, workers=8)
        assert result.f1 == self.F1
        assert result.llm_calls == self.CALLS
        assert result.cost == pytest.approx(self.COST, abs=1e-12)


class TestNameExtractionGolden:
    PRECISION = 0.864406779661017
    RECALL = 0.9272727272727272
    F1 = 0.8947368421052632
    CALLS = 189
    COST = 0.015868999999999963

    def test_sequential(self, name_documents):
        result = run_name_extraction(LinguaManga(), name_documents)
        assert result.precision == self.PRECISION
        assert result.recall == self.RECALL
        assert result.f1 == self.F1
        assert result.llm_calls == self.CALLS
        assert result.cost == pytest.approx(self.COST, abs=1e-12)

    def test_parallel_matches_golden(self, name_documents):
        result = run_name_extraction(LinguaManga(), name_documents, workers=4)
        assert result.f1 == self.F1
        assert result.llm_calls == self.CALLS
        assert result.cost == pytest.approx(self.COST, abs=1e-12)

    def test_multilingual_beats_monolingual(self, name_documents):
        multilingual = run_name_extraction(LinguaManga(), name_documents)
        monolingual = run_name_extraction(
            LinguaManga(), name_documents, multilingual=False
        )
        assert multilingual.f1 > monolingual.f1


class TestImputationGolden:
    PURE_ACCURACY = 0.9416666666666667
    PURE_CALLS = 120
    PURE_COST = 0.014065000000000003
    HYBRID_ACCURACY = 0.9583333333333334
    HYBRID_CALLS = 25
    HYBRID_COST = 0.0038775000000000007

    def test_pure_llm(self, buy_dataset):
        result = run_llm_imputation(LinguaManga(), buy_dataset.test)
        assert result.accuracy == self.PURE_ACCURACY
        assert result.llm_calls == self.PURE_CALLS
        assert result.cost == pytest.approx(self.PURE_COST, abs=1e-12)

    def test_pure_llm_parallel_matches_golden(self, buy_dataset):
        result = run_llm_imputation(LinguaManga(), buy_dataset.test, workers=8)
        assert result.accuracy == self.PURE_ACCURACY
        assert result.llm_calls == self.PURE_CALLS
        assert result.cost == pytest.approx(self.PURE_COST, abs=1e-12)

    def test_hybrid(self, buy_dataset):
        result = run_hybrid_imputation(LinguaManga(), buy_dataset.test)
        assert result.accuracy == self.HYBRID_ACCURACY
        assert result.llm_calls == self.HYBRID_CALLS
        assert result.cost == pytest.approx(self.HYBRID_COST, abs=1e-12)

    def test_hybrid_is_cheaper_and_no_worse(self, buy_dataset):
        # The paper's headline: the optimized hybrid uses a fraction of
        # the LLM calls while matching or beating pure-LLM accuracy.
        pure = run_llm_imputation(LinguaManga(), buy_dataset.test)
        hybrid = run_hybrid_imputation(LinguaManga(), buy_dataset.test)
        assert hybrid.llm_calls < pure.llm_calls / 3
        assert hybrid.accuracy >= pure.accuracy


# -- golden traces (ISSUE 4 satellite 1) -----------------------------------------
#
# Each demo app is traced cold (fresh cache) and warm (second run over the
# same journal) at workers 1, 2 and 8.  The exported span records must be
# byte-identical across worker counts, match the JSONL fixtures under
# golden_traces/ byte for byte (cost fields normalized at export — rounded
# to declared precision), and the attached run profile must reconcile
# exactly with the run's CostSnapshot.
#
# Regenerate fixtures after a *deliberate* behaviour change with:
#     REGEN_GOLDEN_TRACES=1 PYTHONPATH=src python -m pytest \
#         tests/integration/test_golden_regression.py -q

GOLDEN_TRACE_DIR = Path(__file__).parent / "golden_traces"
TRACE_WORKER_COUNTS = (1, 2, 8)
_REGEN = os.environ.get("REGEN_GOLDEN_TRACES") == "1"


def _records_text(records: list[dict]) -> str:
    return "".join(
        json.dumps(record, sort_keys=True, ensure_ascii=False) + "\n"
        for record in records
    )


def _assert_matches_fixture(fixture_name: str, records: list[dict]) -> None:
    GOLDEN_TRACE_DIR.mkdir(exist_ok=True)
    path = GOLDEN_TRACE_DIR / fixture_name
    text = _records_text(records)
    if _REGEN or not path.exists():
        path.write_text(text, encoding="utf-8")
    assert path.read_text(encoding="utf-8") == text, (
        f"trace drifted from fixture {fixture_name}; if the change is "
        f"deliberate, regenerate with REGEN_GOLDEN_TRACES=1"
    )


class _GoldenTraceSuite:
    """Shared machinery: subclasses define ``app`` and the fixture stem."""

    stem: str

    def run_app(self, system: LinguaManga, data, workers: int):
        raise NotImplementedError

    def traced(self, data, workers: int, journal=None):
        obs = Observability()
        system = LinguaManga(obs=obs, cache_path=journal)
        result = self.run_app(system, data, workers)
        return obs, result

    @pytest.fixture(scope="class")
    def traces(self, request, tmp_path_factory):
        data = request.getfixturevalue(self.data_fixture)
        journal = str(tmp_path_factory.mktemp(self.stem) / "cache.jsonl")
        cold = {}
        for workers in TRACE_WORKER_COUNTS:
            # Each cold run gets a fresh journal so every worker count pays
            # the provider; the shared journal is primed once for warm runs.
            solo = str(tmp_path_factory.mktemp(f"{self.stem}{workers}") / "c.jsonl")
            cold[workers] = self.traced(data, workers, journal=solo)
        self.traced(data, TRACE_WORKER_COUNTS[0], journal=journal)  # prime
        warm = {
            workers: self.traced(data, workers, journal=journal)
            for workers in TRACE_WORKER_COUNTS
        }
        return {"cold": cold, "warm": warm}

    @pytest.mark.parametrize("phase", ["cold", "warm"])
    def test_trace_identical_across_worker_counts(self, traces, phase):
        records = [
            traces[phase][workers][0].tracer.to_records()
            for workers in TRACE_WORKER_COUNTS
        ]
        assert records[0] == records[1] == records[2]

    @pytest.mark.parametrize("phase", ["cold", "warm"])
    def test_trace_matches_fixture(self, traces, phase):
        obs, _ = traces[phase][1]
        _assert_matches_fixture(
            f"{self.stem}_{phase}.jsonl", obs.tracer.to_records()
        )

    @pytest.mark.parametrize("phase", ["cold", "warm"])
    def test_trace_well_formed(self, traces, phase):
        obs, _ = traces[phase][1]
        problems = []
        for root in obs.tracer.roots:
            problems.extend(span_tree_problems(root))
        assert problems == []

    def test_warm_serves_everything_from_cache(self, traces):
        cold_counts = provenance_counts(traces["cold"][1][0].tracer.roots)
        warm_counts = provenance_counts(traces["warm"][1][0].tracer.roots)
        assert cold_counts.get("provider", 0) > 0
        assert "provider" not in warm_counts
        # Warm runs may issue *fewer* calls than cold ones (audit passes that
        # re-ask a just-answered prompt are skipped once the journal answers),
        # but every warm call must come from a cache tier.
        assert 0 < sum(warm_counts.values()) <= sum(cold_counts.values())

    @pytest.mark.parametrize("phase", ["cold", "warm"])
    def test_profile_reconciles_with_cost_snapshot(self, traces, phase):
        _, result = traces[phase][1]
        report = result.report
        assert report.profile is not None
        assert report.profile.reconciles_with(report.cost)


class TestGoldenTracesEntityResolution(_GoldenTraceSuite):
    stem = "er"
    data_fixture = "er_dataset"

    def run_app(self, system, data, workers):
        return run_lingua_manga_er(system, data, workers=workers)


class TestGoldenTracesNameExtraction(_GoldenTraceSuite):
    stem = "names"
    data_fixture = "name_documents"

    def run_app(self, system, data, workers):
        return run_name_extraction(system, data, workers=workers)


class TestGoldenTracesImputation(_GoldenTraceSuite):
    stem = "imputation"
    data_fixture = "buy_dataset"

    def run_app(self, system, data, workers):
        return run_llm_imputation(system, data.test, workers=workers)
