"""A tour of the Lingua Manga textual DSL.

Pipelines can be written as text (the paper's DSL), parsed, compiled and
run like any builder-made pipeline.  This example cleans a messy value
list end to end and shows the compiled physical plan and the Figure 5 UI.

Run with:  python examples/dsl_tour.py
"""

from repro import LinguaManga
from repro.ui import render_screen

DSL = '''
pipeline "clean_product_names":
  raw     = load(source="values")                 # messy strings in
  cleaned = clean_text(input=raw, impl="custom")  # normalise each value
  unique  = dedupe(input=cleaned, impl="custom")  # drop exact duplicates
  save(input=unique, key="result")
'''


def main() -> None:
    system = LinguaManga()
    pipeline = system.parse(DSL)
    print(pipeline.to_text(), "\n")

    plan = system.compile(pipeline)
    print(plan.to_text(), "\n")

    values = [
        "Sony  Walkman NW-1",
        "sony walkman  NW-1",
        "XBOX Controller",
        "Xbox controller",
        "Canon PowerShot A40 ",
    ]
    report = plan.execute({"values": values})
    print("input :", values)
    print("output:", next(iter(report.outputs.values())))

    # The Figure 5 screen: canvas + run log + usage footer.
    print("\n" + render_screen(plan, report))


if __name__ == "__main__":
    main()
