"""The curation service end to end: submit jobs over HTTP, get reports.

Starts the multi-tenant job server (the same thing ``python -m
repro.serve`` runs) on an ephemeral port, then drives it exactly like an
external client would — JSON over plain HTTP:

1. ``acme`` submits a cold entity-resolution job and reads back the
   result with tracer-derived progress events;
2. ``acme`` resubmits the identical job: the tenant's cache journal
   answers it at zero provider cost, and the quality metrics match the
   cold run;
3. ``globex`` submits the same job cold: its own cache is empty, but the
   cross-tenant coalesce hub re-serves the settled answers, so the
   provider is never paid twice for a prompt — while the provenance
   audit confirms no tenant ever hit another tenant's cache.

Run with:  python examples/serve_demo.py
"""

import http.client
import json
import tempfile

from repro.llm.providers import SimulatedProvider
from repro.serve import JobQueue, JobServer


def call(server: JobServer, method: str, path: str, payload=None):
    """One JSON request against the demo server."""
    connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        body = json.dumps(payload) if payload is not None else None
        connection.request(method, path, body=body)
        response = connection.getresponse()
        return response.status, json.loads(response.read() or b"{}")
    finally:
        connection.close()


def run_job(server: JobServer, queue: JobQueue, tenant: str) -> dict:
    """Submit one ER job for ``tenant`` and wait for its terminal record."""
    status, accepted = call(
        server,
        "POST",
        "/jobs",
        {
            "tenant": tenant,
            "task": "er",
            "dataset": {"name": "beer", "seed": 7},
            "options": {"workers": 2},
        },
    )
    assert status == 202, (status, accepted)
    queue.store.wait_for(accepted["job_id"])  # bounded wait, no polling
    status, job = call(server, "GET", f"/jobs/{accepted['job_id']}")
    assert status == 200 and job["status"] == "succeeded", job
    return job


def describe(label: str, job: dict) -> None:
    result = job["result"]
    print(
        f"{label}: {job['job_id']} f1={result['f1']:.3f} "
        f"provider_calls={result['llm_calls']} cost=${result['cost']:.5f} "
        f"cached={result['cached_calls']} ({len(job['progress'])} progress events)"
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as data_dir:
        provider = SimulatedProvider()
        queue = JobQueue(data_dir, provider=provider, max_workers=2)
        with JobServer(queue) as server:
            print(f"serving on {server.address}")

            cold = run_job(server, queue, "acme")
            describe("acme cold", cold)

            warm = run_job(server, queue, "acme")
            describe("acme warm", warm)
            assert warm["result"]["llm_calls"] == 0, "warm run paid the provider"
            assert warm["result"]["f1"] == cold["result"]["f1"]

            paid_so_far = provider.calls_served
            shared = run_job(server, queue, "globex")
            describe("globex    ", shared)
            assert shared["result"]["f1"] == cold["result"]["f1"]
            # globex's report *records* its calls (determinism demands it),
            # but the hub answered them from acme's settled results — the
            # real provider was never paid again.
            assert provider.calls_served == paid_so_far, "hub failed to share"

            _, health = call(server, "GET", "/healthz")
            stats = health["stats"]
            print(
                f"hub shared {stats['hub']['shared_calls']} calls across tenants; "
                f"audit violations: {stats['audit_violations']}"
            )
            assert stats["hub"]["shared_calls"] > 0
            assert stats["audit_violations"] == 0
            print("warm run paid nothing; tenants isolated; hub de-duplicated.")
        queue.close()


if __name__ == "__main__":
    main()
