"""Section 4.1 — Entity Resolution: Effortless to the Novices.

A technical novice wants entity resolution without writing code.  They
search the templates, describe the task in natural language, hand over a
few labelled examples, and let the system do the rest.

Run with:  python examples/entity_resolution_novice.py
"""

from repro import LinguaManga
from repro.core import explain_pipeline
from repro.datasets import generate_er_dataset
from repro.tasks import run_lingua_manga_er


def main() -> None:
    system = LinguaManga()

    # The novice describes the need in plain English.
    need = "I have two lists of beers and want to find which are the same"
    hits = system.search_templates(need)
    print(f"query: {need!r}")
    for template, score in hits:
        print(f"  candidate: {template.name} (score {score:.1f})")
    template = hits[0][0]

    # No code, no model training — just a handful of labelled examples.
    dataset = generate_er_dataset("beer")
    pipeline = template.instantiate()
    print("\n" + explain_pipeline(pipeline))

    result = run_lingua_manga_er(system, dataset, n_examples=4)
    print(
        f"\nF1 on the {dataset.name} benchmark: {100 * result.f1:.2f} "
        f"(paper reports 89.66 for Lingua Manga)"
    )
    print(f"LLM calls: {result.llm_calls}, cost: ${result.cost:.4f}")
    print(
        "compare: Ditto needs ~700 labelled pairs of training data; "
        f"this run used 4 examples."
    )


if __name__ == "__main__":
    main()
