"""The optimizer's connector: answer table questions without uploading data.

The LLM sees only the schema; it writes SQL, the connector validates the
statement against a SELECT-only policy and executes it locally, and only
(capped) result rows ever leave the database.  Exposure accounting shows
how little of the table the LLM touched.

Run with:  python examples/connector_privacy.py
"""

from repro import LinguaManga
from repro.core.optimizer.connector import ConnectorPolicyError
from repro.storage import Table


def main() -> None:
    system = LinguaManga()
    table = Table.from_records(
        "products",
        [
            {"id": 1, "name": "Walkman NW-1", "price": 89.0, "stock": 12},
            {"id": 2, "name": "Xbox Controller", "price": 49.0, "stock": 120},
            {"id": 3, "name": "PowerShot A40", "price": 199.0, "stock": 4},
            {"id": 4, "name": "ThinkPad Dock", "price": 129.0, "stock": 33},
            {"id": 5, "name": "Zen Micro", "price": 159.0, "stock": 0},
        ],
    )
    system.register_table(table)
    connector = system.connector(max_result_rows=5)

    for question in (
        "How many products have price over 100?",
        "What is the average of price?",
        "Which product has the highest price?",
    ):
        answer = connector.ask(question)
        print(f"Q: {question}")
        print(f"   SQL: {answer.sql}")
        print("   " + answer.result.to_text().replace("\n", "\n   "))
        print(f"   values exposed to the LLM: {answer.values_exposed}\n")

    # The policy blocks anything but SELECT.
    try:
        connector.run_user_sql("DELETE FROM products")
    except ConnectorPolicyError as error:
        print(f"policy blocked: {error}")

    print("\nexposure report:", connector.report.to_text())
    total_values = len(table) * len(table.schema)
    print(f"table holds {total_values} values; full upload would expose all of them.")


if __name__ == "__main__":
    main()
