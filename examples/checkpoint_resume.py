"""Crash-safe checkpoint/resume: kill a run mid-flight, pay only the rest.

A long curation run against a paid LLM must survive process death without
re-paying for finished work.  ``checkpoint_path=`` keeps a write-ahead
journal beside the cache journal; re-running the same call after a crash
replays everything the journal holds at zero provider cost and executes
only the unjournalled suffix — and the resumed report is byte-identical
to the report of an uninterrupted run.

This demo stages the crash with :class:`~repro.llm.faults.CrashPoint`,
the same harness the crash-matrix tests use: it raises at a named journal
boundary, unwinding the run exactly as a real ``kill -9`` would.

Run with:  python examples/checkpoint_resume.py
"""

import tempfile
from pathlib import Path

from repro import LinguaManga
from repro.core.runtime.checkpoint import RunCheckpoint
from repro.core.templates.library import get_template
from repro.datasets.entity_resolution import generate_er_dataset
from repro.llm.faults import CrashInjected, CrashPoint
from repro.llm.providers import SimulatedProvider
from repro.llm.service import LLMService
from repro.tasks.entity_resolution import pairs_as_inputs, pick_examples


def run_er(dataset, wal: Path, crash: CrashPoint | None = None):
    """One checkpointed ER run on a fresh system; returns (report, calls)."""
    provider = SimulatedProvider()
    system = LinguaManga(service=LLMService(provider))
    pipeline = get_template("entity_resolution").instantiate(
        examples=pick_examples(dataset.train, 4)
    )
    report = system.run(
        pipeline,
        {"pairs": pairs_as_inputs(dataset.test)},
        workers=1,
        chunk_size=8,
        checkpoint=RunCheckpoint(wal, crash=crash),
    )
    return report, provider.calls_served


def main() -> None:
    dataset = generate_er_dataset("beer", seed=7, n_entities=300)

    with tempfile.TemporaryDirectory() as scratch:
        # An uninterrupted run, for comparison.
        baseline, full_calls = run_er(dataset, Path(scratch) / "baseline.wal")
        print(f"uninterrupted run: {full_calls} provider calls")

        # Now the same run, killed after the 4th chunk hits the journal.
        wal = Path(scratch) / "run.wal"
        try:
            run_er(dataset, wal, crash=CrashPoint("chunk:journaled", hits=4))
        except CrashInjected as death:
            print(f"crashed: {death}")

        # Re-run the same call: the journalled prefix replays for free.
        resumed, resume_calls = run_er(dataset, wal)
        print(f"resumed run: {resume_calls} provider calls "
              f"(saved {full_calls - resume_calls} of {full_calls})")

        # The resume is invisible in the results.
        identical = resumed.canonical_json() == baseline.canonical_json()
        print(f"resumed report byte-identical to uninterrupted run: {identical}")
        assert identical and resume_calls < full_calls


if __name__ == "__main__":
    main()
