"""Profiling, anomaly detection, and SQL over your own LLM spend.

Two of the "extra tasks" the paper's introduction says real curation
processes involve — anomaly detection and data summarization — plus a
bonus: the LLM service's call ledger is itself a table you can query.

Run with:  python examples/profiling_anomalies.py
"""

from repro import LinguaManga
from repro._util import seeded_rng
from repro.storage import Table
from repro.tasks import detect_anomalies, profile_table, summarize_table


def main() -> None:
    system = LinguaManga()
    rng = seeded_rng("profiling-demo")

    # A sensor feed with a stuck reading, a spike, and a typo'd status.
    rows = [
        {"sensor": f"s{i % 4}", "reading": round(20 + rng.gauss(0, 1.5), 2),
         "status": "nominal"}
        for i in range(60)
    ]
    rows[17]["reading"] = 412.0          # spike
    rows[31]["status"] = "nominnal"      # typo'd category
    table = Table.from_records("sensor_feed", rows)
    system.register_table(table)

    print(profile_table(table).to_text())

    print("\nanomalies:")
    for anomaly in detect_anomalies(table):
        print(" ", anomaly.describe())

    print("\nsummary:", summarize_table(table, system.service))

    # The LLM ledger is a table too — query your spend with SQL.
    system.database.register(system.service.ledger_table())
    report = system.database.query(
        "SELECT purpose, COUNT(*) AS calls, SUM(cost) AS cost "
        "FROM llm_ledger GROUP BY purpose"
    )
    print("\nLLM spend by purpose:")
    print(report.to_text())


if __name__ == "__main__":
    main()
