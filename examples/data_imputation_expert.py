"""Section 4.3 — Data Imputation: Excellency with the Experts.

An expert programmer optimizes manufacturer imputation on a Buy-like
dataset.  Comprehensive guidelines turn the LLMGC module into a hybrid:
cheap string rules resolve products that mention their brand; only the
hard, world-knowledge cases escalate to the LLM — achieving comparable
accuracy to a pure LLM module with roughly 1/6 of the LLM calls.

Run with:  python examples/data_imputation_expert.py
"""

from repro import LinguaManga
from repro.core.optimizer.cost import CostComparison, CostSnapshot
from repro.datasets import generate_buy_dataset
from repro.tasks import run_hybrid_imputation, run_llm_imputation


def main() -> None:
    buy = generate_buy_dataset(n_test=300)
    print(buy.summary(), "\n")

    system = LinguaManga()

    pure = run_llm_imputation(system, buy.test)
    print(
        f"pure LLM module:   accuracy={100 * pure.accuracy:.2f}%  "
        f"llm_calls={pure.llm_calls}  cost=${pure.cost:.4f}"
    )

    hybrid = run_hybrid_imputation(system, buy.test)
    print(
        f"optimized hybrid:  accuracy={100 * hybrid.accuracy:.2f}%  "
        f"llm_calls={hybrid.llm_calls}  cost=${hybrid.cost:.4f}"
    )

    comparison = CostComparison(
        baseline_name="pure_llm",
        baseline=CostSnapshot(pure.llm_calls, 0, pure.cost, 0.0),
        optimized_name="hybrid",
        optimized=CostSnapshot(hybrid.llm_calls, 0, hybrid.cost, 0.0),
    )
    print("\n" + comparison.to_text())
    print(
        "\npaper: optimized version uses 1/6 the LLM calls of the pure LLM "
        "module (94.48% vs 93.92% accuracy)"
    )


if __name__ == "__main__":
    main()
