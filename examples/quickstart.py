"""Quickstart: build, compile and run a Lingua Manga pipeline in a minute.

Run with:  python examples/quickstart.py
"""

from repro import LinguaManga
from repro.core import explain_pipeline


def main() -> None:
    system = LinguaManga()

    # 1. Search for a template by describing your problem in plain language.
    hits = system.search_templates("find duplicate records that are the same entity")
    template = hits[0][0]
    print(f"best template: {template.name} — {template.description}\n")

    # 2. Instantiate it (optionally with a few labelled examples).
    pipeline = template.instantiate()
    print(explain_pipeline(pipeline), "\n")

    # 3. Run it on your data.
    pairs = [
        {
            "left": {"name": "Stone IPA", "brewery": "Stone Brewing Co."},
            "right": {"name": "Stone India Pale Ale", "brewery": "Stone Brewery"},
        },
        {
            "left": {"name": "Old Monk Porter", "brewery": "Bells Brewery"},
            "right": {"name": "Lucky Otter Pilsner", "brewery": "Avery Brewing Co."},
        },
    ]
    report = system.run(pipeline, {"pairs": pairs})
    verdicts = next(iter(report.outputs.values()))
    for pair, verdict in zip(pairs, verdicts):
        left, right = pair["left"]["name"], pair["right"]["name"]
        print(f"{left!r} vs {right!r} -> {'MATCH' if verdict else 'different'}")

    # 4. Check what the run cost.
    print("\n" + system.usage().to_text())


if __name__ == "__main__":
    main()
