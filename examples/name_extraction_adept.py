"""Section 4.2 — Name Extraction: Flexible for the Adepts.

A low-code domain expert builds the Figure 3 pipeline (tokenize ->
noun-phrase extraction [LLMGC] -> tagging [LLM + validator]), discovers the
multilingual degradation, fixes it with a language-detection module, and
then attaches the optimizer's simulator to slash LLM costs.

Run with:  python examples/name_extraction_adept.py
"""

from repro import LinguaManga
from repro.datasets import generate_name_dataset
from repro.tasks import run_name_extraction


def main() -> None:
    documents = generate_name_dataset(n_documents=120).documents
    print(f"corpus: {len(documents)} multilingual sentences\n")

    # First attempt: the monolingual pipeline. Accuracy craters on the
    # non-English portion of the corpus.
    system = LinguaManga()
    mono = run_name_extraction(system, documents, multilingual=False)
    print(f"monolingual pipeline:   F1={100 * mono.f1:.1f}  calls={mono.llm_calls}")
    for language, f1 in sorted(mono.per_language_f1.items()):
        print(f"    {language}: F1={100 * f1:.1f}")

    # The fix: insert an LLM language-detection module so the tagger gets a
    # language hint (and the LLMGC chunker its multilingual tools).
    multi = run_name_extraction(system, documents, multilingual=True)
    print(f"\n+ language detection:   F1={100 * multi.f1:.1f}  calls={multi.llm_calls}")
    for language, f1 in sorted(multi.per_language_f1.items()):
        print(f"    {language}: F1={100 * f1:.1f}")

    # Cost optimization: the simulator shadows the LLM tagger and takes
    # over once its student model is confident.
    simulated = run_name_extraction(
        system, documents, multilingual=True, simulate_tagging=True
    )
    print(
        f"\n+ simulator:            F1={100 * simulated.f1:.1f}  "
        f"calls={simulated.llm_calls} "
        f"({100 * (1 - simulated.llm_calls / max(multi.llm_calls, 1)):.0f}% fewer LLM calls)"
    )


if __name__ == "__main__":
    main()
