"""End-to-end curation over raw tables: discovery -> blocking -> matching.

The paper's Table 1 datasets arrive pre-paired; a real deployment starts
from raw tables.  This example runs the full realistic flow:

1. *data discovery* — find the two beer tables in a lake of tables by
   describing them in natural language;
2. *blocking* — generate candidate pairs cheaply with TF-IDF token blocking;
3. *matching* — judge only the candidates with the LLM matcher.

Run with:  python examples/raw_tables_pipeline.py
"""

from repro import LinguaManga
from repro._util import seeded_rng
from repro.datasets.entity_resolution import _beer_corrupt, _beer_entities
from repro.storage import Table
from repro.tasks import block_records, search_tables
from repro.core.compiler.registry import make_pair_matcher


def main() -> None:
    system = LinguaManga()

    # A small "data lake": several unrelated tables plus two beer catalogues
    # crawled from different sources.
    rng = seeded_rng("raw-tables-demo")
    entities = _beer_entities(rng, 80)
    source_a = [_beer_corrupt(e, rng, 0.5) for e in entities]
    source_b = [_beer_corrupt(e, rng, 1.0) for e in entities]
    system.register_table(Table.from_records("beeradvocate", source_a))
    system.register_table(Table.from_records("ratebeer", source_b))
    system.register_table(
        Table.from_records("employees", [{"first_name": "Ana", "department": "sales"}])
    )
    system.register_table(
        Table.from_records("invoices", [{"invoice_id": 7, "total": 129.5}])
    )

    # 1. Discovery: which tables hold beers and breweries?
    hits = search_tables(system.database, "beer names breweries abv styles")
    print("discovery results:")
    for hit in hits:
        print(f"  {hit.table}: score {hit.score:.3f} via {hit.matched_terms[:4]}")
    left_table, right_table = hits[0].table, hits[1].table

    # 2. Blocking: candidate pairs instead of the full cross product.
    left = system.database.table(left_table).records()
    right = system.database.table(right_table).records()
    blocked = block_records(left, right, key="beer_name", max_candidates_per_record=3)
    print(f"\nblocking: {blocked.summary()} "
          f"(cross product would be {len(left) * len(right)})")

    # 3. Matching: only the candidates go to the LLM.  Two worked examples
    # (the paper's label efficiency: a handful, not thousands) sharpen the
    # prompt considerably.
    examples = [
        (
            (
                {"beer_name": "Old Anvil IPA", "brewery": "Summit Brewing Co."},
                {"beer_name": "Old Anvil India Pale Ale", "brewery": "Summit Brewery"},
            ),
            True,
        ),
        (
            (
                {"beer_name": "Old Anvil IPA", "brewery": "Summit Brewing Co."},
                {"beer_name": "Old Raven IPA", "brewery": "Summit Brewing Co."},
            ),
            False,
        ),
    ]
    matcher = make_pair_matcher(
        "matcher", system.context, examples=examples, purpose="raw-tables-match"
    )
    matches = [
        (i, j)
        for i, j in blocked.pairs
        if matcher.run((left[i], right[j]))
    ]
    truth = {(i, i) for i in range(len(entities))}
    found = set(matches)
    recall = len(found & truth) / len(truth)
    precision = len(found & truth) / len(found) if found else 0.0
    print(f"matching: {len(matches)} matched pairs, "
          f"precision {precision:.2%}, recall {recall:.2%}")
    print("\n" + system.usage().to_text())
    print(
        f"LLM judged {len(blocked.pairs)} candidates instead of "
        f"{len(left) * len(right)} pairs — blocking saved "
        f"{1 - len(blocked.pairs) / (len(left) * len(right)):.1%} of the calls."
    )


if __name__ == "__main__":
    main()
