"""Memory-bounded streaming: curate a corpus too large to materialize.

``run_stream()`` executes a linear pipeline as a pipelined stream of
fixed-size shards pulled from a durable work queue: the input generator
is never materialized, in-flight shards spill to disk, verdicts leave
through a sink as each shard folds, and peak residency stays
O(chunk_size x window) no matter how many records flow through.

The demo also stages the failures the queue is built to absorb:

- a worker killed mid-shard (``WorkerKillPoint``) — its lease is
  released, the shard re-claimed, and the report does not notice;
- a whole-process crash (``CrashPoint``) — re-running with the same
  ledger path replays journalled shards at zero provider cost, and the
  resumed report is byte-identical to an uninterrupted run.

Run with:  python examples/streaming_large_run.py
"""

import tempfile
from pathlib import Path

from repro import LinguaManga
from repro.core.templates.library import get_template
from repro.datasets import StreamingERCorpus
from repro.llm.faults import CrashInjected, CrashPoint, WorkerKillPoint
from repro.llm.providers import SimulatedProvider
from repro.llm.service import LLMService

N_PAIRS = 2_000  # crank to 1_000_000: memory stays flat, only time grows
CHUNK = 100


def run_stream(corpus, sink=None, ledger: Path | None = None, **faults):
    """One streaming ER run on a fresh system; returns (report, calls)."""
    provider = SimulatedProvider()
    system = LinguaManga(service=LLMService(provider))
    pipeline = get_template("entity_resolution").instantiate(
        examples=corpus.examples()
    )
    report = system.run_stream(
        pipeline,
        {"pairs": corpus.inputs()},  # a generator — never list()-ed
        workers=4,
        chunk_size=CHUNK,
        window=8,
        ledger_path=ledger,
        source_id=corpus.fingerprint,
        sink=sink,
        **faults,
    )
    return report, provider.calls_served


def main() -> None:
    corpus = StreamingERCorpus(N_PAIRS, seed=7)

    # 1. Stream verdicts out through a sink: nothing accumulates in RAM.
    matches = 0

    def count_matches(verdicts) -> None:
        nonlocal matches
        matches += sum(1 for verdict in verdicts if verdict)

    baseline, full_calls = run_stream(corpus, sink=count_matches)
    summary = next(iter(baseline.outputs.values()))
    print(f"streamed {summary['records']} pairs in {baseline.recovery['shards']} "
          f"shards: {matches} matches, {full_calls} provider calls")
    print(f"spill high-watermark: {baseline.recovery['spill_peak_bytes']} bytes "
          f"(O(chunk x window), independent of corpus size)")

    # 2. Kill a worker mid-shard: the lease is re-claimed, nothing is lost.
    kill = WorkerKillPoint("shard:executed", hits=3)
    disturbed, _ = run_stream(corpus, sink=count_matches, kill=kill)
    same = disturbed.canonical_json() == baseline.canonical_json()
    print(f"worker killed mid-shard -> report byte-identical: {same}")
    assert same and kill.fired

    # 3. Crash the whole process, then resume from the shard ledger.
    with tempfile.TemporaryDirectory() as scratch:
        wal = Path(scratch) / "stream.wal"
        try:
            run_stream(corpus, sink=count_matches, ledger=wal,
                       crash=CrashPoint("shard:journaled", hits=12))
        except CrashInjected as death:
            print(f"crashed: {death}")
        resumed, resume_calls = run_stream(corpus, sink=count_matches, ledger=wal)
        identical = resumed.canonical_json() == baseline.canonical_json()
        print(f"resumed: replayed {resumed.recovery['replayed_shards']} shards "
              f"for free, paid {resume_calls} of {full_calls} provider calls")
        print(f"resumed report byte-identical to uninterrupted run: {identical}")
        assert identical and resume_calls < full_calls


if __name__ == "__main__":
    main()
