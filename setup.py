"""Setup shim enabling legacy editable installs in offline environments."""
from setuptools import setup

setup()
